"""Shared helpers for the ablation benchmarks."""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.micro import MicroModel, MicroModelConfig
from repro.core.training import TrainingData
from repro.nn.losses import JointDropLatencyLoss


def split_windows(data: TrainingData, train_fraction: float = 0.8) -> tuple[TrainingData, TrainingData]:
    """Chronological train/test split of windowed data.

    Chronological (not shuffled) so the test set is genuinely unseen
    future traffic.
    """
    n = data.windows_x.shape[0]
    cut = max(int(n * train_fraction), 1)
    head = TrainingData(
        windows_x=data.windows_x[:cut],
        windows_y=data.windows_y[:cut],
        feature_standardizer=data.feature_standardizer,
        latency_mean=data.latency_mean,
        latency_std=data.latency_std,
        sample_count=cut * data.windows_x.shape[1],
        drop_fraction=data.drop_fraction,
    )
    tail = TrainingData(
        windows_x=data.windows_x[cut:],
        windows_y=data.windows_y[cut:],
        feature_standardizer=data.feature_standardizer,
        latency_mean=data.latency_mean,
        latency_std=data.latency_std,
        sample_count=(n - cut) * data.windows_x.shape[1],
        drop_fraction=data.drop_fraction,
    )
    return head, tail


def evaluate(model: MicroModel, data: TrainingData, alpha: float) -> dict[str, float]:
    """Held-out joint loss over all windows of ``data``."""
    if data.windows_x.shape[0] == 0:
        return {"total": float("nan"), "drop": float("nan"), "latency": float("nan")}
    x = data.windows_x.transpose(1, 0, 2)
    y = data.windows_y.transpose(1, 0, 2)
    loss = JointDropLatencyLoss(alpha=alpha)
    macro_idx = (
        y[..., 2].astype("intp") if model.config.heads == "per_macro" else None
    )
    drop_logits, latency = model.forward(x, macro_index=macro_idx)
    parts = loss.forward(drop_logits, latency, y[..., 0], y[..., 1])
    return {"total": parts.total, "drop": parts.drop, "latency": parts.latency}


def ablate_features(data: TrainingData, column_indices: list[int]) -> TrainingData:
    """Return a copy of ``data`` with the given feature columns zeroed.

    Zeroing (post-standardization) removes all information in those
    columns while keeping the architecture identical — the standard
    input-ablation methodology.
    """
    x = data.windows_x.copy()
    x[..., column_indices] = 0.0
    return TrainingData(
        windows_x=x,
        windows_y=data.windows_y,
        feature_standardizer=data.feature_standardizer,
        latency_mean=data.latency_mean,
        latency_std=data.latency_std,
        sample_count=data.sample_count,
        drop_fraction=data.drop_fraction,
    )
