"""Ablation A4: the joint-loss weight alpha (Section 4.2).

"A hyper-parameter alpha balances the relative contribution of error
prediction, L = L_drop + alpha * L_latency ... In practice, we set
alpha to a value 0 < alpha <= 1 because the contribution of drops in
determining future behavior is more significant than latency."

The sweep is submitted through :mod:`repro.runs` (``evaluate`` stage,
``alpha`` axis): each point trains its own model — alpha is part of the
model fingerprint — and scores it on a fresh held-out trace, with every
run's config, seeds, and metrics recorded in a durable manifest.  A
second submission of the same spec then demonstrates the point of the
model registry: every run is a fingerprint cache hit and no training
happens at all, so re-generating the figure (or extending the sweep)
costs only the evaluation traces.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.core.features import Direction
from repro.runs import ScenarioSpec, SchedulerConfig, SweepScheduler

ALPHAS = (0.1, 0.5, 1.0)


def _spec(train_experiment, micro_config) -> ScenarioSpec:
    training = asdict(train_experiment)
    clos = training.pop("clos")
    training["clusters"] = clos["clusters"]
    training.pop("net", None)
    training.pop("intra_cluster_fraction", None)
    return ScenarioSpec.from_dict({
        "name": "ablation-a4-alpha",
        "stage": "evaluate",
        "experiment": {
            "clusters": 2,
            "load": train_experiment.load,
            "duration_s": train_experiment.duration_s / 2,
            "seed": 202,
        },
        "training": training,
        "micro": asdict(micro_config),
        "sweep": {"alpha": list(ALPHAS)},
    })


def test_alpha_sweep_via_scheduler(benchmark, tmp_path_factory, train_experiment, micro_config):
    spec = _spec(train_experiment, micro_config)
    registry = tmp_path_factory.mktemp("alpha-registry")
    cold_out = tmp_path_factory.mktemp("alpha-sweep-cold")

    def submit_cold():
        scheduler = SweepScheduler(
            spec, cold_out, registry_root=registry,
            config=SchedulerConfig(workers=0, retries=0),
        )
        return scheduler.submit()

    manifests = benchmark.pedantic(submit_cold, rounds=1, iterations=1)
    assert [m.status for m in manifests] == ["completed"] * len(ALPHAS)
    # Distinct alphas are distinct fingerprints: each point trained once.
    assert all(m.model is not None and not m.model["cache_hit"] for m in manifests)
    assert len({m.model["fingerprint"] for m in manifests}) == len(ALPHAS)

    # Resubmitting the identical spec must not train anything: the
    # registry serves every fingerprint from cache.
    warm_out = tmp_path_factory.mktemp("alpha-sweep-warm")
    warm = SweepScheduler(
        spec, warm_out, registry_root=registry,
        config=SchedulerConfig(workers=0, retries=0),
    ).submit()
    assert [m.status for m in warm] == ["completed"] * len(ALPHAS)
    assert all(m.model["cache_hit"] for m in warm)

    rows = []
    for manifest in manifests:
        ingress = manifest.result["directions"][Direction.INGRESS.value]
        auc = ingress["drop_auc"]
        rows.append([
            manifest.axes["alpha"],
            "-" if auc is None else f"{auc:.3f}",
            f"{ingress['latency_log_mae']:.3f}",
            f"{ingress['latency_median_relative_error']:.2f}",
            f"{manifest.model['train_wallclock_s']:.1f}",
        ])
        assert np.isfinite(ingress["latency_log_mae"])
    table = format_table(
        ["alpha", "drop_auc", "latency_log_mae", "median_rel_err", "train (s)"],
        rows,
    )
    write_result("ablation_a4_alpha", table)
