"""Ablation A4: the joint-loss weight alpha (Section 4.2).

"A hyper-parameter alpha balances the relative contribution of error
prediction, L = L_drop + alpha * L_latency ... In practice, we set
alpha to a value 0 < alpha <= 1 because the contribution of drops in
determining future behavior is more significant than latency."

This ablation sweeps alpha and reports held-out drop and latency loss
components separately — the trade the paper describes.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from benchmarks.ablation_util import evaluate, split_windows
from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.core.features import Direction
from repro.core.training import build_direction_datasets, standardize_and_window, train_micro_model

ALPHAS = (0.1, 0.5, 1.0)

_rows: list[list[object]] = []


@pytest.mark.parametrize("alpha", ALPHAS)
def test_alpha_point(benchmark, alpha, trained_bundle, micro_config):
    _, full_output = trained_bundle
    datasets, _ = build_direction_datasets(full_output.records, full_output.extractor)
    data = standardize_and_window(datasets[Direction.INGRESS], micro_config.window)
    train, test = split_windows(data)
    config = replace(micro_config, alpha=alpha)

    def train_model():
        model, _ = train_micro_model(train, config, np.random.default_rng(2))
        return model

    model = benchmark.pedantic(train_model, rounds=1, iterations=1)
    # Evaluate with alpha=1 so the reported components are comparable
    # across the sweep (alpha only reweights training emphasis).
    losses = evaluate(model, test, alpha=1.0)
    _rows.append([alpha, losses["drop"], losses["latency"]])
    benchmark.extra_info.update(losses)
    assert np.isfinite(losses["drop"]) and np.isfinite(losses["latency"])


def test_alpha_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _rows:
        pytest.skip("no points collected")
    table = format_table(["alpha", "test_drop_loss", "test_latency_loss"], _rows)
    write_result("ablation_a4_alpha", table)
