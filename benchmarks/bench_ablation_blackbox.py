"""Ablation A7: the single-black-box limit (Section 7).

"An open question is how much more complexity we can remove while
retaining accuracy.  In the limit, the rest of the network could be
modeled as a single black box, but training that black box to
approximate such a large collection of machines is not trivial."

This ablation runs that limit: a model trained on the rest-of-network
boundary replaces everything outside the full-fidelity cluster (core
layer included) and is compared — on events, wall-clock, and RTT
distribution error — against the paper's per-cluster configuration.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.analysis.stats import ks_distance
from repro.core.hybrid import HybridConfig
from repro.core.pipeline import (
    run_full_simulation,
    run_hybrid_simulation,
    train_reusable_model,
)
from repro.core.region import Region
from repro.topology.clos import build_clos


def test_blackbox_vs_per_cluster(benchmark, trained_bundle, train_experiment, micro_config):
    per_cluster_bundle, _ = trained_bundle
    config = replace(train_experiment, seed=701, duration_s=0.006)

    # Train the rest-of-network model on the same topology/workload.
    topology = build_clos(config.clos)
    region = Region.rest_of_network(topology, full_cluster=0)
    blackbox_bundle, _ = train_reusable_model(
        config, micro=micro_config, collect_cluster=region
    )

    full = run_full_simulation(config).result

    def run_both():
        per_cluster, _ = run_hybrid_simulation(config, per_cluster_bundle)
        blackbox, _ = run_hybrid_simulation(
            config, blackbox_bundle, hybrid=HybridConfig(single_black_box=True)
        )
        return per_cluster, blackbox

    per_cluster, blackbox = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for name, result in (
        ("full", full), ("per_cluster", per_cluster), ("blackbox", blackbox)
    ):
        ks = "-" if name == "full" else f"{ks_distance(full.rtt_samples, result.rtt_samples):.3f}"
        rows.append([
            name,
            result.events_executed,
            f"{result.wallclock_seconds:.2f}",
            len(result.rtt_samples),
            ks,
        ])
    table = format_table(
        ["configuration", "events", "wall_s", "rtt_samples", "rtt_ks_vs_full"], rows
    )
    write_result("ablation_a7_blackbox", table)

    # The limit case removes strictly more events than per-cluster.
    assert blackbox.events_executed < per_cluster.events_executed
    # And it still produces usable observations in the full cluster.
    assert len(blackbox.rtt_samples) > 10
