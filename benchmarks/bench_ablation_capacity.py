"""Ablation A5: LSTM capacity (Section 7, "Improving accuracy").

"Our prototype currently uses a two-layer LSTM with 128 hidden nodes.
Accuracy can be improved by stacking more layers, using more nodes per
layer ... Each of these come with tradeoffs — adding more complexity
may increase the cost of training and prediction."

This ablation sweeps (hidden_size, num_layers), measuring both sides
of that trade: held-out loss and per-packet prediction latency.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np
import pytest

from benchmarks.ablation_util import evaluate, split_windows
from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.core.features import Direction
from repro.core.training import build_direction_datasets, standardize_and_window, train_micro_model

VARIANTS = ((16, 1), (32, 1), (32, 2), (64, 2))

_rows: list[list[object]] = []


@pytest.mark.parametrize("hidden,layers", VARIANTS)
def test_capacity_point(benchmark, hidden, layers, trained_bundle, micro_config):
    _, full_output = trained_bundle
    datasets, _ = build_direction_datasets(full_output.records, full_output.extractor)
    data = standardize_and_window(datasets[Direction.INGRESS], micro_config.window)
    train, test = split_windows(data)
    config = replace(micro_config, hidden_size=hidden, num_layers=layers)

    def train_model():
        model, _ = train_micro_model(train, config, np.random.default_rng(3))
        return model

    model = benchmark.pedantic(train_model, rounds=1, iterations=1)
    losses = evaluate(model, test, alpha=1.0)

    # Per-packet prediction latency (the simulation-time cost).
    state = model.initial_state()
    probe = np.zeros(config.input_size)
    start = time.perf_counter()
    steps = 500
    for _ in range(steps):
        _, _, state = model.predict_step(probe, state)
    predict_us = (time.perf_counter() - start) / steps * 1e6

    _rows.append([
        f"{hidden}x{layers}",
        model.parameter_count(),
        losses["total"],
        losses["drop"],
        losses["latency"],
        f"{predict_us:.1f}",
    ])
    benchmark.extra_info["test_loss"] = losses["total"]
    benchmark.extra_info["predict_us"] = predict_us
    assert np.isfinite(losses["total"])


def test_capacity_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _rows:
        pytest.skip("no points collected")
    table = format_table(
        ["model", "params", "test_total", "test_drop", "test_latency", "predict_us"],
        _rows,
    )
    write_result("ablation_a5_capacity", table)
