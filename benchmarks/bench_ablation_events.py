"""Ablation A1: the event-elision mechanism behind Figure 5.

Section 5 lists what approximation elides: the approximated clusters'
fabric events (queuing/routing/processing) and — when remote-traffic
elision is on — all traffic between approximated clusters.  This
benchmark separates the two effects by running, at each size:

* the full simulation,
* the hybrid with elision OFF (fabric savings only, identical flows),
* the hybrid with elision ON (fabric + traffic savings).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale, full_sweep, write_result
from repro.analysis.reporting import format_table
from repro.core.hybrid import HybridConfig
from repro.core.pipeline import (
    ExperimentConfig,
    run_full_simulation,
    run_hybrid_simulation,
)
from repro.topology.clos import ClosParams

CLUSTER_COUNTS = (2, 4, 8) if full_sweep() else (2, 4)
DURATION_S = 0.003
SEED = 401

_rows: list[list[object]] = []


@pytest.mark.parametrize("clusters", CLUSTER_COUNTS)
def test_event_elision(benchmark, clusters, trained_bundle, train_experiment):
    trained, _ = trained_bundle
    config = ExperimentConfig(
        clos=ClosParams(clusters=clusters),
        load=train_experiment.load,
        duration_s=DURATION_S,
        seed=SEED,
    )
    full = run_full_simulation(config).result

    def run_both():
        fabric_only, _ = run_hybrid_simulation(
            config, trained, hybrid=HybridConfig(elide_remote_traffic=False)
        )
        both, _ = run_hybrid_simulation(config, trained)
        return fabric_only, both

    fabric_only, both = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # Identical flow schedule when traffic elision is off.
    assert fabric_only.flows_started == full.flows_started
    # Traffic elision shrinks the count further whenever it elided
    # anything.  (Per-size event comparisons vs. full move to the
    # report: on tiny windows the TCP feedback loop through the model
    # can change packet counts either way; the elision claim is about
    # the trend, which the largest size settles.)
    if both.flows_elided > 0:
        assert both.events_executed <= fabric_only.events_executed

    _rows.append([
        clusters,
        full.events_executed,
        fabric_only.events_executed,
        both.events_executed,
        f"{full.events_executed / fabric_only.events_executed:.2f}",
        f"{full.events_executed / max(both.events_executed, 1):.2f}",
        both.flows_elided,
    ])
    benchmark.extra_info["full_events"] = full.events_executed
    benchmark.extra_info["fabric_only_events"] = fabric_only.events_executed
    benchmark.extra_info["both_events"] = both.events_executed


def test_event_elision_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _rows:
        pytest.skip("no points collected")
    table = format_table(
        ["clusters", "full_events", "hybrid_keep_traffic", "hybrid_elide_traffic",
         "fabric_ratio", "total_ratio", "flows_elided"],
        _rows,
    )
    write_result("ablation_a1_events", table)
    # At the largest size, fabric elision alone must win on events.
    largest = max(_rows, key=lambda r: r[0])
    assert largest[2] < largest[1], "fabric elision did not reduce events at scale"
