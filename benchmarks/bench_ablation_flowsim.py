"""Ablation A3: the classic alternative — flow-level simulation.

Sections 2.1 and 8 position the paper against flow-level simulators:
enormously faster, but blind to packet effects ("miss out on many
important network effects, particularly in the presence of bursty
traffic").  This benchmark runs the identical workload through the
packet-level DES and the max-min fluid simulator and reports both
sides: the wall-clock gap and the FCT distribution gap.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.analysis.stats import ks_distance
from repro.flowsim.simulator import FlowLevelSimulator
from repro.flowsim.workload import generate_workload
from repro.pdes.engine import run_single_threaded
from repro.topology.clos import ClosParams, build_clos
from repro.traffic.distributions import web_search_sizes

DURATION_S = 0.01
LOAD = 0.3
SEED = 501


def test_flowsim_vs_packet(benchmark):
    topo = build_clos(ClosParams(clusters=2))
    flows = generate_workload(
        topo, duration_s=DURATION_S, load=LOAD, sizes=web_search_sizes(), seed=SEED
    )
    # Packet-level: run far past the workload window so flows finish.
    packet = run_single_threaded(topo, flows, duration_s=10 * DURATION_S, seed=SEED)

    fluid_sim = FlowLevelSimulator(topo)

    def run_fluid():
        return fluid_sim.run(flows)

    fluid_results = benchmark.pedantic(run_fluid, rounds=1, iterations=1)

    fluid_fcts = [r.fct for r in fluid_results]
    packet_fcts = packet.fcts
    assert len(fluid_fcts) == len(flows)
    assert len(packet_fcts) > 0

    speed_ratio = packet.wallclock_seconds / max(fluid_sim.wallclock_elapsed, 1e-9)
    fct_ks = ks_distance(packet_fcts, fluid_fcts)
    median_ratio = float(np.median(packet_fcts) / np.median(fluid_fcts))

    table = format_table(
        ["metric", "value"],
        [
            ["flows", len(flows)],
            ["packet_wall_s", f"{packet.wallclock_seconds:.2f}"],
            ["fluid_wall_s", f"{fluid_sim.wallclock_elapsed:.4f}"],
            ["speed_ratio (packet/fluid)", f"{speed_ratio:.0f}x"],
            ["fct_ks_distance", f"{fct_ks:.3f}"],
            ["fct_median_ratio (packet/fluid)", f"{median_ratio:.2f}"],
            ["packet_drops", packet.drops],
            ["fluid_drops (by construction)", 0],
        ],
    )
    write_result("ablation_a3_flowsim", table)
    benchmark.extra_info["speed_ratio"] = speed_ratio
    benchmark.extra_info["fct_ks"] = fct_ks

    # The trade the paper describes: fluid is orders of magnitude
    # faster but misses packet effects — it sees zero drops and its
    # FCT distribution diverges measurably.
    assert speed_ratio > 20
    assert packet.drops > 0
    assert fct_ks > 0.05
