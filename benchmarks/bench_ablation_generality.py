"""Ablation A6: generality across traffic patterns (Section 7).

"While our LSTM-based approach is agnostic to many details of the
target architecture, it is an open question as to the extent of this
generality."  This ablation measures one axis of it: a model trained
under the uniform web-search workload drives hybrid simulations whose
traffic matrix it never saw (permutation), and the RTT-distribution
error is compared against the matched (uniform) case.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.analysis.stats import ks_distance, wasserstein_distance
from repro.core.pipeline import run_full_simulation, run_hybrid_simulation

MATRICES = ("uniform", "permutation")

_rows: list[list[object]] = []


@pytest.mark.parametrize("matrix", MATRICES)
def test_generality_point(benchmark, matrix, trained_bundle, train_experiment):
    trained, _ = trained_bundle
    config = replace(train_experiment, matrix=matrix, seed=601, duration_s=0.006)
    full = run_full_simulation(config).result

    def run_hybrid():
        return run_hybrid_simulation(config, trained)

    hybrid_result, _ = benchmark.pedantic(run_hybrid, rounds=1, iterations=1)
    truth = full.rtt_samples
    approx = hybrid_result.rtt_samples
    assert len(truth) > 10 and len(approx) > 10
    ks = ks_distance(truth, approx)
    w1 = wasserstein_distance(truth, approx)
    _rows.append([matrix, len(truth), len(approx), f"{ks:.3f}", f"{w1:.3e}"])
    benchmark.extra_info["ks"] = ks
    # The unseen matrix must still land in the same ballpark.
    assert ks < 0.9


def test_generality_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _rows:
        pytest.skip("no points collected")
    table = format_table(
        ["matrix", "truth_rtts", "approx_rtts", "ks_distance", "wasserstein_s"],
        _rows,
    )
    write_result("ablation_a6_generality", table)
