"""Ablation A9: hierarchical (per-macro-state) prediction heads.

Section 7: "Multi-scale and hierarchical recurrent neural network
models are interesting future directions as these models can
simultaneously capture macro and micro effects."  The lightest such
coupling in this codebase routes the drop/latency heads by the macro
congestion state (four heads each, hard selection).  This ablation
trains shared-head and per-macro-head models on identical windows and
compares held-out joint loss.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from benchmarks.ablation_util import evaluate, split_windows
from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.core.features import Direction
from repro.core.training import build_direction_datasets, standardize_and_window, train_micro_model

VARIANTS = ("shared", "per_macro")

_rows: list[list[object]] = []


@pytest.mark.parametrize("heads", VARIANTS)
def test_heads_point(benchmark, heads, trained_bundle, micro_config):
    _, full_output = trained_bundle
    datasets, _ = build_direction_datasets(full_output.records, full_output.extractor)
    data = standardize_and_window(datasets[Direction.INGRESS], micro_config.window)
    train, test = split_windows(data)
    config = replace(micro_config, heads=heads)

    def train_model():
        model, _ = train_micro_model(train, config, np.random.default_rng(4))
        return model

    model = benchmark.pedantic(train_model, rounds=1, iterations=1)
    losses = evaluate(model, test, alpha=1.0)
    _rows.append([
        heads, model.parameter_count(), losses["total"], losses["drop"],
        losses["latency"],
    ])
    benchmark.extra_info.update(losses)
    assert np.isfinite(losses["total"])


def test_heads_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _rows:
        pytest.skip("no points collected")
    table = format_table(
        ["heads", "params", "test_total", "test_drop", "test_latency"], _rows
    )
    write_result("ablation_a9_heads", table)
