"""Ablation A2: does the macro-state feature earn its place?

Section 4 argues for a hierarchical macro/micro split: the macro state
(a 4-way congestion-regime one-hot) is one of the micro model's input
features.  This ablation trains two identical micro models on the same
windows, one with the macro one-hot zeroed out, and compares held-out
joint loss on a chronological test split.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.ablation_util import ablate_features, evaluate, split_windows
from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.core.features import Direction, FEATURE_NAMES
from repro.core.training import build_direction_datasets, standardize_and_window, train_micro_model

MACRO_COLUMNS = [
    FEATURE_NAMES.index(name)
    for name in ("macro_minimal", "macro_increasing", "macro_high", "macro_decreasing")
]


def test_macro_feature_ablation(benchmark, trained_bundle, micro_config):
    _, full_output = trained_bundle
    datasets, _ = build_direction_datasets(full_output.records, full_output.extractor)
    data = standardize_and_window(datasets[Direction.INGRESS], micro_config.window)
    train, test = split_windows(data)

    def train_both():
        with_macro, _ = train_micro_model(
            train, micro_config, np.random.default_rng(1)
        )
        without_macro, _ = train_micro_model(
            ablate_features(train, MACRO_COLUMNS), micro_config, np.random.default_rng(1)
        )
        return with_macro, without_macro

    with_macro, without_macro = benchmark.pedantic(train_both, rounds=1, iterations=1)

    loss_with = evaluate(with_macro, test, micro_config.alpha)
    loss_without = evaluate(
        without_macro, ablate_features(test, MACRO_COLUMNS), micro_config.alpha
    )
    table = format_table(
        ["variant", "test_total", "test_drop", "test_latency"],
        [
            ["with_macro", loss_with["total"], loss_with["drop"], loss_with["latency"]],
            ["without_macro", loss_without["total"], loss_without["drop"], loss_without["latency"]],
        ],
    )
    write_result("ablation_a2_macro", table)
    benchmark.extra_info["with_macro_loss"] = loss_with["total"]
    benchmark.extra_info["without_macro_loss"] = loss_without["total"]
    # Both variants must at least be finite and trained.
    assert np.isfinite(loss_with["total"]) and np.isfinite(loss_without["total"])
