"""Ablation A8: application-level fidelity (partition-aggregate QCT).

Figures 4/5 measure packet-level quantities; a user of the simulator
ultimately cares about *application* metrics.  This ablation drives
the partition-aggregate workload (the query fan-out pattern behind the
paper's web-search traffic) through both the full and the hybrid
simulator — roots pinned to the full-fidelity cluster, workers spread
across the whole network so most responses traverse approximated
fabrics — and compares query completion time distributions.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.analysis.stats import ks_distance, percentile_summary
from repro.core.hybrid import HybridConfig, HybridSimulation
from repro.des.kernel import Simulator
from repro.net.network import Network
from repro.topology.clos import build_clos
from repro.traffic.partition_aggregate import PartitionAggregateGenerator

QUERIES = 30
FANOUT = 6
RESPONSE_BYTES = 50_000
RATE_PER_S = 2_000.0


def _drive_queries(sim, network, seed_tag: str):
    generator = PartitionAggregateGenerator(
        sim,
        network,
        queries_per_s=RATE_PER_S,
        fanout=FANOUT,
        response_bytes=RESPONSE_BYTES,
        max_queries=QUERIES,
    )
    generator.start()
    sim.run(until=5.0)
    return generator


def test_qct_fidelity(benchmark, trained_bundle, train_experiment):
    trained, _ = trained_bundle
    topology = build_clos(train_experiment.clos)

    # Full-fidelity reference.
    full_sim = Simulator(seed=801)
    full_net = Network(full_sim, topology, config=train_experiment.net)
    full_gen = _drive_queries(full_sim, full_net, "full")

    # Hybrid twin (same seed => same query schedule).
    def run_hybrid():
        sim = Simulator(seed=801)
        hybrid = HybridSimulation(
            sim, topology, trained, net_config=train_experiment.net,
            config=HybridConfig(elide_remote_traffic=False),
        )
        generator = _drive_queries(sim, hybrid.network, "hybrid")
        return sim, hybrid, generator

    _, hybrid, hybrid_gen = benchmark.pedantic(run_hybrid, rounds=1, iterations=1)

    full_qcts = full_gen.completed_qcts()
    hybrid_qcts = hybrid_gen.completed_qcts()
    assert full_gen.queries_completed == QUERIES
    assert hybrid_gen.queries_completed >= QUERIES * 0.8  # model drops may strand a few
    assert hybrid.model_packets_handled() > 0

    ks = ks_distance(full_qcts, hybrid_qcts)
    rows = []
    for name, sample in (("full", full_qcts), ("hybrid", hybrid_qcts)):
        stats = percentile_summary(sample, percentiles=(50, 90, 99))
        rows.append([
            name, int(stats["count"]),
            f"{stats['p50'] * 1e3:.3f}", f"{stats['p90'] * 1e3:.3f}",
            f"{stats['p99'] * 1e3:.3f}",
        ])
    table = format_table(["run", "queries", "qct_p50_ms", "qct_p90_ms", "qct_p99_ms"], rows)
    write_result("ablation_a8_qct", table + f"\n\nqct_ks_distance\t{ks:.3f}")
    benchmark.extra_info["qct_ks"] = ks

    # Application-level distributions must land in the same ballpark.
    assert ks < 0.8
    import numpy as np

    ratio = np.median(hybrid_qcts) / np.median(full_qcts)
    assert 1 / 10 < ratio < 10
