"""Cascade scaling: all-DES vs. all-hybrid vs. the fidelity cascade.

The cascade's economic argument (ISSUE 7 / DESIGN.md §10) is that on
large fabrics almost all traffic is background-to-background, so
diverting it to the fluid tier — while the focal cluster stays
packet-level and the controller promotes only regions whose windowed
scores breach budget — should beat even the all-hybrid configuration,
whose every packet still pays for fabric events plus model inference.

This benchmark prices that claim: for each fabric size it runs the
same seeded workload under

* ``des`` — :func:`run_full_simulation`, every packet simulated;
* ``hybrid`` — :func:`run_hybrid_simulation` with remote-traffic
  elision *off* (the same per-packet configuration the cascade's
  HYBRID tier uses, so the comparison isolates tier placement);
* ``cascade`` — :func:`run_cascade_simulation` with the default
  flowsim-first tier map and the ISSUE's 0.35 K-S budget.

and records wall-clock, events/second, the cascade's promotion count
and per-tier packet split, plus two fidelity numbers against the
all-DES run: the K-S distance of the focal cluster's RTT samples (the
cascade's contract — the focal region is packet-simulated and must
match) and of the fabric-wide FCT distribution (reported, unasserted:
background flows ride the fluid tier by design).

Results land in two places:

* ``benchmarks/results/cascade_scale.txt`` — the usual bench table;
* ``BENCH_scale.json`` at the repo root — machine-readable trajectory
  file tracked in git, so per-PR scaling history is diffable.

``REPRO_CASCADE_CLUSTERS`` (comma-separated fabric sizes) shrinks the
sweep for CI smoke runs; the acceptance floors below only gate
full-size runs (the checked-in JSON comes from one).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.analysis.stats import ks_distance
from repro.cascade import CascadeConfig, TierBudget, run_cascade_simulation
from repro.core.hybrid import HybridConfig
from repro.core.pipeline import (
    ExperimentConfig,
    run_full_simulation,
    run_hybrid_simulation,
)
from repro.topology.clos import ClosParams

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_scale.json"

#: Fabric sizes swept; override for CI smoke (e.g. "4,8").
CLUSTERS = tuple(
    int(c) for c in os.environ.get("REPRO_CASCADE_CLUSTERS", "8,32,128").split(",")
)
#: Simulated seconds per fabric size — smaller fabrics run longer so
#: every cell has enough flows to score; unlisted sizes get the floor.
DURATIONS = {4: 0.004, 8: 0.004, 16: 0.004, 32: 0.004}
DEFAULT_DURATION = 0.002
LOAD = 0.25
SEED = 42

#: The acceptance gate (ISSUE 7): at the gate fabric size the cascade
#: must beat all-hybrid by this factor while the focal cluster's RTT
#: distribution stays within the K-S budget of the all-DES run.
GATE_CLUSTERS = 32
MIN_CASCADE_SPEEDUP = 5.0
FOCAL_KS_BUDGET = 0.35
FULL_SIZE = GATE_CLUSTERS in CLUSTERS


def _cascade_config(duration_s: float) -> CascadeConfig:
    return CascadeConfig(
        epoch_s=duration_s / 8,
        window_epochs=3,
        min_window_samples=4,
        budget=TierBudget(ks=FOCAL_KS_BUDGET),
    )


def _run_one_size(clusters: int, trained) -> dict:
    duration_s = DURATIONS.get(clusters, DEFAULT_DURATION)
    config = ExperimentConfig(
        clos=ClosParams(clusters=clusters),
        load=LOAD,
        duration_s=duration_s,
        seed=SEED,
    )

    start = time.perf_counter()
    full = run_full_simulation(config)
    des_s = time.perf_counter() - start

    start = time.perf_counter()
    hybrid_result, _ = run_hybrid_simulation(
        config, trained, hybrid=HybridConfig(elide_remote_traffic=False)
    )
    hybrid_s = time.perf_counter() - start

    start = time.perf_counter()
    cascade_result, cascade_sim = run_cascade_simulation(
        config, trained, cascade=_cascade_config(duration_s)
    )
    cascade_s = time.perf_counter() - start

    summary = cascade_result.summary
    return {
        "clusters": clusters,
        "duration_s": duration_s,
        "modes": {
            "des": {
                "wallclock_s": des_s,
                "events": full.result.events_executed,
                "events_per_sec": full.result.events_executed / des_s,
                "flows_completed": full.result.flows_completed,
            },
            "hybrid": {
                "wallclock_s": hybrid_s,
                "events": hybrid_result.events_executed,
                "events_per_sec": hybrid_result.events_executed / hybrid_s,
                "flows_completed": hybrid_result.flows_completed,
            },
            "cascade": {
                "wallclock_s": cascade_s,
                "events": cascade_result.total_events,
                "events_per_sec": cascade_result.total_events / cascade_s,
                "flows_completed": cascade_result.total_flows_completed,
                "promotions": summary["promotions"],
                "demotions": summary["demotions"],
                "flows_diverted": summary["flows_diverted"],
                "per_tier_packets": summary["per_tier_packets"],
            },
        },
        "speedup_vs_hybrid": hybrid_s / cascade_s,
        "speedup_vs_des": des_s / cascade_s,
        # Focal contract: the packet-simulated focal cluster's RTT
        # distribution vs. the all-DES run's (same observe cluster).
        "focal_rtt_ks": ks_distance(
            full.result.rtt_samples, cascade_result.result.rtt_samples
        ),
        # Whole-fabric FCTs, fluid completions included (reported only).
        "fct_ks": ks_distance(full.result.fcts, cascade_result.all_fcts),
    }


def test_cascade_scale(trained_bundle):
    trained, _ = trained_bundle
    rows = [_run_one_size(clusters, trained) for clusters in CLUSTERS]

    payload = {
        "benchmark": "cascade_scale",
        "load": LOAD,
        "seed": SEED,
        "modes": ["des", "hybrid", "cascade"],
        "gate": {
            "clusters": GATE_CLUSTERS,
            "min_speedup_vs_hybrid": MIN_CASCADE_SPEEDUP,
            "focal_rtt_ks_budget": FOCAL_KS_BUDGET,
        },
        "rows": rows,
    }
    # Merge, don't clobber: other benchmarks (bench_pdes_hybrid) own
    # their own top-level series in the same trajectory file.
    merged: dict = {}
    if JSON_PATH.exists():
        merged = json.loads(JSON_PATH.read_text())
    merged.update(payload)
    JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")

    table_rows = []
    for row in rows:
        modes = row["modes"]
        table_rows.append(
            [
                row["clusters"],
                f"{row['duration_s'] * 1e3:g}",
                f"{modes['des']['wallclock_s']:.2f}",
                f"{modes['hybrid']['wallclock_s']:.2f}",
                f"{modes['cascade']['wallclock_s']:.2f}",
                f"{row['speedup_vs_hybrid']:.1f}x",
                f"{row['speedup_vs_des']:.1f}x",
                f"{row['focal_rtt_ks']:.3f}",
                modes["cascade"]["promotions"],
            ]
        )
    write_result(
        "cascade_scale",
        format_table(
            [
                "clusters", "sim ms", "des s", "hybrid s", "cascade s",
                "vs hybrid", "vs des", "focal KS", "promos",
            ],
            table_rows,
        )
        + f"\n(load {LOAD}, seed {SEED}; hybrid baseline runs with remote"
        " elision off — the cascade's own HYBRID-tier configuration)",
    )

    by_clusters = {row["clusters"]: row for row in rows}
    if FULL_SIZE:
        gate = by_clusters[GATE_CLUSTERS]
        assert gate["speedup_vs_hybrid"] >= MIN_CASCADE_SPEEDUP, gate
        assert gate["focal_rtt_ks"] <= FOCAL_KS_BUDGET, gate
    # At every size the cascade must actually divert background
    # traffic (otherwise it silently degenerated into all-hybrid and
    # the comparison is meaningless).  Focal K-S outside the gate row
    # is reported, not asserted: the short large-fabric cells have too
    # few RTT samples for the statistic to be stable.
    for row in rows:
        assert row["modes"]["cascade"]["flows_diverted"] > 0, row["clusters"]
