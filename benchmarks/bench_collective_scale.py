"""AI-factory scenario scaling: the collective pack under all three engines.

ISSUE 10's scenario pack (ring AllReduce + background mice, flowlet
routing, a deterministic link-failure/recovery pair) must run end to
end under full DES, the hybrid, and the cascade — and this benchmark
prices it: for each fabric size it runs the identical seeded scenario
under

* ``des`` — :func:`run_full_simulation`, every packet simulated;
* ``hybrid`` — :func:`run_hybrid_simulation` with remote-traffic
  elision off (collective ranks live in the focal cluster, but the
  mice still exercise the model path);
* ``cascade`` — :func:`run_cascade_simulation` with the default
  flowsim-first tier map.

Each cell records wall-clock, events/second, and the collective's own
health: rounds completed vs. requested and collective flows launched.
A scenario cell that fails to finish its AllReduce rounds is priced as
broken regardless of speedup, so the bench asserts completion in every
mode.

Results land next to the other trajectory series:

* ``benchmarks/results/collective_scale.txt`` — bench table;
* ``BENCH_scale.json`` top-level ``collective`` key — machine-readable,
  merged without clobbering the ``cascade_scale``/``pdes_hybrid`` series.

``REPRO_COLLECTIVE_CLUSTERS`` (comma-separated) shrinks the sweep for
CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.cascade import CascadeConfig, TierBudget, run_cascade_simulation
from repro.core.hybrid import HybridConfig
from repro.core.pipeline import (
    ExperimentConfig,
    run_full_simulation,
    run_hybrid_simulation,
)
from repro.topology.clos import ClosParams

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_scale.json"

#: Fabric sizes swept; override for CI smoke (e.g. "2").
CLUSTERS = tuple(
    int(c) for c in os.environ.get("REPRO_COLLECTIVE_CLUSTERS", "2,4").split(",")
)
DURATION_S = 0.008
LOAD = 0.15
SEED = 11

#: The scenario: an 8-rank ring AllReduce with per-round compute
#: barriers, flowlet routing, and a core-link failure/recovery pair
#: mid-run — the collective_smoke spec's shape at bench durations.
COLLECTIVE = {
    "algorithm": "ring",
    "ranks": 8,
    "chunk_bytes": 20_000,
    "rounds": 2,
    "compute_s": 3e-4,
}
ROUTING = {"policy": "flowlet", "flowlet_gap_s": 5e-5}
FAILURES = [(0.003, "core-0", "agg-c0-0"), (0.006, "core-0", "agg-c0-0", "up")]


def _config(clusters: int) -> ExperimentConfig:
    return ExperimentConfig(
        clos=ClosParams(clusters=clusters),
        load=LOAD,
        duration_s=DURATION_S,
        seed=SEED,
        routing=ROUTING,
        failures=FAILURES,
        collective=COLLECTIVE,
    )


def _collective_cell(result) -> dict:
    summary = result.collective or {}
    return {
        "rounds_completed": summary.get("rounds_completed", 0),
        "rounds_requested": summary.get("rounds_requested", 0),
        "collective_flows": summary.get("flows_launched", 0),
        "failure_events": len(result.failure_events),
    }


def _run_one_size(clusters: int, trained) -> dict:
    config = _config(clusters)

    start = time.perf_counter()
    full = run_full_simulation(config)
    des_s = time.perf_counter() - start

    start = time.perf_counter()
    hybrid_result, _ = run_hybrid_simulation(
        config, trained, hybrid=HybridConfig(elide_remote_traffic=False)
    )
    hybrid_s = time.perf_counter() - start

    start = time.perf_counter()
    cascade_result, _ = run_cascade_simulation(
        config,
        trained,
        cascade=CascadeConfig(
            epoch_s=DURATION_S / 8,
            window_epochs=3,
            min_window_samples=4,
            budget=TierBudget(ks=0.35),
        ),
    )
    cascade_s = time.perf_counter() - start

    return {
        "clusters": clusters,
        "duration_s": DURATION_S,
        "modes": {
            "des": {
                "wallclock_s": des_s,
                "events": full.result.events_executed,
                "events_per_sec": full.result.events_executed / des_s,
                "flows_completed": full.result.flows_completed,
                **_collective_cell(full.result),
            },
            "hybrid": {
                "wallclock_s": hybrid_s,
                "events": hybrid_result.events_executed,
                "events_per_sec": hybrid_result.events_executed / hybrid_s,
                "flows_completed": hybrid_result.flows_completed,
                **_collective_cell(hybrid_result),
            },
            "cascade": {
                "wallclock_s": cascade_s,
                "events": cascade_result.total_events,
                "events_per_sec": cascade_result.total_events / cascade_s,
                "flows_completed": cascade_result.total_flows_completed,
                "flows_diverted": cascade_result.summary["flows_diverted"],
                **_collective_cell(cascade_result.result),
            },
        },
        "speedup_vs_des_hybrid": des_s / hybrid_s,
        "speedup_vs_des_cascade": des_s / cascade_s,
    }


def test_collective_scale(trained_bundle):
    trained, _ = trained_bundle
    rows = [_run_one_size(clusters, trained) for clusters in CLUSTERS]

    payload = {
        "collective": {
            "load": LOAD,
            "seed": SEED,
            "duration_s": DURATION_S,
            "scenario": {
                "collective": COLLECTIVE,
                "routing": ROUTING,
                "failures": [list(event) for event in FAILURES],
            },
            "modes": ["des", "hybrid", "cascade"],
            "rows": rows,
        }
    }
    # Merge, don't clobber: bench_cascade_scale and bench_pdes_hybrid
    # own their own top-level series in the same trajectory file.
    merged: dict = {}
    if JSON_PATH.exists():
        merged = json.loads(JSON_PATH.read_text())
    merged.update(payload)
    JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")

    table_rows = []
    for row in rows:
        modes = row["modes"]
        table_rows.append(
            [
                row["clusters"],
                f"{modes['des']['wallclock_s']:.2f}",
                f"{modes['hybrid']['wallclock_s']:.2f}",
                f"{modes['cascade']['wallclock_s']:.2f}",
                f"{row['speedup_vs_des_hybrid']:.1f}x",
                f"{row['speedup_vs_des_cascade']:.1f}x",
                f"{modes['des']['rounds_completed']}"
                f"/{modes['des']['rounds_requested']}",
                modes["cascade"]["flows_diverted"],
            ]
        )
    write_result(
        "collective_scale",
        format_table(
            [
                "clusters", "des s", "hybrid s", "cascade s",
                "hybrid vs des", "cascade vs des", "rounds", "diverted",
            ],
            table_rows,
        )
        + f"\n(load {LOAD}, seed {SEED}; 8-rank ring AllReduce + mice,"
        " flowlet routing, one core-link failure/recovery mid-run)",
    )

    for row in rows:
        for mode, cell in row["modes"].items():
            # The scenario must actually finish its AllReduce and see
            # the failure schedule applied in every engine.
            assert cell["rounds_completed"] == cell["rounds_requested"], (
                row["clusters"], mode, cell,
            )
            assert cell["collective_flows"] > 0, (row["clusters"], mode)
            assert cell["failure_events"] == len(FAILURES), (
                row["clusters"], mode, cell,
            )
