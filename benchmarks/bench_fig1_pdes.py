"""Figure 1: simulator performance vs. topology size, DES vs. PDES.

The paper's Figure 1 plots simulated-seconds-per-wall-clock-second of
OMNeT++ on leaf-spine topologies as the number of ToRs/spines grows
from 4 to 64 (racks of four servers, 10 GbE, constant oversubscription
and average load), for a single thread and for MPI-based PDES across
1/2/4 machines.  The finding: parallelism helps at best marginally and
loses to the single thread as interconnection grows.

Here the same sweep runs on our DES and our conservative PDES engine
with 2 and 4 worker processes (one container cannot be several
machines; the synchronization economics per machine-count are what the
experiment measures).  Default sizes 4/8/16 keep the suite fast;
``REPRO_BENCH_SCALE=large`` (or ``paper``) extends to 32 and 64.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_scale, full_sweep, write_result
from repro.analysis.reporting import format_series, format_table
from repro.flowsim.workload import generate_workload
from repro.pdes.engine import PdesConfig, run_parallel_simulation, run_single_threaded
from repro.topology.leafspine import LeafSpineParams, build_leaf_spine
from repro.traffic.distributions import web_search_sizes

DURATION_S = 0.002
LOAD = 0.2
SEED = 201

SIZES = (4, 8, 16, 32, 64) if full_sweep() else (4, 8, 16)
MODES = ("single", "pdes-2", "pdes-4")

_results: dict[tuple[str, int], float] = {}


def _workload(size: int):
    topo = build_leaf_spine(LeafSpineParams(tors=size, spines=size))
    flows = generate_workload(
        topo, duration_s=DURATION_S, load=LOAD, sizes=web_search_sizes(), seed=SEED
    )
    return topo, flows


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", MODES)
def test_fig1_point(benchmark, mode: str, size: int):
    """One (mode, size) point of Figure 1."""
    topo, flows = _workload(size)

    if mode == "single":
        def run():
            return run_single_threaded(topo, flows, duration_s=DURATION_S, seed=SEED)
    else:
        workers = int(mode.split("-")[1])

        def run():
            return run_parallel_simulation(
                topo, flows, PdesConfig(workers=workers, duration_s=DURATION_S, seed=SEED)
            )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _results[(mode, size)] = result.sim_seconds_per_second
    benchmark.extra_info["sim_seconds_per_second"] = result.sim_seconds_per_second
    benchmark.extra_info["events"] = result.events_executed
    assert result.flows_completed >= 0  # the run finished


def test_fig1_report(benchmark):
    """Assemble and persist the Figure 1 series."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _results:
        pytest.skip("no points collected (ran with filtering?)")
    blocks = []
    rows = []
    for mode in MODES:
        xs = [size for size in SIZES if (mode, size) in _results]
        ys = [_results[(mode, size)] for size in xs]
        if xs:
            blocks.append(format_series(f"fig1/{mode}", xs, ys))
    for size in SIZES:
        row = [size] + [f"{_results.get((mode, size), float('nan')):.3e}" for mode in MODES]
        rows.append(row)
    table = format_table(["tors_and_spines"] + list(MODES), rows)
    write_result("fig1_pdes", table + "\n\n" + "\n\n".join(blocks))

    # Shape assertions (the paper's qualitative findings):
    # 1. everything slows as the topology grows;
    largest, smallest = max(SIZES), min(SIZES)
    assert _results[("single", largest)] < _results[("single", smallest)]
    # 2. at the largest size, the single thread beats parallel PDES.
    assert _results[("single", largest)] > _results[("pdes-2", largest)]
    assert _results[("single", largest)] > _results[("pdes-4", largest)]
