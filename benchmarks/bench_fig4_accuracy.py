"""Figure 4: CDF of packet RTTs, ground truth vs. approximation.

The paper compares the CDFs of RTTs observed by hosts in the full and
the approximate simulations of a two-cluster topology ("we use a CDF
to ask whether the overall distributions of the two simulations are
similar", Section 6.1).  Expected shape, per the paper: the
approximate CDF is steeper (the model under-estimates congestion
variance) but turns upward at a similar latency — same ballpark.

This benchmark regenerates both CDFs, writes them as plottable series,
and quantifies the gap with KS and Wasserstein distances.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.reporting import format_series, format_table
from repro.analysis.stats import ks_distance, percentile_summary, wasserstein_distance
from repro.core.pipeline import run_hybrid_simulation

_collected: dict[str, object] = {}


def test_fig4_accuracy(benchmark, trained_bundle, train_experiment):
    """Run the hybrid twin of the training run and compare RTT CDFs."""
    trained, full_output = trained_bundle

    def run_hybrid():
        return run_hybrid_simulation(train_experiment, trained)

    hybrid_result, _ = benchmark.pedantic(run_hybrid, rounds=1, iterations=1)

    truth = np.asarray(full_output.result.rtt_samples)
    approx = np.asarray(hybrid_result.rtt_samples)
    assert truth.size > 20, "ground-truth run produced too few RTT samples"
    assert approx.size > 20, "hybrid run produced too few RTT samples"

    ks = ks_distance(truth, approx)
    w1 = wasserstein_distance(truth, approx)
    _collected.update(truth=truth, approx=approx, ks=ks, w1=w1)
    benchmark.extra_info["ks_distance"] = ks
    benchmark.extra_info["wasserstein_s"] = w1

    # The paper's qualitative claim: same ballpark.  KS < 1 trivially;
    # we require substantial overlap and medians within ~30x.
    assert ks < 0.8
    ratio = np.median(approx) / np.median(truth)
    assert 1 / 30 < ratio < 30


def test_fig4_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "truth" not in _collected:
        pytest.skip("accuracy point did not run")
    truth = _collected["truth"]
    approx = _collected["approx"]
    blocks = []
    for name, sample in (("groundtruth", truth), ("approx", approx)):
        xs, ys = EmpiricalCdf(sample).curve(points=60)
        blocks.append(format_series(f"fig4/{name}", xs, ys))
    rows = []
    for name, sample in (("groundtruth", truth), ("approx", approx)):
        stats = percentile_summary(sample, percentiles=(50, 90, 99))
        rows.append([
            name, int(stats["count"]),
            f"{stats['p50'] * 1e6:.1f}", f"{stats['p90'] * 1e6:.1f}",
            f"{stats['p99'] * 1e6:.1f}",
        ])
    table = format_table(["series", "n", "p50_us", "p90_us", "p99_us"], rows)
    summary = (
        f"ks_distance\t{_collected['ks']:.4f}\n"
        f"wasserstein_s\t{_collected['w1']:.3e}"
    )
    write_result("fig4_accuracy", table + "\n\n" + summary + "\n\n" + "\n\n".join(blocks))
