"""Figure 5: speedup of approximate vs. full simulation by size.

The paper simulates 2/4/8/16 clusters (four switches + eight servers
each) fully and with all but one cluster approximated, and reports the
wall-clock speedup: ~1.2x at 2 clusters growing to ~4.5x at 16 —
"significant speedups that increase in magnitude as the number of
clusters increases" (Section 6.2; the paper calls its own numbers an
upper bound on the current design).

Default sweep is 2/4/8 clusters; ``REPRO_BENCH_SCALE=large`` (or
``paper``) adds 16.
The shape requirement is growth with cluster count and a clear win at
the largest size; at the smallest sizes our numpy LSTM inference is
relatively more expensive than the paper's GPU-backed ATEN calls, so
the crossover sits slightly further right than theirs.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from benchmarks.conftest import bench_scale, full_sweep, write_result
from repro.analysis.reporting import format_series, format_table
from repro.core.pipeline import (
    ExperimentConfig,
    run_full_simulation,
    run_hybrid_simulation,
)
from repro.topology.clos import ClosParams

CLUSTER_COUNTS = (2, 4, 8, 16) if full_sweep() else (2, 4, 8)
DURATION_S = 0.004
SEED = 301
#: Seeds per point; speedups at millisecond windows are noisy, and the
#: paper's figure is per-size means.  Override with REPRO_BENCH_REPEATS.
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))

_results: dict[int, dict[str, float]] = {}


def _config(clusters: int, train_experiment) -> ExperimentConfig:
    return ExperimentConfig(
        clos=ClosParams(clusters=clusters),
        load=train_experiment.load,
        duration_s=DURATION_S,
        seed=SEED,
    )


@pytest.mark.parametrize("clusters", CLUSTER_COUNTS)
def test_fig5_point(benchmark, clusters: int, trained_bundle, train_experiment):
    """One cluster-count point: full and hybrid runs over REPEATS
    seeds; the recorded speedup is the per-size mean."""
    trained, _ = trained_bundle
    configs = [
        replace(_config(clusters, train_experiment), seed=SEED + i)
        for i in range(REPEATS)
    ]
    fulls = [run_full_simulation(config).result for config in configs]

    def run_hybrids():
        return [run_hybrid_simulation(config, trained)[0] for config in configs]

    hybrids = benchmark.pedantic(run_hybrids, rounds=1, iterations=1)
    speedups = [
        full.wallclock_seconds / hybrid.wallclock_seconds
        for full, hybrid in zip(fulls, hybrids)
    ]
    _results[clusters] = {
        "speedup": sum(speedups) / len(speedups),
        "full_wall_s": sum(f.wallclock_seconds for f in fulls) / REPEATS,
        "hybrid_wall_s": sum(h.wallclock_seconds for h in hybrids) / REPEATS,
        "full_events": sum(f.events_executed for f in fulls) // REPEATS,
        "hybrid_events": sum(h.events_executed for h in hybrids) // REPEATS,
        "model_packets": sum(h.model_packets for h in hybrids) // REPEATS,
        "flows_elided": sum(h.flows_elided for h in hybrids) // REPEATS,
    }
    benchmark.extra_info.update(_results[clusters])
    benchmark.extra_info["speedups"] = speedups
    assert all(h.events_executed > 0 for h in hybrids)


def test_fig5_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _results:
        pytest.skip("no points collected")
    counts = sorted(_results)
    rows = [
        [
            clusters,
            f"{_results[clusters]['full_wall_s']:.2f}",
            f"{_results[clusters]['hybrid_wall_s']:.2f}",
            f"{_results[clusters]['speedup']:.2f}",
            _results[clusters]["full_events"],
            _results[clusters]["hybrid_events"],
            _results[clusters]["flows_elided"],
        ]
        for clusters in counts
    ]
    table = format_table(
        ["clusters", "full_s", "hybrid_s", "speedup", "full_events",
         "hybrid_events", "flows_elided"],
        rows,
    )
    series = format_series(
        "fig5/speedup", counts, [_results[c]["speedup"] for c in counts]
    )
    write_result("fig5_speedup", table + "\n\n" + series)

    # Shape: speedup grows with cluster count; clear win at the top end.
    speedups = [_results[c]["speedup"] for c in counts]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 1.5
