"""Hot-path inference: fused engine vs. the reference predict_step.

The hybrid simulator's per-packet cost is the micro model step; this
benchmark measures exactly that — single-packet inference latency on
the paper's default 2-layer/128-hidden LSTM — for the reference path
(``Standardizer.transform`` + ``MicroModel.predict_step``, what every
packet paid before the fused engine existed) against the compiled
engine of :mod:`repro.nn.infer` in both precisions.  A second section
prices the observability layer on the same hot path: bare loop vs. the
``None``-handle branch pattern (metrics disabled; asserted < 2%
overhead) vs. live histogram observation (metrics enabled; reported).
A third prices the tracing layer two ways: the same synthetic rotation
(flight recorder off gated < 0.5%) plus an end-to-end accounting
estimate — cache-cold per-record cost times a real hybrid run's
deterministic record count over its untraced CPU time — gated < 2%.

Results land in two places:

* ``benchmarks/results/hotpath_inference.txt`` — the usual bench table;
* ``BENCH_hotpath.json`` at the repo root — machine-readable trajectory
  file tracked in git, so per-PR perf history is diffable.

Methodology: the reference and fused paths run interleaved trials and
the *minimum* per-packet time across trials is reported — the standard
noise-floor estimator for microbenchmarks (any deviation upward is
scheduler/cache interference, not the code under test).  Exactness of
the float64 engine against the oracle is asserted to <= 1e-9 on the
same run.

``REPRO_HOTPATH_PACKETS`` shrinks the timed packet count for CI smoke
runs (the checked-in JSON comes from a full-size run).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.core.micro import MicroModel, MicroModelConfig
from repro.nn.batch import MemoConfig, make_batched_engine
from repro.nn.data import Standardizer
from repro.nn.infer import compile_inference

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_hotpath.json"

#: Timed packets per trial; override for CI smoke.
PACKETS = int(os.environ.get("REPRO_HOTPATH_PACKETS", "2000"))
TRIALS = 5
WARMUP = 200
#: The steady-state memo section needs thousands of warmup rounds to
#: converge; the smoke run keeps the code path covered but its numbers
#: (and the related soft floors) only apply to full-size runs.
FULL_SIZE = PACKETS >= 2000

#: Lane widths of the raw batched sweep (ISSUE 6).
BATCH_WIDTHS = (1, 8, 64, 512)

#: Conservative regression floors (soft, far below typical results) so
#: the bench doubles as a CI guard without flaking on noisy runners.
MIN_SPEEDUP_F64 = 1.1
MIN_SPEEDUP_F32 = 1.5
#: The fused float64 engine must match the oracle to this bound (hard).
EXACTNESS_BOUND = 1e-9
#: Observability contract: with metrics absent/disabled, the per-packet
#: hot path may cost at most this fraction more than the bare path.
METRICS_DISABLED_OVERHEAD_BOUND = 0.02
#: Tracing contract.  The disabled path is a single ``is not None``
#: branch, so its bound is tighter than the metrics one.  The enabled
#: bound applies to the *end-to-end accounting estimate* (cache-cold
#: per-record cost x deterministic record count / untraced run CPU),
#: not the synthetic pure-inference ratio: against a bare GEMM loop the
#: recorder runs cache-cold every iteration, which overstates its share
#: of a real simulation several-fold.
TRACE_DISABLED_OVERHEAD_BOUND = 0.005
TRACE_ENABLED_OVERHEAD_BOUND = 0.02
#: Soft floors of the batched section (full-size runs only).  The
#: checked-in JSON carries the real numbers; these only catch gross
#: regressions without flaking on noisy runners.
MIN_BATCHED_SPEEDUP_F32 = 1.5  # raw, batch >= 64, vs same-run scalar f32
MIN_STEADY_SPEEDUP = 4.0  # memoized steady state vs same-run scalar f32
MIN_STEADY_HIT_RATE = 0.8


def _model_and_standardizer(cell: str, heads: str) -> tuple[MicroModel, Standardizer]:
    config = MicroModelConfig(cell=cell, heads=heads, seed=5)
    model = MicroModel(config, np.random.default_rng(5))
    rng = np.random.default_rng(6)
    # Perturb away from the symmetric init at a spectral-radius-~1
    # scale (like a trained model's weights) so gates are exercised.
    for parameter in model.parameters():
        parameter.value[...] = rng.normal(
            scale=1.0 / np.sqrt(config.hidden_size), size=parameter.value.shape
        )
    standardizer = Standardizer()
    standardizer.mean = rng.normal(size=config.input_size)
    standardizer.std = np.abs(rng.normal(size=config.input_size)) + 0.5
    return model, standardizer


def _time_reference(model, standardizer, features, n) -> float:
    state = model.initial_state()
    start = time.perf_counter()
    for i in range(n):
        _, _, state = model.predict_step(
            standardizer.transform(features[i % len(features)]),
            state,
            macro_index=i % 4,
        )
    return (time.perf_counter() - start) / n


def _time_engine(engine, features, n) -> float:
    start = time.perf_counter()
    for i in range(n):
        engine.predict(features[i % len(features)], macro_index=i % 4)
    return (time.perf_counter() - start) / n


def _max_abs_diff(model, standardizer, engine, features) -> float:
    engine.reset()
    state = model.initial_state()
    worst = 0.0
    for i in range(min(len(features), 500)):
        raw = features[i]
        macro_index = i % 4
        drop_ref, latency_ref, state = model.predict_step(
            standardizer.transform(raw), state, macro_index=macro_index
        )
        drop_fused, latency_fused = engine.predict(raw, macro_index=macro_index)
        worst = max(worst, abs(drop_ref - drop_fused), abs(latency_ref - latency_fused))
    return worst


def _bench_variant(cell: str, heads: str) -> dict[str, float]:
    model, standardizer = _model_and_standardizer(cell, heads)
    compiled64 = compile_inference(
        model.lstm, model.drop_head, model.latency_head,
        feature_mean=standardizer.mean, feature_std=standardizer.std,
        dtype=np.float64,
    )
    compiled32 = compile_inference(
        model.lstm, model.drop_head, model.latency_head,
        feature_mean=standardizer.mean, feature_std=standardizer.std,
        dtype=np.float32,
    )
    engine64, engine32 = compiled64.engine(), compiled32.engine()
    features = np.random.default_rng(7).normal(size=(4000, model.config.input_size))

    max_diff64 = _max_abs_diff(model, standardizer, engine64, features)

    # Warm every path (buffers, BLAS threads, branch caches), then
    # interleave trials so ambient noise hits all paths equally.
    _time_reference(model, standardizer, features, WARMUP)
    _time_engine(engine64, features, WARMUP)
    _time_engine(engine32, features, WARMUP)
    ref_s, f64_s, f32_s = [], [], []
    for _ in range(TRIALS):
        ref_s.append(_time_reference(model, standardizer, features, PACKETS))
        f64_s.append(_time_engine(engine64, features, PACKETS))
        f32_s.append(_time_engine(engine32, features, PACKETS))
    reference, fused64, fused32 = min(ref_s), min(f64_s), min(f32_s)
    return {
        "reference_us": reference * 1e6,
        "fused_float64_us": fused64 * 1e6,
        "fused_float32_us": fused32 * 1e6,
        "speedup_float64": reference / fused64,
        "speedup_float32": reference / fused32,
        "max_abs_diff_float64": max_diff64,
    }


def _time_batched(engine, feature_rounds, macro_rounds, rows) -> float:
    width = len(rows)
    start = time.perf_counter()
    for feats, macros in zip(feature_rounds, macro_rounds):
        engine.predict_rows(feats, macros, rows)
    return (time.perf_counter() - start) / (len(feature_rounds) * width)


def _bench_batched() -> dict:
    """The lane-batched engine (ISSUE 6): raw GEMM batching by width,
    plus the memoized steady state on a periodic workload.

    Two honestly separated numbers:

    * ``raw`` — ``predict_rows`` at full width, every packet computed.
      Bounded below by the per-packet GEMM floor of this machine, so
      the curve flattens once the weights are read once per round.
    * ``steady_state`` — quantized-key memoization (``exact=False``)
      under a periodic feature stream, *after* cache warmup: the regime
      the cache targets (steady traffic repeating its regime), where
      packets stop paying for GEMMs at all.  The hit rate is reported
      alongside — the speedup only applies where the workload actually
      revisits cached transitions.

    Speedups are against the *same-run* scalar fused float32 engine —
    the strongest pre-existing path, measured here under identical
    conditions rather than read from a previous JSON.
    """
    model, standardizer = _model_and_standardizer("lstm", "shared")
    kwargs = dict(
        feature_mean=standardizer.mean, feature_std=standardizer.std
    )
    compiled64 = compile_inference(
        model.lstm, model.drop_head, model.latency_head, dtype=np.float64, **kwargs
    )
    compiled32 = compile_inference(
        model.lstm, model.drop_head, model.latency_head, dtype=np.float32, **kwargs
    )
    input_size = model.config.input_size
    features = np.random.default_rng(11).normal(size=(4000, input_size))

    # Scalar baseline and every width run interleaved trials (machine
    # speed drifts on shared runners; a baseline measured once before
    # the sweep would make every speedup a comparison across epochs).
    scalar32 = compiled32.engine()
    pool = [features[i] for i in range(len(features))]
    setups = {}
    for width in BATCH_WIDTHS:
        rows = list(range(width))
        rounds = max(2, PACKETS // width)
        feature_rounds = [
            [pool[(r * width + i) % len(pool)] for i in range(width)]
            for r in range(rounds)
        ]
        macro_rounds = [
            [(r + i) % 4 for i in range(width)] for r in range(rounds)
        ]
        engines = {
            "f32": make_batched_engine(compiled32, width),
            "f64": make_batched_engine(compiled64, width),
        }
        setups[width] = (rows, feature_rounds, macro_rounds, engines)

    _time_engine(scalar32, features, WARMUP)
    for width, (rows, feature_rounds, macro_rounds, engines) in setups.items():
        for engine in engines.values():
            _time_batched(
                engine, feature_rounds[: max(1, WARMUP // width)],
                macro_rounds, rows,
            )
    scalar_trials: list[float] = []
    raw_trials: dict[tuple, list[float]] = {
        (width, label): [] for width in BATCH_WIDTHS for label in ("f32", "f64")
    }
    for _ in range(TRIALS):
        scalar_trials.append(_time_engine(scalar32, features, PACKETS))
        for width, (rows, feature_rounds, macro_rounds, engines) in setups.items():
            for label, engine in engines.items():
                raw_trials[(width, label)].append(
                    _time_batched(engine, feature_rounds, macro_rounds, rows)
                )
    scalar_us = min(scalar_trials) * 1e6
    raw: dict[str, dict[str, float]] = {}
    for width in BATCH_WIDTHS:
        entry: dict[str, float] = {}
        for label in ("f32", "f64"):
            per_packet = min(raw_trials[(width, label)])
            entry[f"{label}_us"] = per_packet * 1e6
            entry[f"speedup_{label}"] = scalar_us / (per_packet * 1e6)
        raw[str(width)] = entry

    # Steady state: 64 lanes fed an exactly periodic stream; warm the
    # cache until the quantized orbit closes, then time pure hits.
    width = 64
    period = 4
    rows = list(range(width))
    engine = make_batched_engine(
        compiled32, width, memo=MemoConfig(exact=False)
    )
    rng = np.random.default_rng(12)
    periodic = [rng.normal(size=input_size) for _ in range(period)]
    warmup_rounds = 4500 if FULL_SIZE else 30
    measure_rounds = 1500 if FULL_SIZE else 10
    step = 0
    for _ in range(warmup_rounds):
        engine.predict_rows(
            [periodic[step % period]] * width, [step % 4] * width, rows
        )
        step += 1
    engine.memo_hits = engine.memo_misses = 0
    best = float("inf")
    for _ in range(TRIALS):
        start = time.perf_counter()
        for _ in range(measure_rounds):
            engine.predict_rows(
                [periodic[step % period]] * width, [step % 4] * width, rows
            )
            step += 1
        best = min(best, (time.perf_counter() - start) / (measure_rounds * width))
    seen = engine.memo_hits + engine.memo_misses
    steady_us = best * 1e6
    steady = {
        "batch": width,
        "workload": f"period-{period} feature stream, all lanes",
        "warmup_rounds": warmup_rounds,
        "us_per_packet": steady_us,
        "hit_rate": engine.memo_hits / seen if seen else 0.0,
        "speedup": scalar_us / steady_us,
    }
    return {"scalar_f32_us": scalar_us, "raw": raw, "steady_state": steady}


def _bench_metrics_overhead() -> dict[str, float]:
    """Per-packet cost of the observability layer on the hybrid hot path.

    Reproduces ``ApproximatedCluster.receive``'s instrumentation
    pattern exactly — ``perf_counter`` bracketing and the elapsed-time
    accumulation exist with or without metrics, so the obs layer adds:

    * metrics absent/disabled — handles are ``None``; the marginal cost
      is two ``is not None`` branches per packet (asserted < 2%);
    * metrics enabled — two real ``Histogram.observe`` calls (reported,
      not bounded: enabling telemetry is allowed to cost something).
    """
    from repro.obs import MetricsRegistry

    model, standardizer = _model_and_standardizer("lstm", "shared")
    compiled = compile_inference(
        model.lstm, model.drop_head, model.latency_head,
        feature_mean=standardizer.mean, feature_std=standardizer.std,
        dtype=np.float64,
    )
    engine = compiled.engine()
    features = np.random.default_rng(8).normal(size=(4000, model.config.input_size))
    registry = MetricsRegistry(enabled=True)
    live_infer = registry.histogram("hybrid.inference_seconds", cluster="bench")
    live_latency = registry.histogram("hybrid.predicted_latency_s", cluster="bench")

    count = len(features)

    def run_bare(n: int) -> float:
        # The pre-obs hot path: time + predict + accumulate, no
        # instrumentation code at all.
        total = 0.0
        start = time.perf_counter()
        for i in range(n):
            t0 = time.perf_counter()
            engine.predict(features[i % count], macro_index=i % 4)
            total += time.perf_counter() - t0
        elapsed_all = time.perf_counter() - start
        assert total >= 0.0  # keep the accumulation live
        return elapsed_all / n

    def run_guarded(n: int, m_infer, m_latency) -> float:
        # The post-obs hot path: identical plus the two handle
        # branches; None handles == metrics absent or disabled.
        total = 0.0
        start = time.perf_counter()
        for i in range(n):
            t0 = time.perf_counter()
            _, latency = engine.predict(features[i % count], macro_index=i % 4)
            elapsed = time.perf_counter() - t0
            total += elapsed
            if m_infer is not None:
                m_infer.observe(elapsed)
            if m_latency is not None:
                m_latency.observe(latency)
        elapsed_all = time.perf_counter() - start
        assert total >= 0.0
        return elapsed_all / n

    run_bare(WARMUP)
    run_guarded(WARMUP, None, None)
    run_guarded(WARMUP, live_infer, live_latency)
    # The asserted quantity is a ~1% ratio between two near-identical
    # loops, far below this class of shared runner's drift.  So the
    # conditions run as back-to-back *pairs* of short chunks — noise
    # slow enough to cover a whole pair cancels in the per-pair ratio —
    # and the overhead is the median ratio, immune to the occasional
    # chunk that eats a scheduling burst.  Minima over the same chunks
    # still report the absolute per-packet floors.
    import statistics

    chunk = 100
    pairs = max(1, TRIALS * PACKETS // chunk)
    bare_s, disabled_s, enabled_s = [], [], []
    disabled_ratio, enabled_ratio = [], []
    for _ in range(pairs):
        bare_i = run_bare(chunk)
        disabled_i = run_guarded(chunk, None, None)
        enabled_i = run_guarded(chunk, live_infer, live_latency)
        bare_s.append(bare_i)
        disabled_s.append(disabled_i)
        enabled_s.append(enabled_i)
        disabled_ratio.append(disabled_i / bare_i)
        enabled_ratio.append(enabled_i / bare_i)
    return {
        "bare_us": min(bare_s) * 1e6,
        "disabled_us": min(disabled_s) * 1e6,
        "enabled_us": min(enabled_s) * 1e6,
        "disabled_overhead": statistics.median(disabled_ratio) - 1.0,
        "enabled_overhead": statistics.median(enabled_ratio) - 1.0,
    }


def _bench_trace_overhead() -> dict[str, float]:
    """Per-packet cost of the flight recorder on the hybrid hot path.

    Two estimators, one synthetic and one end-to-end:

    *Synthetic rotation* reproduces the traced ``ApproximatedCluster``
    delivery exactly: ``engine.predict`` then one ``packet_span`` (flow
    attribution + a tuple append into the bounded ring, at capacity, so
    steady-state eviction is included).  Same paired-chunk median
    estimator as the metrics section, with one refinement: the three
    conditions *rotate* order across pairs, so drift inside one pair
    (frequency scaling, a neighbour's burst) biases each condition
    equally often and cancels in the median.  This gates the disabled
    path (a single ``is not None`` branch, < 0.5%).  The enabled ratio
    is reported but not gated: each GEMM evicts the recorder's cache
    lines, so against a pure-inference denominator the ratio is a
    cache-cold worst case, several-fold above tracing's share of a
    real run.

    *End-to-end accounting* prices the enabled path against the
    denominator the contract names — a whole hybrid simulation.  Direct
    traced/untraced wallclock (or CPU) pairs cannot resolve ~1% on a
    shared runner (run-to-run spread is an order of magnitude larger),
    so instead every recorder call in a real traced run is timed in
    place: a subclass brackets ``packet_span``/``span``/``event`` with
    ``perf_counter`` and the estimate is the median per-call cost times
    the deterministic call count, over the minimum untraced CPU time
    across trials.  The numerator is biased high (it pays an extra
    method dispatch and the clock pair on every call) and the
    denominator is a floor, so the estimate is conservative — and,
    unlike the synthetic ratio, the recorder sees the cache state a
    real simulation gives it.  This gates the enabled path (< 2%:
    following a flow must stay cheap enough to leave tracing on during
    real measurements).
    """
    import statistics

    from repro.core.hybrid import HybridConfig
    from repro.core.pipeline import (
        ExperimentConfig,
        run_hybrid_simulation,
        train_reusable_model,
    )
    from repro.obs.trace import FlightRecorder
    from repro.topology.clos import ClosParams

    model, standardizer = _model_and_standardizer("lstm", "shared")
    compiled = compile_inference(
        model.lstm, model.drop_head, model.latency_head,
        feature_mean=standardizer.mean, feature_std=standardizer.std,
        dtype=np.float64,
    )
    engine = compiled.engine()
    features = np.random.default_rng(9).normal(size=(4000, model.config.input_size))
    count = len(features)

    class _Packet:
        __slots__ = ("src", "dst", "src_port", "dst_port")

        def __init__(self):
            self.src, self.dst = "h-bench", "h-peer"
            self.src_port, self.dst_port = 40001, 80

    packet = _Packet()
    tracer = FlightRecorder(seed=7, capacity=4096)
    tracer.register_flow(0, key=("h-bench", 40001))
    # Pre-fill the ring so the timed appends all pay eviction.
    for _ in range(tracer.capacity + 1):
        tracer.event("warm", t=0.0)

    def run(n: int, recorder) -> float:
        # The traced delivery path: predict, then one guarded
        # packet_span (cluster_model.py's exact pattern).
        start = time.perf_counter()
        for i in range(n):
            t0 = time.perf_counter()
            _, latency = engine.predict(features[i % count], macro_index=i % 4)
            if recorder is not None:
                recorder.packet_span(
                    "model.decide", t0, t0 + latency, packet,
                    "bench", "core-1", False,
                )
        return (time.perf_counter() - start) / n

    run(WARMUP, None)
    run(WARMUP, tracer)
    chunk = 100
    pairs = max(3, TRIALS * PACKETS // chunk)
    rotations = (
        ("bare", "disabled", "enabled"),
        ("disabled", "enabled", "bare"),
        ("enabled", "bare", "disabled"),
    )
    samples: dict[str, list[float]] = {"bare": [], "disabled": [], "enabled": []}
    disabled_ratio, enabled_ratio, record_cost = [], [], []
    for index in range(pairs):
        timed: dict[str, float] = {}
        for condition in rotations[index % 3]:
            timed[condition] = run(chunk, tracer if condition == "enabled" else None)
        for condition, value in timed.items():
            samples[condition].append(value)
        disabled_ratio.append(timed["disabled"] / timed["bare"])
        enabled_ratio.append(timed["enabled"] / timed["bare"])
        record_cost.append(timed["enabled"] - timed["bare"])
    # Cache-cold per-record ceiling; a negative median just means the
    # cost is below this run's noise floor, so clamp at free.
    per_record_s = max(statistics.median(record_cost), 0.0)

    # --- end-to-end accounting against a real hybrid run -------------
    class _TimedRecorder(FlightRecorder):
        """Times every record call in place (biases the cost *up* by
        one extra dispatch plus the clock pair — conservative)."""

        def __init__(self, *a, **kw):
            super().__init__(*a, **kw)
            self.call_seconds: list[float] = []

        def packet_span(self, *a):
            start = time.perf_counter()
            trace = super().packet_span(*a)
            self.call_seconds.append(time.perf_counter() - start)
            return trace

        def span(self, *a, **kw):
            start = time.perf_counter()
            super().span(*a, **kw)
            self.call_seconds.append(time.perf_counter() - start)

        def event(self, *a, **kw):
            start = time.perf_counter()
            super().event(*a, **kw)
            self.call_seconds.append(time.perf_counter() - start)

    trained, _ = train_reusable_model(
        ExperimentConfig(
            clos=ClosParams(clusters=2), load=0.25, duration_s=0.004, seed=7
        ),
        MicroModelConfig(
            hidden_size=16, num_layers=1, window=8, train_batches=10
        ),
    )
    run_config = ExperimentConfig(
        clos=ClosParams(clusters=2), load=0.5, duration_s=0.003, seed=11
    )
    hybrid = HybridConfig(elide_remote_traffic=False)
    run_tracer = _TimedRecorder(seed=run_config.seed)
    run_hybrid_simulation(run_config, trained, hybrid=hybrid, tracer=run_tracer)
    # Median per-call cost x call count: robust to the occasional call
    # that absorbs a scheduler preemption, faithful to the cache state
    # the recorder actually runs in.
    in_situ_record_s = statistics.median(run_tracer.call_seconds)
    run_records = run_tracer.recorded
    cpu_samples = []
    for _ in range(3):
        cpu0 = time.process_time()
        run_hybrid_simulation(run_config, trained, hybrid=hybrid)
        cpu_samples.append(time.process_time() - cpu0)
    run_cpu_s = min(cpu_samples)
    return {
        "bare_us": min(samples["bare"]) * 1e6,
        "disabled_us": min(samples["disabled"]) * 1e6,
        "enabled_us": min(samples["enabled"]) * 1e6,
        "disabled_overhead": statistics.median(disabled_ratio) - 1.0,
        "enabled_overhead": statistics.median(enabled_ratio) - 1.0,
        "per_record_cold_us": per_record_s * 1e6,
        "per_record_in_situ_us": in_situ_record_s * 1e6,
        "run_records": run_records,
        "run_cpu_s": run_cpu_s,
        "enabled_overhead_estimate": in_situ_record_s * run_records / run_cpu_s,
    }


def test_hotpath_inference_speedup():
    """Fused vs. reference single-packet latency across model variants."""
    variants = {
        "lstm": ("lstm", "shared"),
        "gru": ("gru", "shared"),
        "lstm_per_macro": ("lstm", "per_macro"),
    }
    results = {name: _bench_variant(*spec) for name, spec in variants.items()}
    batched = _bench_batched()
    overhead = _bench_metrics_overhead()
    trace_overhead = _bench_trace_overhead()

    default = results["lstm"]
    payload = {
        "benchmark": "hotpath_inference",
        "model": "2-layer/128-hidden (paper default), 21 features",
        "timed_packets": PACKETS,
        "trials": TRIALS,
        "method": "min over interleaved trials of mean per-packet seconds",
        # Headline: the fused engine's speed mode vs. the only
        # pre-existing path (reference predict_step, float64).
        "speedup": default["speedup_float32"],
        "speedup_float64": default["speedup_float64"],
        "max_abs_diff_float64": default["max_abs_diff_float64"],
        "variants": results,
        "batched": batched,
        "metrics_overhead": overhead,
        "trace_overhead": trace_overhead,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [
            name,
            f"{r['reference_us']:.1f}",
            f"{r['fused_float64_us']:.1f}",
            f"{r['fused_float32_us']:.1f}",
            f"{r['speedup_float64']:.2f}x",
            f"{r['speedup_float32']:.2f}x",
            f"{r['max_abs_diff_float64']:.2e}",
        ]
        for name, r in results.items()
    ]
    steady = batched["steady_state"]
    batched_rows = [
        [
            width,
            f"{entry['f64_us']:.2f}",
            f"{entry['f32_us']:.2f}",
            f"{entry['speedup_f64']:.2f}x",
            f"{entry['speedup_f32']:.2f}x",
        ]
        for width, entry in batched["raw"].items()
    ]
    batched_rows.append(
        [
            f"{steady['batch']} (memo)",
            "-",
            f"{steady['us_per_packet']:.2f}",
            "-",
            f"{steady['speedup']:.2f}x @ {steady['hit_rate']:.0%} hits",
        ]
    )
    batched_table = format_table(
        ["batch", "f64 us/pkt", "f32 us/pkt", "f64 speedup", "f32 speedup"],
        batched_rows,
    ) + f"\n(speedups vs same-run scalar fused f32: {batched['scalar_f32_us']:.2f} us/pkt)"
    overhead_table = format_table(
        ["obs mode", "us/pkt", "overhead"],
        [
            ["bare (pre-obs)", f"{overhead['bare_us']:.2f}", "-"],
            [
                "metrics disabled",
                f"{overhead['disabled_us']:.2f}",
                f"{overhead['disabled_overhead']:+.2%}",
            ],
            [
                "metrics enabled",
                f"{overhead['enabled_us']:.2f}",
                f"{overhead['enabled_overhead']:+.2%}",
            ],
            [
                "tracing disabled",
                f"{trace_overhead['disabled_us']:.2f}",
                f"{trace_overhead['disabled_overhead']:+.2%}",
            ],
            [
                "tracing enabled (cache-cold)",
                f"{trace_overhead['enabled_us']:.2f}",
                f"{trace_overhead['enabled_overhead']:+.2%}",
            ],
            [
                "tracing end-to-end (est)",
                f"{trace_overhead['per_record_in_situ_us']:.2f}/rec",
                f"{trace_overhead['enabled_overhead_estimate']:+.2%}",
            ],
        ],
    )
    write_result(
        "hotpath_inference",
        format_table(
            ["variant", "ref us/pkt", "f64 us/pkt", "f32 us/pkt",
             "f64 speedup", "f32 speedup", "f64 max diff"],
            rows,
        )
        + "\n\n"
        + batched_table
        + "\n\n"
        + overhead_table,
    )

    for name, r in results.items():
        assert r["max_abs_diff_float64"] <= EXACTNESS_BOUND, name
        assert r["speedup_float64"] >= MIN_SPEEDUP_F64, (name, r)
        assert r["speedup_float32"] >= MIN_SPEEDUP_F32, (name, r)
    if FULL_SIZE:
        # Smoke runs time too few rounds (and too few chunk pairs, for
        # the overhead median) for these to be meaningful; full-size
        # runs gate them.
        # The obs contract: not measuring must be (near-)free.
        assert (
            overhead["disabled_overhead"] < METRICS_DISABLED_OVERHEAD_BOUND
        ), overhead
        # And the tracing contract: even *measuring* a flow is cheap.
        # The enabled gate applies to the end-to-end accounting estimate
        # (see _bench_trace_overhead); the synthetic enabled ratio is a
        # cache-cold worst case and is reported, not gated.
        assert (
            trace_overhead["disabled_overhead"] < TRACE_DISABLED_OVERHEAD_BOUND
        ), trace_overhead
        assert (
            trace_overhead["enabled_overhead_estimate"]
            < TRACE_ENABLED_OVERHEAD_BOUND
        ), trace_overhead
        for width in ("64", "512"):
            assert (
                batched["raw"][width]["speedup_f32"] >= MIN_BATCHED_SPEEDUP_F32
            ), (width, batched)
        assert steady["speedup"] >= MIN_STEADY_SPEEDUP, steady
        assert steady["hit_rate"] >= MIN_STEADY_HIT_RATE, steady
