"""Hot-path inference: fused engine vs. the reference predict_step.

The hybrid simulator's per-packet cost is the micro model step; this
benchmark measures exactly that — single-packet inference latency on
the paper's default 2-layer/128-hidden LSTM — for the reference path
(``Standardizer.transform`` + ``MicroModel.predict_step``, what every
packet paid before the fused engine existed) against the compiled
engine of :mod:`repro.nn.infer` in both precisions.  A second section
prices the observability layer on the same hot path: bare loop vs. the
``None``-handle branch pattern (metrics disabled; asserted < 2%
overhead) vs. live histogram observation (metrics enabled; reported).

Results land in two places:

* ``benchmarks/results/hotpath_inference.txt`` — the usual bench table;
* ``BENCH_hotpath.json`` at the repo root — machine-readable trajectory
  file tracked in git, so per-PR perf history is diffable.

Methodology: the reference and fused paths run interleaved trials and
the *minimum* per-packet time across trials is reported — the standard
noise-floor estimator for microbenchmarks (any deviation upward is
scheduler/cache interference, not the code under test).  Exactness of
the float64 engine against the oracle is asserted to <= 1e-9 on the
same run.

``REPRO_HOTPATH_PACKETS`` shrinks the timed packet count for CI smoke
runs (the checked-in JSON comes from a full-size run).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.core.micro import MicroModel, MicroModelConfig
from repro.nn.data import Standardizer
from repro.nn.infer import compile_inference

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_hotpath.json"

#: Timed packets per trial; override for CI smoke.
PACKETS = int(os.environ.get("REPRO_HOTPATH_PACKETS", "2000"))
TRIALS = 5
WARMUP = 200

#: Conservative regression floors (soft, far below typical results) so
#: the bench doubles as a CI guard without flaking on noisy runners.
MIN_SPEEDUP_F64 = 1.1
MIN_SPEEDUP_F32 = 1.5
#: The fused float64 engine must match the oracle to this bound (hard).
EXACTNESS_BOUND = 1e-9
#: Observability contract: with metrics absent/disabled, the per-packet
#: hot path may cost at most this fraction more than the bare path.
METRICS_DISABLED_OVERHEAD_BOUND = 0.02


def _model_and_standardizer(cell: str, heads: str) -> tuple[MicroModel, Standardizer]:
    config = MicroModelConfig(cell=cell, heads=heads, seed=5)
    model = MicroModel(config, np.random.default_rng(5))
    rng = np.random.default_rng(6)
    # Perturb away from the symmetric init at a spectral-radius-~1
    # scale (like a trained model's weights) so gates are exercised.
    for parameter in model.parameters():
        parameter.value[...] = rng.normal(
            scale=1.0 / np.sqrt(config.hidden_size), size=parameter.value.shape
        )
    standardizer = Standardizer()
    standardizer.mean = rng.normal(size=config.input_size)
    standardizer.std = np.abs(rng.normal(size=config.input_size)) + 0.5
    return model, standardizer


def _time_reference(model, standardizer, features, n) -> float:
    state = model.initial_state()
    start = time.perf_counter()
    for i in range(n):
        _, _, state = model.predict_step(
            standardizer.transform(features[i % len(features)]),
            state,
            macro_index=i % 4,
        )
    return (time.perf_counter() - start) / n


def _time_engine(engine, features, n) -> float:
    start = time.perf_counter()
    for i in range(n):
        engine.predict(features[i % len(features)], macro_index=i % 4)
    return (time.perf_counter() - start) / n


def _max_abs_diff(model, standardizer, engine, features) -> float:
    engine.reset()
    state = model.initial_state()
    worst = 0.0
    for i in range(min(len(features), 500)):
        raw = features[i]
        macro_index = i % 4
        drop_ref, latency_ref, state = model.predict_step(
            standardizer.transform(raw), state, macro_index=macro_index
        )
        drop_fused, latency_fused = engine.predict(raw, macro_index=macro_index)
        worst = max(worst, abs(drop_ref - drop_fused), abs(latency_ref - latency_fused))
    return worst


def _bench_variant(cell: str, heads: str) -> dict[str, float]:
    model, standardizer = _model_and_standardizer(cell, heads)
    compiled64 = compile_inference(
        model.lstm, model.drop_head, model.latency_head,
        feature_mean=standardizer.mean, feature_std=standardizer.std,
        dtype=np.float64,
    )
    compiled32 = compile_inference(
        model.lstm, model.drop_head, model.latency_head,
        feature_mean=standardizer.mean, feature_std=standardizer.std,
        dtype=np.float32,
    )
    engine64, engine32 = compiled64.engine(), compiled32.engine()
    features = np.random.default_rng(7).normal(size=(4000, model.config.input_size))

    max_diff64 = _max_abs_diff(model, standardizer, engine64, features)

    # Warm every path (buffers, BLAS threads, branch caches), then
    # interleave trials so ambient noise hits all paths equally.
    _time_reference(model, standardizer, features, WARMUP)
    _time_engine(engine64, features, WARMUP)
    _time_engine(engine32, features, WARMUP)
    ref_s, f64_s, f32_s = [], [], []
    for _ in range(TRIALS):
        ref_s.append(_time_reference(model, standardizer, features, PACKETS))
        f64_s.append(_time_engine(engine64, features, PACKETS))
        f32_s.append(_time_engine(engine32, features, PACKETS))
    reference, fused64, fused32 = min(ref_s), min(f64_s), min(f32_s)
    return {
        "reference_us": reference * 1e6,
        "fused_float64_us": fused64 * 1e6,
        "fused_float32_us": fused32 * 1e6,
        "speedup_float64": reference / fused64,
        "speedup_float32": reference / fused32,
        "max_abs_diff_float64": max_diff64,
    }


def _bench_metrics_overhead() -> dict[str, float]:
    """Per-packet cost of the observability layer on the hybrid hot path.

    Reproduces ``ApproximatedCluster.receive``'s instrumentation
    pattern exactly — ``perf_counter`` bracketing and the elapsed-time
    accumulation exist with or without metrics, so the obs layer adds:

    * metrics absent/disabled — handles are ``None``; the marginal cost
      is two ``is not None`` branches per packet (asserted < 2%);
    * metrics enabled — two real ``Histogram.observe`` calls (reported,
      not bounded: enabling telemetry is allowed to cost something).
    """
    from repro.obs import MetricsRegistry

    model, standardizer = _model_and_standardizer("lstm", "shared")
    compiled = compile_inference(
        model.lstm, model.drop_head, model.latency_head,
        feature_mean=standardizer.mean, feature_std=standardizer.std,
        dtype=np.float64,
    )
    engine = compiled.engine()
    features = np.random.default_rng(8).normal(size=(4000, model.config.input_size))
    registry = MetricsRegistry(enabled=True)
    live_infer = registry.histogram("hybrid.inference_seconds", cluster="bench")
    live_latency = registry.histogram("hybrid.predicted_latency_s", cluster="bench")

    count = len(features)

    def run_bare(n: int) -> float:
        # The pre-obs hot path: time + predict + accumulate, no
        # instrumentation code at all.
        total = 0.0
        start = time.perf_counter()
        for i in range(n):
            t0 = time.perf_counter()
            engine.predict(features[i % count], macro_index=i % 4)
            total += time.perf_counter() - t0
        elapsed_all = time.perf_counter() - start
        assert total >= 0.0  # keep the accumulation live
        return elapsed_all / n

    def run_guarded(n: int, m_infer, m_latency) -> float:
        # The post-obs hot path: identical plus the two handle
        # branches; None handles == metrics absent or disabled.
        total = 0.0
        start = time.perf_counter()
        for i in range(n):
            t0 = time.perf_counter()
            _, latency = engine.predict(features[i % count], macro_index=i % 4)
            elapsed = time.perf_counter() - t0
            total += elapsed
            if m_infer is not None:
                m_infer.observe(elapsed)
            if m_latency is not None:
                m_latency.observe(latency)
        elapsed_all = time.perf_counter() - start
        assert total >= 0.0
        return elapsed_all / n

    run_bare(WARMUP)
    run_guarded(WARMUP, None, None)
    run_guarded(WARMUP, live_infer, live_latency)
    bare_s, disabled_s, enabled_s = [], [], []
    for _ in range(TRIALS):
        bare_s.append(run_bare(PACKETS))
        disabled_s.append(run_guarded(PACKETS, None, None))
        enabled_s.append(run_guarded(PACKETS, live_infer, live_latency))
    bare, disabled, enabled = min(bare_s), min(disabled_s), min(enabled_s)
    return {
        "bare_us": bare * 1e6,
        "disabled_us": disabled * 1e6,
        "enabled_us": enabled * 1e6,
        "disabled_overhead": disabled / bare - 1.0,
        "enabled_overhead": enabled / bare - 1.0,
    }


def test_hotpath_inference_speedup():
    """Fused vs. reference single-packet latency across model variants."""
    variants = {
        "lstm": ("lstm", "shared"),
        "gru": ("gru", "shared"),
        "lstm_per_macro": ("lstm", "per_macro"),
    }
    results = {name: _bench_variant(*spec) for name, spec in variants.items()}
    overhead = _bench_metrics_overhead()

    default = results["lstm"]
    payload = {
        "benchmark": "hotpath_inference",
        "model": "2-layer/128-hidden (paper default), 21 features",
        "timed_packets": PACKETS,
        "trials": TRIALS,
        "method": "min over interleaved trials of mean per-packet seconds",
        # Headline: the fused engine's speed mode vs. the only
        # pre-existing path (reference predict_step, float64).
        "speedup": default["speedup_float32"],
        "speedup_float64": default["speedup_float64"],
        "max_abs_diff_float64": default["max_abs_diff_float64"],
        "variants": results,
        "metrics_overhead": overhead,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [
        [
            name,
            f"{r['reference_us']:.1f}",
            f"{r['fused_float64_us']:.1f}",
            f"{r['fused_float32_us']:.1f}",
            f"{r['speedup_float64']:.2f}x",
            f"{r['speedup_float32']:.2f}x",
            f"{r['max_abs_diff_float64']:.2e}",
        ]
        for name, r in results.items()
    ]
    overhead_table = format_table(
        ["obs mode", "us/pkt", "overhead"],
        [
            ["bare (pre-obs)", f"{overhead['bare_us']:.2f}", "-"],
            [
                "metrics disabled",
                f"{overhead['disabled_us']:.2f}",
                f"{overhead['disabled_overhead']:+.2%}",
            ],
            [
                "metrics enabled",
                f"{overhead['enabled_us']:.2f}",
                f"{overhead['enabled_overhead']:+.2%}",
            ],
        ],
    )
    write_result(
        "hotpath_inference",
        format_table(
            ["variant", "ref us/pkt", "f64 us/pkt", "f32 us/pkt",
             "f64 speedup", "f32 speedup", "f64 max diff"],
            rows,
        )
        + "\n\n"
        + overhead_table,
    )

    for name, r in results.items():
        assert r["max_abs_diff_float64"] <= EXACTNESS_BOUND, name
        assert r["speedup_float64"] >= MIN_SPEEDUP_F64, (name, r)
        assert r["speedup_float32"] >= MIN_SPEEDUP_F32, (name, r)
    # The obs contract: not measuring must be (near-)free.
    assert overhead["disabled_overhead"] < METRICS_DISABLED_OVERHEAD_BOUND, overhead
