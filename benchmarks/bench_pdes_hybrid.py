"""Sharded-hybrid scaling: events/second vs. worker count.

The fusion's performance claim (ISSUE 8 / DESIGN.md §11): once the
full-fidelity cluster and the per-cluster model shards are spread
across PDES workers, the dominant cost on big fabrics — model
inference for the approximated clusters — parallelizes, so a 4-worker
sharded run should beat the single-process hybrid's events/second at
32+ clusters even after paying for windowed synchronization.

For each fabric size this benchmark runs the same seeded workload
(remote-traffic elision *off*, so every approximated cluster carries
inference load) under

* ``hybrid`` — single-process :func:`run_hybrid_simulation` baseline;
* ``pdes_hybrid`` at 1, 2 and 4 workers — :func:`run_hybrid_sharded`,
  whose wall-clock excludes setup (spawn, topology build, model load),
  mirroring the plain PDES engine's methodology.

Outcomes are byte-identity-checked against the baseline at every
worker count (the determinism contract is not suspended for speed
runs).  Results merge into ``BENCH_scale.json`` at the repo root as a
``pdes_hybrid`` series (the cascade series is preserved) and into
``benchmarks/results/pdes_hybrid.txt``.

Two acceptance gates, both at the 32-cluster row:

* **wall-clock** — 4 workers beat the single-process hybrid's
  events/second.  Only enforced on hosts with at least 4 CPUs: worker
  processes on a smaller host time-slice one core, so wall-clock can
  only measure synchronization overhead, never the parallel win.
* **CPU split** (always enforced, core-count independent) — the
  busiest worker's CPU seconds are at most ``MAX_CPU_SHARE`` of the
  single-process hybrid's CPU seconds.  That is the parallel critical
  path: it bounds the wall-clock achievable with enough cores, so a
  passing split *is* the ≥2x speedup claim, measured rather than
  hoped for.

``REPRO_PDES_CLUSTERS`` (comma-separated sizes) shrinks the sweep for
smoke runs; the gates only bind when the gate size (32) is swept.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import write_result
from repro.analysis.reporting import format_table
from repro.core.hybrid import HybridConfig
from repro.core.pipeline import ExperimentConfig, run_hybrid_simulation
from repro.pdes import HybridShardConfig, outcome_signature, run_hybrid_sharded
from repro.topology.clos import ClosParams

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_scale.json"

#: Fabric sizes swept; override for smoke runs (e.g. "4").
CLUSTERS = tuple(
    int(c) for c in os.environ.get("REPRO_PDES_CLUSTERS", "32,128").split(",")
)
WORKER_COUNTS = (1, 2, 4)
DURATION_S = 0.002
LOAD = 0.25
SEED = 42

#: Acceptance gates (ISSUE 8): at the gate size, ≥4 workers must beat
#: the single-process hybrid — on events/second when the host has the
#: cores to show it, and always on the parallel critical path (the
#: busiest worker's CPU share of the single-process CPU cost).
GATE_CLUSTERS = 32
GATE_WORKERS = 4
MAX_CPU_SHARE = 0.5
HOST_CPUS = os.cpu_count() or 1
HYBRID = HybridConfig(elide_remote_traffic=False)


def _run_one_size(clusters: int, trained) -> dict:
    config = ExperimentConfig(
        clos=ClosParams(clusters=clusters),
        load=LOAD,
        duration_s=DURATION_S,
        seed=SEED,
    )

    start = time.perf_counter()
    cpu_start = time.process_time()
    baseline, _ = run_hybrid_simulation(config, trained, hybrid=HYBRID)
    baseline_cpu_s = time.process_time() - cpu_start
    baseline_s = time.perf_counter() - start
    baseline_sig = outcome_signature(
        baseline.fcts,
        baseline.rtt_samples,
        baseline.drops,
        baseline.flows_completed,
    )

    row = {
        "clusters": clusters,
        "duration_s": DURATION_S,
        "hybrid": {
            "wallclock_s": baseline_s,
            "cpu_s": baseline_cpu_s,
            "events": baseline.events_executed,
            "events_per_sec": baseline.events_executed / baseline_s,
            "flows_completed": baseline.flows_completed,
        },
        "workers": {},
    }
    for workers in WORKER_COUNTS:
        result = run_hybrid_sharded(
            config, trained, shard=HybridShardConfig(workers=workers),
            hybrid=HYBRID,
        )
        assert result.outcome_signature() == baseline_sig, (
            f"sharded outcome diverged at {clusters} clusters, "
            f"{workers} workers"
        )
        assert result.invariant_violations == 0
        wallclock = result.wallclock_seconds
        row["workers"][str(workers)] = {
            "wallclock_s": wallclock,
            "events": result.events_executed,
            "events_per_sec": result.events_executed / wallclock,
            "windows": result.windows,
            "exchanges": result.exchanges,
            "cut_links": result.cut_links,
            "stall_seconds": result.stall_seconds,
            "max_worker_cpu_s": result.max_worker_cpu_seconds,
            "max_cpu_share": result.max_worker_cpu_seconds / baseline_cpu_s,
            "speedup_vs_hybrid": baseline_s / wallclock,
        }
    return row


def test_pdes_hybrid_scale(trained_bundle):
    trained, _ = trained_bundle
    rows = [_run_one_size(clusters, trained) for clusters in CLUSTERS]

    series = {
        "load": LOAD,
        "seed": SEED,
        "duration_s": DURATION_S,
        "worker_counts": list(WORKER_COUNTS),
        "host_cpus": HOST_CPUS,
        "gate": {
            "clusters": GATE_CLUSTERS,
            "workers": GATE_WORKERS,
            "max_cpu_share": MAX_CPU_SHARE,
            "wallclock_gate_enforced": HOST_CPUS >= GATE_WORKERS,
        },
        "rows": rows,
    }
    merged: dict = {}
    if JSON_PATH.exists():
        merged = json.loads(JSON_PATH.read_text())
    merged["pdes_hybrid"] = series
    JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")

    table_rows = []
    for row in rows:
        cells = [
            row["clusters"],
            f"{row['hybrid']['wallclock_s']:.2f}",
            f"{row['hybrid']['events_per_sec'] / 1e3:.1f}k",
        ]
        for workers in WORKER_COUNTS:
            shard = row["workers"][str(workers)]
            cells.append(
                f"{shard['wallclock_s']:.2f} "
                f"({shard['events_per_sec'] / 1e3:.1f}k, "
                f"cpu {shard['max_cpu_share']:.2f})"
            )
        table_rows.append(cells)
    write_result(
        "pdes_hybrid",
        format_table(
            ["clusters", "hybrid s", "ev/s"]
            + [f"w={w} s (ev/s, max cpu share)" for w in WORKER_COUNTS],
            table_rows,
        )
        + f"\n(load {LOAD}, seed {SEED}, {DURATION_S * 1e3:g} ms simulated;"
        f" host has {HOST_CPUS} CPU(s); remote elision off; sharded"
        " wall-clock excludes setup; 'cpu' is the busiest worker's CPU"
        " share of the single-process CPU cost — the parallel critical"
        " path; outcomes byte-identical to the baseline at every worker"
        " count)",
    )

    for row in rows:
        if row["clusters"] != GATE_CLUSTERS:
            continue
        gate = row["workers"][str(GATE_WORKERS)]
        # Core-count-independent gate: the busiest worker carries at
        # most MAX_CPU_SHARE of the single-process CPU cost, so ≥2x
        # wall-clock speedup is available wherever the cores exist.
        assert gate["max_cpu_share"] <= MAX_CPU_SHARE, (
            f"busiest worker's CPU share {gate['max_cpu_share']:.2f} "
            f"exceeds {MAX_CPU_SHARE} at {GATE_CLUSTERS} clusters / "
            f"{GATE_WORKERS} workers — the shard split does not "
            "parallelize the load"
        )
        if HOST_CPUS >= GATE_WORKERS:
            assert (
                gate["events_per_sec"] > row["hybrid"]["events_per_sec"]
            ), (
                f"{GATE_WORKERS}-worker sharded hybrid "
                f"({gate['events_per_sec']:.0f} ev/s) must beat the "
                f"single-process hybrid "
                f"({row['hybrid']['events_per_sec']:.0f} ev/s) "
                f"at {GATE_CLUSTERS} clusters"
            )
        else:
            print(
                f"wall-clock gate skipped: host has {HOST_CPUS} CPU(s) "
                f"for {GATE_WORKERS} workers (time-sliced wall-clock "
                "only measures synchronization overhead)"
            )
