"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one figure of the paper (or one ablation
from DESIGN.md).  Three scales via ``REPRO_BENCH_SCALE``:

* ``small`` (default) — scaled-down sizes, minutes of wall-clock;
* ``large`` — the paper's topology sweeps (leaf-spine to 64, 16
  clusters) with a moderate training budget; tens of minutes;
* ``paper`` — additionally the paper's full >50k-batch training
  budget and 128x2 models (hours of CPU).

Results are printed *and* written to ``benchmarks/results/*.txt`` so a
``pytest benchmarks/ --benchmark-only`` run leaves the regenerated
figure data on disk regardless of output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.micro import MicroModelConfig
from repro.core.pipeline import ExperimentConfig, train_reusable_model
from repro.topology.clos import ClosParams

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: "small" (default) finishes in minutes; "paper" uses the paper's sizes.
SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def bench_scale() -> str:
    """The active scale name."""
    return SCALE


def write_result(name: str, text: str) -> None:
    """Persist one experiment's regenerated rows/series."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    # Also emit to stdout for tee'd runs (-s or on failure).
    print(f"\n===== {name} =====\n{text}\n")


def full_sweep() -> bool:
    """True when topology sweeps should use the paper's sizes."""
    return SCALE in ("large", "paper")


@pytest.fixture(scope="session")
def train_experiment() -> ExperimentConfig:
    """The training-stage configuration (2 clusters, Figure 3 left)."""
    duration = 0.02 if SCALE in ("large", "paper") else 0.01
    return ExperimentConfig(
        clos=ClosParams(clusters=2), load=0.25, duration_s=duration, seed=101
    )


@pytest.fixture(scope="session")
def micro_config() -> MicroModelConfig:
    """Micro-model budget for the bench suite.

    The paper's full configuration (128 hidden, 2 layers, >50k batches)
    is available under REPRO_BENCH_SCALE=paper; the small profile keeps
    training to ~1 minute of CPU.
    """
    if SCALE == "paper":
        return MicroModelConfig(train_batches=50_000)
    if SCALE == "large":
        return MicroModelConfig(
            hidden_size=32, num_layers=1, window=16,
            train_batches=800, learning_rate=3e-3,
        )
    return MicroModelConfig(
        hidden_size=32, num_layers=1, window=16,
        train_batches=300, learning_rate=3e-3,
    )


@pytest.fixture(scope="session")
def trained_bundle(train_experiment, micro_config):
    """One trained cluster model shared by every benchmark."""
    trained, full_output = train_reusable_model(train_experiment, micro=micro_config)
    return trained, full_output
