#!/usr/bin/env python3
"""DCTCP vs. New Reno on the web-search workload.

The paper's traffic comes from the DCTCP measurement study (its
reference [3]), and its "Modularity" design goal (Section 3) demands
the framework "be able to model different protocols".  This example
exercises that: the same cluster, the same web-search flows, run once
under loss-based New Reno and once under DCTCP with ECN marking at the
switches — and prints the operator-facing difference: queue occupancy,
drops, and flow completion times.

Run:  python examples/dctcp_vs_newreno.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.des.kernel import Simulator
from repro.net.network import Network, NetworkConfig
from repro.net.tcp.config import TcpConfig
from repro.topology.clos import ClosParams, build_clos
from repro.traffic.apps import TrafficGenerator
from repro.traffic.arrivals import PoissonArrivals, arrival_rate_for_load
from repro.traffic.distributions import web_search_sizes
from repro.traffic.matrix import UniformMatrix

DURATION_S = 0.02
LOAD = 0.35


def run_variant(name: str, tcp: TcpConfig, ecn_threshold: int | None) -> dict:
    """One full-fidelity single-cluster run under a protocol variant."""
    topo = build_clos(ClosParams(clusters=1, cores=2))
    sim = Simulator(seed=21)
    net = Network(
        sim,
        topo,
        config=NetworkConfig(
            tcp=tcp,
            queue_capacity_bytes=300_000,
            ecn_threshold_bytes=ecn_threshold,
        ),
    )
    sizes = web_search_sizes()
    rate = arrival_rate_for_load(LOAD, len(topo.servers()), 10e9, sizes.mean())
    gen = TrafficGenerator(
        sim, net, matrix=UniformMatrix(topo), sizes=sizes,
        arrivals=PoissonArrivals(rate),
    )
    gen.start()

    queue_peak = 0

    def sample():
        nonlocal queue_peak
        queue_peak = max(queue_peak, net.total_queued_bytes())
        sim.schedule(5e-5, sample)

    sim.schedule(5e-5, sample)
    sim.run(until=DURATION_S)

    fcts = np.asarray(gen.completed_fcts())
    return {
        "name": name,
        "flows_done": gen.flows_completed,
        "drops": net.total_drops,
        "queue_peak_kb": queue_peak / 1000,
        "fct_p50_ms": float(np.percentile(fcts, 50)) * 1e3 if fcts.size else float("nan"),
        "fct_p99_ms": float(np.percentile(fcts, 99)) * 1e3 if fcts.size else float("nan"),
        "rtt_p99_us": float(np.percentile(net.rtt_monitor(0).values, 99)) * 1e6,
    }


def main() -> None:
    print(f"Web-search traffic @ {LOAD:.0%} load, {DURATION_S * 1e3:.0f} ms simulated\n")
    variants = [
        run_variant("newreno", TcpConfig(), ecn_threshold=None),
        run_variant("dctcp", TcpConfig(dctcp=True), ecn_threshold=65_000),
    ]
    rows = [
        [v["name"], v["flows_done"], v["drops"], f"{v['queue_peak_kb']:.0f}",
         f"{v['fct_p50_ms']:.3f}", f"{v['fct_p99_ms']:.2f}", f"{v['rtt_p99_us']:.0f}"]
        for v in variants
    ]
    print(format_table(
        ["protocol", "flows done", "drops", "peak queue (KB)",
         "FCT p50 (ms)", "FCT p99 (ms)", "RTT p99 (us)"],
        rows,
    ))
    print(
        "\nDCTCP trades ECN marks for queue headroom: shorter peak\n"
        "queues and fewer (often zero) drops at similar completion\n"
        "times — the behaviour its designers measured on this same\n"
        "workload, here reproduced inside the simulation substrate."
    )


if __name__ == "__main__":
    main()
