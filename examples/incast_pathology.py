#!/usr/bin/env python3
"""The minimum-window pathology (Section 2.1 of the paper).

"Given enough simultaneous connections, it is possible that the fair
share of each connection is less than their minimum window size.  When
this occurs, TCP will never back off enough to prevent high packet
loss."  The paper cites this as an at-scale behaviour small testbeds
miss — and a reason rate-based congestion control was adopted in
production data centers.

This example reproduces the mechanism with synchronized incast: N
senders transmit to one sink simultaneously.  Below a sender-count
threshold, TCP's backoff keeps loss bounded; above it, the aggregate
of minimum windows alone overruns the sink buffer every RTT and loss
explodes no matter how far the senders back off.

Run:  python examples/incast_pathology.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.des.kernel import Simulator
from repro.net.network import Network, NetworkConfig
from repro.net.tcp.config import TcpConfig
from repro.topology.clos import ClosParams, build_clos, server_name

FLOW_BYTES = 250_000
DURATION_S = 0.2


def run_incast(num_senders: int, seed: int = 1) -> dict[str, float]:
    """Synchronized incast of ``num_senders`` flows into one sink."""
    # Enough racks to supply the senders: 8 servers per cluster.
    clusters = max(1, (num_senders + 8) // 8 + 1)
    topo = build_clos(ClosParams(clusters=clusters))
    sim = Simulator(seed=seed)
    net = Network(
        sim,
        topo,
        config=NetworkConfig(
            tcp=TcpConfig(min_rto_s=0.01),
            queue_capacity_bytes=50_000,  # shallow sink buffer
        ),
    )
    sink = net.host(server_name(0, 0, 0))
    senders = []
    for node in topo.servers():
        if node.name == sink.name or len(senders) >= num_senders:
            continue
        sender = net.host(node.name).open_flow(sink, FLOW_BYTES)
        senders.append(sender)
    for sender in senders:
        sender.start()
    sim.run(until=DURATION_S)

    completed = sum(1 for s in senders if s.completed)
    return {
        "senders": len(senders),
        "completed": completed,
        "drops": net.total_drops,
        "timeouts": sum(s.timeouts for s in senders),
        "retx": sum(s.retransmissions for s in senders),
        "goodput_gbps": completed * FLOW_BYTES * 8 / DURATION_S / 1e9,
    }


def main() -> None:
    print(
        f"Synchronized incast: N senders -> 1 sink, {FLOW_BYTES // 1000} KB "
        f"each, 50 KB sink buffer\n"
    )
    rows = []
    for n in (2, 4, 8, 16, 30):
        result = run_incast(n)
        rows.append([
            result["senders"],
            result["completed"],
            result["drops"],
            result["timeouts"],
            result["retx"],
            f"{result['goodput_gbps']:.2f}",
        ])
        print(f"  N={n} done")
    print()
    print(format_table(
        ["senders", "completed", "drops", "RTOs", "retransmits", "goodput (Gbps)"],
        rows,
    ))
    print(
        "\nDrops and RTOs grow super-linearly with sender count: once\n"
        "the sum of minimum windows exceeds buffer + bandwidth-delay\n"
        "product, loss persists regardless of backoff — the behaviour\n"
        "that 'contributed to the adoption of rate-based congestion\n"
        "control in Google's data center networks' (paper Section 2.1)."
    )


if __name__ == "__main__":
    main()
