#!/usr/bin/env python3
"""Why parallelism alone does not fix simulation speed (Section 2.2).

Runs the same leaf-spine workload single-threaded and under the
conservative PDES engine with 2 and 4 worker processes, at two network
sizes.  On the small fabric parallel workers have little to talk about;
as the fabric grows, the number of cut links (and with it the null-
message volume every synchronization window) grows quadratically while
useful work grows linearly — and the parallel runs fall behind the
single thread, exactly the effect the paper's Figure 1 demonstrates
with OMNeT++'s MPI-based PDES.

Run:  python examples/parallel_simulation_tradeoff.py
(Needs a machine with >= 4 usable cores to be meaningful.)
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.flowsim.workload import generate_workload
from repro.pdes.engine import PdesConfig, run_parallel_simulation, run_single_threaded
from repro.topology.leafspine import LeafSpineParams, build_leaf_spine
from repro.traffic.distributions import web_search_sizes

DURATION_S = 0.003
LOAD = 0.2
SIZES = (4, 16)
WORKER_COUNTS = (2, 4)


def main() -> None:
    rows = []
    for size in SIZES:
        topo = build_leaf_spine(LeafSpineParams(tors=size, spines=size))
        flows = generate_workload(
            topo, duration_s=DURATION_S, load=LOAD, sizes=web_search_sizes(), seed=9
        )
        print(f"leaf-spine {size}x{size} ({len(topo.servers())} servers, "
              f"{len(flows)} flows)...")
        single = run_single_threaded(topo, flows, duration_s=DURATION_S, seed=9)
        row = [f"{size}x{size}", f"{single.sim_seconds_per_second:.2e}"]
        for workers in WORKER_COUNTS:
            parallel = run_parallel_simulation(
                topo, flows, PdesConfig(workers=workers, duration_s=DURATION_S, seed=9)
            )
            row.append(f"{parallel.sim_seconds_per_second:.2e}")
            print(f"  {workers} workers: {parallel.cross_partition_messages:,} "
                  f"cross-partition messages over {parallel.cut_links} cut links")
        rows.append(row)
    print()
    print(format_table(
        ["topology", "single (sim-s/s)"] + [f"{w} workers" for w in WORKER_COUNTS],
        rows,
    ))
    print(
        "\nHigher is better.  Synchronization (null messages per window\n"
        "per cut link, plus barrier latency) eats the parallel gains as\n"
        "the fabric becomes more interconnected — Figure 1's lesson."
    )


if __name__ == "__main__":
    main()
