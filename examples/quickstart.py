#!/usr/bin/env python3
"""Quickstart: the paper's workflow end to end in under a minute.

Three stages (Figure 3 of the paper):

1. Simulate a small two-cluster data center at full packet fidelity,
   recording every packet that crosses one cluster's fabric boundary.
2. Train the LSTM micro models (drop + latency heads) on that trace.
3. Rebuild the network with that cluster replaced by the trained model
   and compare behaviour and cost against the full simulation.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.stats import ks_distance, percentile_summary
from repro.core.micro import MicroModelConfig
from repro.core.pipeline import (
    ExperimentConfig,
    run_hybrid_simulation,
    train_reusable_model,
)
from repro.topology.clos import ClosParams


def main() -> None:
    # The paper's evaluation cluster shape: four switches and eight
    # servers per cluster, 10 GbE links, web-search traffic.
    config = ExperimentConfig(
        clos=ClosParams(clusters=2),
        load=0.25,
        duration_s=0.01,  # 10 ms of simulated time keeps this quick
        seed=7,
    )
    # A small model trains in seconds on CPU; raise hidden_size to 128
    # and train_batches to >50_000 for the paper's full configuration.
    micro = MicroModelConfig(
        hidden_size=32, num_layers=1, window=16,
        train_batches=200, learning_rate=3e-3,
    )

    print("=== Stage 1+2: full-fidelity simulation + training ===")
    trained, full_output = train_reusable_model(config, micro=micro)
    full = full_output.result
    print(f"  simulated {full.sim_seconds * 1e3:.0f} ms "
          f"in {full.wallclock_seconds:.2f} s wall "
          f"({full.events_executed:,} events)")
    print(f"  recorded {len(full_output.records):,} region crossings")
    for key, value in trained.training_summary.items():
        print(f"  {key}: {value:.4g}")

    print("\n=== Stage 3: hybrid simulation (cluster 1 approximated) ===")
    hybrid_result, hybrid = run_hybrid_simulation(config, trained)
    print(f"  simulated {hybrid_result.sim_seconds * 1e3:.0f} ms "
          f"in {hybrid_result.wallclock_seconds:.2f} s wall "
          f"({hybrid_result.events_executed:,} events)")
    print(f"  model handled {hybrid_result.model_packets:,} packets, "
          f"dropped {hybrid_result.model_drops}")
    print(f"  flows elided (both endpoints approximated): "
          f"{hybrid_result.flows_elided}")

    print("\n=== Accuracy: RTT distributions (the paper's Figure 4) ===")
    truth = np.asarray(full.rtt_samples)
    approx = np.asarray(hybrid_result.rtt_samples)
    for name, sample in (("ground truth", truth), ("approximate", approx)):
        stats = percentile_summary(sample, percentiles=(50, 95, 99))
        print(f"  {name:12s}: n={int(stats['count']):5d}  "
              f"p50={stats['p50'] * 1e6:8.1f} us  "
              f"p95={stats['p95'] * 1e6:8.1f} us  "
              f"p99={stats['p99'] * 1e6:8.1f} us")
    print(f"  KS distance between the two RTT CDFs: "
          f"{ks_distance(truth, approx):.3f}")

    print("\n=== Cost ===")
    print(f"  event-count ratio (full/hybrid): "
          f"{full.events_executed / hybrid_result.events_executed:.2f}x")
    print(f"  wall-clock ratio  (full/hybrid): "
          f"{full.wallclock_seconds / hybrid_result.wallclock_seconds:.2f}x")
    print("\nSpeedups grow with cluster count; see "
          "benchmarks/bench_fig5_speedup.py for the Figure 5 sweep.")


if __name__ == "__main__":
    main()
