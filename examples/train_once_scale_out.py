#!/usr/bin/env python3
"""Train once on a small network, reuse the model at growing scale.

This is the economic argument of the paper (Figure 3): the up-front
cost of training a cluster model is paid once on a *two-cluster*
simulation; the trained model then replaces N-1 clusters of arbitrarily
larger deployments.  The example:

1. trains on a 2-cluster full-fidelity run,
2. saves the bundle to ``./cluster_model/`` (the npz + json artifact a
   team would check into their experiment repository),
3. reloads it and drives hybrid simulations at 2, 4, and 8 clusters,
   printing the wall-clock and event-count scaling.

Run:  python examples/train_once_scale_out.py

This is the *manual* version of the workflow; the orchestrated
equivalent is one command over a declarative spec (derived seeds,
model-registry cache, durable per-run manifests)::

    python -m repro runs submit --spec examples/specs/scale_out.json --out runs/
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.reporting import format_table
from repro.core.micro import MicroModelConfig
from repro.core.pipeline import (
    ExperimentConfig,
    run_full_simulation,
    run_hybrid_simulation,
    train_reusable_model,
)
from repro.core.training import TrainedClusterModel
from repro.topology.clos import ClosParams

MODEL_DIR = Path(__file__).resolve().parent / "cluster_model"
CLUSTER_COUNTS = (2, 4, 8)


def main() -> None:
    train_config = ExperimentConfig(
        clos=ClosParams(clusters=2), load=0.25, duration_s=0.01, seed=17
    )
    micro = MicroModelConfig(
        hidden_size=32, num_layers=1, window=16,
        train_batches=250, learning_rate=3e-3,
    )

    print("Training cluster model on a 2-cluster full simulation...")
    trained, _ = train_reusable_model(train_config, micro=micro)
    trained.save(MODEL_DIR)
    print(f"  saved to {MODEL_DIR}/ "
          f"({', '.join(p.name for p in sorted(MODEL_DIR.iterdir()))})")

    # A fresh process would start here: load the artifact from disk.
    loaded = TrainedClusterModel.load(MODEL_DIR)
    print("  reloaded bundle; directions:", [d.value for d in loaded.directions])

    rows = []
    for clusters in CLUSTER_COUNTS:
        config = ExperimentConfig(
            clos=ClosParams(clusters=clusters), load=0.25, duration_s=0.004,
            seed=18,
        )
        full = run_full_simulation(config).result
        hybrid_result, _ = run_hybrid_simulation(config, loaded)
        rows.append([
            clusters,
            clusters * 8,
            f"{full.wallclock_seconds:.2f}",
            f"{hybrid_result.wallclock_seconds:.2f}",
            f"{full.wallclock_seconds / hybrid_result.wallclock_seconds:.2f}x",
            f"{full.events_executed / max(hybrid_result.events_executed, 1):.2f}x",
        ])
        print(f"  {clusters} clusters simulated (full + hybrid)")
    print()
    print(format_table(
        ["clusters", "servers", "full wall (s)", "hybrid wall (s)",
         "speedup", "event ratio"],
        rows,
    ))
    print(
        "\nThe hybrid's cost is dominated by the one full-fidelity\n"
        "cluster plus the traffic that touches it, so its wall-clock\n"
        "stays roughly flat while full simulation grows with the\n"
        "network — speedup increases with cluster count (Figure 5)."
    )


if __name__ == "__main__":
    main()
