#!/usr/bin/env python3
"""Capacity planning for a cluster under web-search traffic.

The motivating use case from the paper's introduction: a researcher or
operator wants to know how a data center cluster behaves as load rises
— where flow completion times blow up, where drops begin, when TCP
enters the pathological regime of Section 2.1.

This example runs the full packet-level simulator (no approximation)
on one cluster at a sweep of offered loads and prints the operator-
facing metrics: FCT percentiles, RTT inflation, drop counts, and
retransmission/timeouts.

Run:  python examples/websearch_capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.slowdown import flow_slowdowns, format_slowdown_table, slowdown_by_bucket
from repro.des.kernel import Simulator
from repro.net.network import Network, NetworkConfig
from repro.topology.clos import ClosParams, build_clos
from repro.traffic.apps import TrafficGenerator
from repro.traffic.arrivals import PoissonArrivals, arrival_rate_for_load
from repro.traffic.distributions import web_search_sizes
from repro.traffic.matrix import UniformMatrix

DURATION_S = 0.01
LOADS = (0.1, 0.3, 0.5, 0.7)


def run_at_load(load: float, seed: int = 3) -> dict[str, float]:
    """One full-fidelity run of a single cluster at the given load."""
    topo = build_clos(ClosParams(clusters=1, cores=2))
    sim = Simulator(seed=seed)
    net = Network(sim, topo, NetworkConfig())
    sizes = web_search_sizes()
    rate = arrival_rate_for_load(load, len(topo.servers()), 10e9, sizes.mean())
    gen = TrafficGenerator(
        sim, net,
        matrix=UniformMatrix(topo),
        sizes=sizes,
        arrivals=PoissonArrivals(rate),
    )
    gen.start()
    sim.run(until=DURATION_S)

    fcts = np.asarray(gen.completed_fcts())
    rtts = np.asarray(net.rtt_monitor(0).values)
    # 4-hop base RTT (same-cluster cross-rack) for slowdown normalization.
    slowdowns = slowdown_by_bucket(gen.flows, 10e9, base_rtt_s=13e-6)
    return {
        "slowdowns": slowdowns,
        "load": load,
        "flows": gen.flows_started,
        "done": gen.flows_completed,
        "fct_p50_ms": float(np.percentile(fcts, 50)) * 1e3 if fcts.size else float("nan"),
        "fct_p99_ms": float(np.percentile(fcts, 99)) * 1e3 if fcts.size else float("nan"),
        "rtt_p50_us": float(np.percentile(rtts, 50)) * 1e6 if rtts.size else float("nan"),
        "rtt_p99_us": float(np.percentile(rtts, 99)) * 1e6 if rtts.size else float("nan"),
        "drops": net.total_drops,
        "events": sim.events_executed,
    }


def main() -> None:
    print(f"Single-cluster web-search sweep ({DURATION_S * 1e3:.0f} ms simulated per load)\n")
    rows = []
    results = []
    for load in LOADS:
        result = run_at_load(load)
        results.append(result)
        rows.append([
            f"{result['load']:.0%}",
            result["flows"],
            result["done"],
            result["fct_p50_ms"],
            result["fct_p99_ms"],
            result["rtt_p50_us"],
            result["rtt_p99_us"],
            result["drops"],
        ])
        print(f"  load {load:.0%} done ({result['events']:,} events)")
    print()
    print(format_table(
        ["load", "flows", "done", "FCT p50 (ms)", "FCT p99 (ms)",
         "RTT p50 (us)", "RTT p99 (us)", "drops"],
        rows,
    ))
    print("\nFCT slowdown by flow size at the heaviest load "
          f"({LOADS[-1]:.0%}):")
    print(format_slowdown_table(results[-1]["slowdowns"]))
    print(
        "\nReading the table: tail FCT and RTT inflate and drops appear\n"
        "well before the average load reaches capacity — the congestion\n"
        "regimes the paper's macro model classifies (Section 4.1)."
    )


if __name__ == "__main__":
    main()
