"""Legacy setup shim.

This environment has setuptools but no ``wheel`` package and no network
access, so PEP 517/660 editable installs (which build a wheel) fail.
With this shim and no ``[build-system]`` table in pyproject.toml,
``pip install -e .`` falls back to ``setup.py develop``, which works
offline.  Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
