"""repro: approximate data center network simulation.

A complete, from-scratch reproduction of *"Fast Network Simulation
Through Approximation or: How Blind Men Can Describe Elephants"*
(Kazer, Sedoc, Ng, Liu, Ungar — HotNets-XVII, 2018).

The package speeds up packet-level data center simulation by replacing
most of the network's cluster fabrics with trained LSTM approximations
while one cluster (and the core layer) runs at full packet fidelity.

Subpackages
-----------
``repro.des``
    Discrete event simulation kernel (the OMNeT++ role).
``repro.nn``
    From-scratch neural network library (the PyTorch role).
``repro.topology``
    Clos / leaf-spine topologies, ECMP routing, partitioning.
``repro.net``
    Packet-level network stack: links, switches, hosts, TCP New Reno.
``repro.traffic``
    DCTCP web-search workload, arrival processes, traffic matrices.
``repro.flowsim``
    Flow-level (fluid) baseline simulator.
``repro.pdes``
    Conservative parallel DES baseline (Figure 1).
``repro.core``
    The paper's contribution: macro-state classifier, LSTM micro
    models, training pipeline, and the hybrid simulator.
``repro.analysis``
    CDFs, distribution distances, text reporting.

Quickstart
----------
See ``examples/quickstart.py`` for the three-stage workflow (Figure 3):
full small simulation -> model training -> large hybrid simulation.
"""

# The version participates in model fingerprints (repro.runs.fingerprint):
# any release that changes feature semantics, macro-classifier behavior,
# or training targets MUST bump it, or registries serve stale models.
# 1.1.0: path_agg normalizer, first-gap EMA seeding, macro idle decay.
__version__ = "1.1.0"

__all__ = ["__version__"]
