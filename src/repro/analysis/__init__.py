"""Measurement analysis: CDFs, distribution distances, reporting.

Figure 4 of the paper compares full and approximate simulations by the
*distribution* of observed RTTs rather than per-packet error, "because
TCP interaction with the model makes these measurements unreliable"
(Section 6.1).  This package provides the empirical CDF machinery and
the distribution distances (Kolmogorov-Smirnov, Wasserstein) used to
quantify that comparison, plus plain-text table/series rendering for
the benchmark harness.
"""

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.link_stats import LinkReport, collect_link_reports, format_link_report
from repro.analysis.stats import (
    ks_distance,
    percentile_summary,
    roc_auc,
    wasserstein_distance,
)
from repro.analysis.reporting import format_series, format_table
from repro.analysis.streaming import StreamingStats
from repro.analysis.slowdown import (
    SlowdownSummary,
    flow_slowdowns,
    format_slowdown_table,
    ideal_fct_s,
    slowdown_by_bucket,
)

__all__ = [
    "EmpiricalCdf",
    "LinkReport",
    "collect_link_reports",
    "format_link_report",
    "format_series",
    "format_table",
    "ks_distance",
    "percentile_summary",
    "SlowdownSummary",
    "flow_slowdowns",
    "format_slowdown_table",
    "ideal_fct_s",
    "roc_auc",
    "slowdown_by_bucket",
    "StreamingStats",
    "wasserstein_distance",
]
