"""Empirical cumulative distribution functions."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class EmpiricalCdf:
    """The empirical CDF of a sample.

    Evaluation uses the right-continuous convention
    ``F(x) = #{samples <= x} / n``.
    """

    def __init__(self, samples: Iterable[float]) -> None:
        values = np.sort(np.asarray(list(samples), dtype=np.float64))
        if values.size == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        self._values = values

    def __len__(self) -> int:
        return int(self._values.size)

    @property
    def sorted_samples(self) -> np.ndarray:
        """Sorted sample values (copy)."""
        return self._values.copy()

    def evaluate(self, x: float | np.ndarray) -> np.ndarray | float:
        """F(x), vectorized."""
        result = np.searchsorted(self._values, np.asarray(x), side="right") / self._values.size
        if np.isscalar(x):
            return float(result)
        return result

    def quantile(self, q: float | np.ndarray) -> np.ndarray | float:
        """Inverse CDF (lower quantile)."""
        q_arr = np.asarray(q, dtype=np.float64)
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise ValueError("quantiles must be in [0, 1]")
        idx = np.clip(np.ceil(q_arr * self._values.size).astype(int) - 1, 0, self._values.size - 1)
        result = self._values[idx]
        if np.isscalar(q):
            return float(result)
        return result

    def curve(self, points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) pairs suitable for plotting/printing.

        Uses log-spaced evaluation points when the data spans decades
        (latency data does), linear otherwise.
        """
        lo, hi = float(self._values[0]), float(self._values[-1])
        if lo > 0 and hi / lo > 100:
            xs = np.logspace(np.log10(lo), np.log10(hi), points)
            # Guard against roundoff: the endpoints must hit the sample
            # extremes exactly so the curve reaches F = 1.
            xs[0], xs[-1] = lo, hi
        else:
            xs = np.linspace(lo, hi, points)
        return xs, np.asarray(self.evaluate(xs))
