"""Per-link utilization and queue reporting.

Turns the raw :class:`~repro.net.port.PortStats` counters of a
finished run into the table an operator reads: utilization, drops,
marks, and peak queue depth per directed link — optionally filtered
to the hottest links.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.net.network import Network


@dataclass(frozen=True)
class LinkReport:
    """Summary of one directed link over a run."""

    link_from: str
    link_to: str
    utilization: float
    bytes_transmitted: int
    packets: int
    drops: int
    marks: int
    peak_queue_bytes: int


def collect_link_reports(network: Network, duration_s: float) -> list[LinkReport]:
    """Summarize every directed port of ``network`` over ``duration_s``.

    Utilization is transmitted bits over capacity x duration; reports
    are sorted by utilization, busiest first.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    reports = []
    for (owner, peer), port in network.ports().items():
        capacity_bits = port.rate_bps * duration_s
        utilization = port.stats.bytes_transmitted * 8.0 / capacity_bits
        reports.append(
            LinkReport(
                link_from=owner,
                link_to=peer,
                utilization=utilization,
                bytes_transmitted=port.stats.bytes_transmitted,
                packets=port.stats.transmitted,
                drops=port.stats.dropped,
                marks=port.stats.marked,
                peak_queue_bytes=port.stats.peak_queued_bytes,
            )
        )
    reports.sort(key=lambda r: r.utilization, reverse=True)
    return reports


def format_link_report(reports: list[LinkReport], top: int | None = 10) -> str:
    """Render reports (busiest ``top``, or all when None) as a table."""
    selected = reports if top is None else reports[:top]
    rows = [
        [
            f"{r.link_from}->{r.link_to}",
            f"{r.utilization:.1%}",
            r.packets,
            r.drops,
            r.marks,
            r.peak_queue_bytes,
        ]
        for r in selected
    ]
    return format_table(
        ["link", "util", "packets", "drops", "marks", "peak_queue_B"], rows
    )
