"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table.

    Floats are rendered with 6 significant digits; everything else via
    ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(text.ljust(widths[i]) for i, text in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float]) -> str:
    """Render one named (x, y) series as a compact two-column block."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: len(xs)={len(xs)} != len(ys)={len(ys)}")
    lines = [f"# series: {name}"]
    for x, y in zip(xs, ys):
        lines.append(f"{x:.6g}\t{y:.6g}")
    return "\n".join(lines)
