"""Normalized flow completion time ("FCT slowdown") analysis.

Data center papers (DCTCP, pFabric, Homa, ...) report flow performance
as *slowdown*: measured FCT divided by the FCT the flow would have on
an idle network.  Slowdown 1 means perfect; the interesting signal is
how slowdown grows for small flows (queueing behind elephants) vs.
large ones (bandwidth sharing).  This module computes per-flow
slowdowns and bucket-by-size summaries from
:class:`~repro.traffic.apps.FlowRecord` lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.net.packet import DEFAULT_MSS, HEADER_BYTES
from repro.traffic.apps import FlowRecord

#: Default size-bucket edges in bytes (spanning the web-search range).
DEFAULT_BUCKETS: tuple[float, ...] = (10e3, 100e3, 1e6, 10e6)


def ideal_fct_s(
    size_bytes: int,
    rate_bps: float,
    base_rtt_s: float,
    mss: int = DEFAULT_MSS,
) -> float:
    """Idle-network FCT for a flow.

    Store-and-forward model: one base RTT of startup (request/ACK
    latency) plus per-packet wire time at line rate (payload + header
    overhead).  This matches how the slowdown literature normalizes.
    """
    if size_bytes < 1:
        raise ValueError(f"size_bytes must be >= 1, got {size_bytes}")
    if rate_bps <= 0 or base_rtt_s < 0:
        raise ValueError("rate_bps must be positive and base_rtt_s non-negative")
    packets = math.ceil(size_bytes / mss)
    wire_bytes = size_bytes + packets * HEADER_BYTES
    return base_rtt_s + wire_bytes * 8.0 / rate_bps


@dataclass(frozen=True)
class SlowdownSummary:
    """Slowdown statistics for one size bucket."""

    bucket_label: str
    flows: int
    p50: float
    p99: float
    mean: float


def flow_slowdowns(
    flows: Iterable[FlowRecord],
    rate_bps: float,
    base_rtt_s: float,
) -> list[tuple[FlowRecord, float]]:
    """Per-flow (record, slowdown) for completed flows.

    Slowdowns are floored at 1.0: a flow cannot genuinely beat the
    idle network, and tiny float excursions below 1 are measurement
    artifacts of the normalization model.
    """
    result = []
    for record in flows:
        if record.fct is None:
            continue
        ideal = ideal_fct_s(record.size_bytes, rate_bps, base_rtt_s)
        result.append((record, max(record.fct / ideal, 1.0)))
    return result


def slowdown_by_bucket(
    flows: Iterable[FlowRecord],
    rate_bps: float,
    base_rtt_s: float,
    bucket_edges: Sequence[float] = DEFAULT_BUCKETS,
) -> list[SlowdownSummary]:
    """Bucket completed flows by size and summarize slowdowns.

    Buckets are ``(-inf, e0], (e0, e1], ..., (en, inf)``; empty buckets
    are omitted.
    """
    edges = list(bucket_edges)
    if edges != sorted(edges):
        raise ValueError("bucket_edges must be sorted ascending")
    pairs = flow_slowdowns(flows, rate_bps, base_rtt_s)
    labels = (
        [f"<={_fmt(edges[0])}"]
        + [f"{_fmt(lo)}-{_fmt(hi)}" for lo, hi in zip(edges, edges[1:])]
        + [f">{_fmt(edges[-1])}"]
    )
    buckets: list[list[float]] = [[] for _ in range(len(edges) + 1)]
    for record, slowdown in pairs:
        index = np.searchsorted(edges, record.size_bytes, side="left")
        buckets[index].append(slowdown)
    summaries = []
    for label, values in zip(labels, buckets):
        if not values:
            continue
        arr = np.asarray(values)
        summaries.append(
            SlowdownSummary(
                bucket_label=label,
                flows=arr.size,
                p50=float(np.percentile(arr, 50)),
                p99=float(np.percentile(arr, 99)),
                mean=float(arr.mean()),
            )
        )
    return summaries


def format_slowdown_table(summaries: list[SlowdownSummary]) -> str:
    """Render bucket summaries as an aligned table."""
    rows = [
        [s.bucket_label, s.flows, f"{s.p50:.2f}", f"{s.p99:.2f}", f"{s.mean:.2f}"]
        for s in summaries
    ]
    return format_table(["size", "flows", "slowdown_p50", "slowdown_p99", "mean"], rows)


def _fmt(size: float) -> str:
    if size >= 1e6:
        return f"{size / 1e6:g}MB"
    if size >= 1e3:
        return f"{size / 1e3:g}KB"
    return f"{size:g}B"
