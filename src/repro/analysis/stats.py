"""Distribution distances and summary statistics."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def ks_distance(a: Iterable[float], b: Iterable[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic: max |F_a(x) - F_b(x)|."""
    a_sorted = np.sort(np.asarray(list(a), dtype=np.float64))
    b_sorted = np.sort(np.asarray(list(b), dtype=np.float64))
    if a_sorted.size == 0 or b_sorted.size == 0:
        raise ValueError("KS distance requires non-empty samples")
    grid = np.concatenate([a_sorted, b_sorted])
    fa = np.searchsorted(a_sorted, grid, side="right") / a_sorted.size
    fb = np.searchsorted(b_sorted, grid, side="right") / b_sorted.size
    return float(np.max(np.abs(fa - fb)))


def wasserstein_distance(a: Iterable[float], b: Iterable[float]) -> float:
    """1-Wasserstein (earth mover's) distance between two samples.

    Computed as the integral of |F_a - F_b| via the quantile coupling;
    unlike KS it is in the units of the data (seconds, here), which
    makes "how far off is the latency distribution" interpretable.
    """
    a_sorted = np.sort(np.asarray(list(a), dtype=np.float64))
    b_sorted = np.sort(np.asarray(list(b), dtype=np.float64))
    if a_sorted.size == 0 or b_sorted.size == 0:
        raise ValueError("Wasserstein distance requires non-empty samples")
    # Exact integral of |F_a - F_b| over the pooled support: both
    # empirical CDFs are step functions, so the integral is a finite
    # sum over the merged sample grid.  O(n log n), no quantile
    # partitions — cheap enough for per-epoch online scoring of large
    # sliding windows (the cascade controller's hot loop).
    grid = np.sort(np.concatenate([a_sorted, b_sorted]))
    deltas = np.diff(grid)
    fa = np.searchsorted(a_sorted, grid[:-1], side="right") / a_sorted.size
    fb = np.searchsorted(b_sorted, grid[:-1], side="right") / b_sorted.size
    return float(np.sum(np.abs(fa - fb) * deltas))


def roc_auc(scores: Iterable[float], labels: Iterable[int]) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) form.

    ``labels`` are 0/1; ties in scores receive average ranks.  Raises
    if only one class is present (AUC is undefined there).
    """
    score_arr = np.asarray(list(scores), dtype=np.float64)
    label_arr = np.asarray(list(labels), dtype=np.float64)
    if score_arr.shape != label_arr.shape:
        raise ValueError("scores and labels must have equal length")
    positives = int(label_arr.sum())
    negatives = label_arr.size - positives
    if positives == 0 or negatives == 0:
        raise ValueError("AUC needs both classes present")
    order = np.argsort(score_arr, kind="mergesort")
    ranks = np.empty_like(score_arr)
    ranks[order] = np.arange(1, score_arr.size + 1)
    # Average ranks over ties.
    sorted_scores = score_arr[order]
    i = 0
    while i < sorted_scores.size:
        j = i
        while j + 1 < sorted_scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    rank_sum = float(ranks[label_arr == 1].sum())
    u_statistic = rank_sum - positives * (positives + 1) / 2.0
    return u_statistic / (positives * negatives)


def percentile_summary(
    samples: Iterable[float], percentiles: Sequence[float] = (50, 90, 95, 99, 99.9)
) -> dict[str, float]:
    """Mean plus a standard set of percentiles, as a flat dict."""
    values = np.asarray(list(samples), dtype=np.float64)
    if values.size == 0:
        return {"count": 0.0}
    summary = {"count": float(values.size), "mean": float(values.mean())}
    for p in percentiles:
        summary[f"p{p:g}"] = float(np.percentile(values, p))
    return summary
