"""Bounded-memory streaming statistics for hot-path counters.

The approximated-cluster hot path used to append one float per
delivered packet to a plain list, which grows without bound over a long
hybrid run (millions of packets -> tens of MB per cluster and an O(n)
percentile sort at report time).  :class:`StreamingStats` replaces it:
Welford's online algorithm for count/mean/variance (numerically stable,
O(1) per observation) plus a *deterministic* bounded reservoir for
percentile estimates.

The reservoir uses stride-doubling decimation rather than random
reservoir sampling on purpose: the hot path's random stream
(``ApproximatedCluster.rng``) feeds the drop Bernoulli, and consuming
extra draws for bookkeeping would change every drop decision after the
first full buffer — silently breaking run-to-run reproducibility.
Stride doubling keeps every 2^k-th observation, needs no RNG, and still
covers the whole stream uniformly.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional


class StreamingStats:
    """Online count/mean/std/min/max plus a bounded percentile sample.

    Parameters
    ----------
    max_samples:
        Upper bound on retained observations for percentile estimation.
        When the buffer fills, every other retained sample is discarded
        and the keep-stride doubles, so memory stays O(max_samples)
        while the kept samples remain an even systematic sample of the
        whole stream.
    """

    __slots__ = ("count", "mean", "_m2", "min", "max", "_samples", "_stride", "_phase", "max_samples")

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.max_samples = max_samples
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: list[float] = []
        self._stride = 1
        self._phase = 0

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Observe one value (O(1) amortized, allocation-free)."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # Systematic sample: keep every stride-th observation.
        self._phase += 1
        if self._phase >= self._stride:
            self._phase = 0
            samples = self._samples
            samples.append(value)
            if len(samples) >= self.max_samples:
                del samples[::2]
                self._stride *= 2

    def extend(self, values: Iterable[float]) -> None:
        """Observe many values."""
        for value in values:
            self.add(value)

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Fold another accumulator's observations into this one.

        Moments combine with Chan's parallel Welford update; the two
        systematic samples are concatenated and stride-decimated back
        under ``max_samples``.  Like :meth:`add`, this is deterministic
        (no RNG) and keeps every retained sample a real observation, so
        quantile estimates stay inside ``[min, max]``.  Merging an
        empty accumulator is the identity.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self._samples = list(other._samples)
            self._stride = other._stride
            self._phase = other._phase
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        samples = self._samples + other._samples
        self._stride = max(self._stride, other._stride)
        self._phase = 0
        while len(samples) >= self.max_samples:
            del samples[::2]
            self._stride *= 2
        self._samples = samples
        return self

    # ------------------------------------------------------------------
    @property
    def variance(self) -> float:
        """Population variance (0.0 with fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def sample(self) -> list[float]:
        """The retained (bounded) systematic sample, in arrival order."""
        return list(self._samples)

    def percentile(self, q: float) -> Optional[float]:
        """Approximate q-th percentile (q in [0, 100]) from the sample.

        Returns ``None`` before any observation.  Exact while the
        stream still fits the buffer; a systematic-sample estimate
        afterwards.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        position = (q / 100.0) * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        frac = position - low
        estimate = ordered[low] * (1.0 - frac) + ordered[high] * frac
        # Interpolation can round one ULP past the neighbours it mixes;
        # a quantile must never leave the observed range.
        return min(max(estimate, self.min), self.max)

    def summary(self) -> dict[str, float]:
        """Plain-dict snapshot for reports and JSON results."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if self.count == 0:
            return "StreamingStats(empty)"
        return (
            f"StreamingStats(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g}, min={self.min:.6g}, max={self.max:.6g})"
        )
