"""Multi-fidelity cascade with validated auto-promotion.

One scenario, three engines: the focal cluster at full packet
fidelity, warm regions on the batched learned hybrid, background
regions as max-min fluid flows — with a
:class:`~repro.cascade.controller.FidelityController` promoting and
demoting regions between tiers at epoch boundaries based on windowed
:mod:`repro.validate` scores against the focal region's in-run
distributions.  Tier handoffs translate state behind the
:class:`~repro.cascade.adapters.TierAdapter` interface and every
decision lands in an auditable, byte-reproducible JSON log.

This is ROADMAP open item 3: the route to capacity-planning sweeps
over fabrics full DES cannot touch, spending packet-level cost only
where the validation evidence says the cheap tiers are wrong.
"""

from repro.cascade.adapters import (
    FlowsimToHybridAdapter,
    Handoff,
    HybridToFlowsimAdapter,
    TierAdapter,
    adapter_for,
)
from repro.cascade.config import CascadeConfig, Tier, TierBudget
from repro.cascade.controller import Decision, DecisionLog, FidelityController
from repro.cascade.simulation import (
    CascadeResult,
    CascadeSimulation,
    FocalBoundaryTap,
    run_cascade_simulation,
)

__all__ = [
    "CascadeConfig",
    "CascadeResult",
    "CascadeSimulation",
    "Decision",
    "DecisionLog",
    "FidelityController",
    "FlowsimToHybridAdapter",
    "FocalBoundaryTap",
    "Handoff",
    "HybridToFlowsimAdapter",
    "Tier",
    "TierAdapter",
    "TierBudget",
    "adapter_for",
    "run_cascade_simulation",
]
