"""Tier adapters: state translation at promotion/demotion boundaries.

A tier transition changes *representation*: the fluid tier holds
``(spec, remaining bytes)`` pairs, the hybrid/packet tiers hold live
TCP flows and per-cluster macro state.  Each boundary is one
:class:`TierAdapter` with a single ``transfer`` method so the
translation rules are testable in isolation against a fake context.

Contracts
---------
flowsim -> hybrid (:class:`FlowsimToHybridAdapter`):
    Every in-flight fluid flow touching the promoted region is
    extracted from the fluid engine and relaunched as a *packet* flow
    carrying its remaining bytes — progress transfers, the transport
    restarts (slow start), which is the honest translation: the fluid
    tier never modeled TCP state, so there is none to hand over.  The
    region's macro classifier kept warm throughout (boundary packet
    traffic always runs through the model), so the hybrid tier starts
    from live congestion state, not from cold.

hybrid -> flowsim (:class:`HybridToFlowsimAdapter`):
    Drain-on-demote: packet flows already in flight complete at packet
    fidelity (their TCP state is not collapsible into a single rate
    without inventing one); only *new* wholly-background flows are
    admitted to the fluid tier.  The handoff records how many flows
    are draining and the macro state the region leaves behind.

Every ``transfer`` returns a :class:`Handoff` summary; the cascade
attaches it to the controller's decision-log entry, so the audit trail
shows what each transition actually moved.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Optional

from repro.cascade.config import Tier


@dataclass
class Handoff:
    """What one tier transition moved (decision-log payload)."""

    region: int
    from_tier: Tier
    to_tier: Tier
    flows_transferred: int = 0
    bytes_transferred: float = 0.0
    flows_draining: int = 0
    macro_state: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "region": self.region,
            "from": self.from_tier.label,
            "to": self.to_tier.label,
            "flows_transferred": self.flows_transferred,
            "bytes_transferred": self.bytes_transferred,
            "flows_draining": self.flows_draining,
            "macro_state": self.macro_state,
        }


class TierAdapter(ABC):
    """One directed tier boundary's state translation."""

    from_tier: Tier
    to_tier: Tier

    @abstractmethod
    def transfer(self, region: int, ctx) -> Handoff:
        """Move ``region``'s state across the boundary.

        ``ctx`` is the cascade context — anything exposing
        ``fluid`` (an :class:`~repro.flowsim.epoch.EpochFlowSimulator`),
        ``cluster_of(server) -> int``,
        ``launch_carried_flow(src, dst, size_bytes)``,
        ``inflight_packet_flows(region) -> int`` and
        ``macro_label(region) -> str | None`` — the
        :class:`~repro.cascade.simulation.CascadeSimulation` in
        production, a stub in tests.
        """


class FlowsimToHybridAdapter(TierAdapter):
    """Promote: fluid flows become packet flows with remaining bytes."""

    from_tier = Tier.FLOWSIM
    to_tier = Tier.HYBRID

    def transfer(self, region: int, ctx) -> Handoff:
        moved = ctx.fluid.extract(
            lambda spec: ctx.cluster_of(spec.src) == region
            or ctx.cluster_of(spec.dst) == region
        )
        bytes_total = 0.0
        for spec, remaining_bytes in moved:
            bytes_total += remaining_bytes
            # At least one byte: a fluid flow at the knife edge of
            # completion still needs a real packet exchange to finish.
            size = max(int(math.ceil(remaining_bytes)), 1)
            # Reuse the port reserved at diversion time so the packet
            # flow hashes onto the path the fluid tier charged.
            ctx.launch_carried_flow(
                spec.src, spec.dst, size, src_port=spec.src_port or None
            )
        return Handoff(
            region=region,
            from_tier=self.from_tier,
            to_tier=self.to_tier,
            flows_transferred=len(moved),
            bytes_transferred=bytes_total,
            macro_state=ctx.macro_label(region),
        )


class HybridToFlowsimAdapter(TierAdapter):
    """Demote: in-flight packet flows drain, new background flows go fluid."""

    from_tier = Tier.HYBRID
    to_tier = Tier.FLOWSIM

    def transfer(self, region: int, ctx) -> Handoff:
        return Handoff(
            region=region,
            from_tier=self.from_tier,
            to_tier=self.to_tier,
            flows_draining=ctx.inflight_packet_flows(region),
            macro_state=ctx.macro_label(region),
        )


_ADAPTERS: dict[tuple[Tier, Tier], TierAdapter] = {
    (Tier.FLOWSIM, Tier.HYBRID): FlowsimToHybridAdapter(),
    (Tier.HYBRID, Tier.FLOWSIM): HybridToFlowsimAdapter(),
}


def adapter_for(from_tier: Tier, to_tier: Tier) -> TierAdapter:
    """The adapter of a directed boundary; DES boundaries are
    structural (receivers bind at network construction) and have no
    runtime adapter."""
    adapter = _ADAPTERS.get((from_tier, to_tier))
    if adapter is None:
        raise ValueError(
            f"no runtime adapter for {from_tier.label} -> {to_tier.label}; "
            "only flowsim<->hybrid transitions happen mid-run"
        )
    return adapter
