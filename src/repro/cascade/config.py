"""Cascade configuration: tiers, budgets, and controller knobs.

A cascade run assigns every cluster of one fabric to a fidelity tier:

* :attr:`Tier.DES` — full packet simulation (the focal cluster; fixed
  for the whole run because the packet network binds its receivers at
  construction),
* :attr:`Tier.HYBRID` — the learned per-cluster black box
  (:class:`~repro.core.cluster_model.ApproximatedCluster`),
* :attr:`Tier.FLOWSIM` — max-min fluid flows, no packets at all.

:class:`CascadeConfig` carries the initial assignment, per-region
fidelity budgets (:class:`TierBudget`), and the
:class:`~repro.cascade.controller.FidelityController` cadence knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import IntEnum
from typing import Any, Mapping, Optional

from repro.core.hybrid import HybridConfig


class Tier(IntEnum):
    """Fidelity tiers, ordered cheapest to most faithful."""

    FLOWSIM = 1
    HYBRID = 2
    DES = 3

    @classmethod
    def parse(cls, value: "Tier | int | str") -> "Tier":
        """Accept a Tier, its int value, or its (case-blind) name."""
        if isinstance(value, cls):
            return value
        if isinstance(value, int):
            return cls(value)
        try:
            return cls[str(value).strip().upper()]
        except KeyError:
            names = "|".join(t.name.lower() for t in cls)
            raise ValueError(f"unknown tier {value!r} (expected {names})") from None

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class TierBudget:
    """Fidelity budget of one region — how wrong it is allowed to be.

    The controller reduces a region's windowed scores to one breach
    ratio: the maximum of each component's score divided by its budget
    (components with a ``None`` budget are ignored).  Ratio > 1 means
    the region is outside budget and is a promotion candidate.

    Attributes
    ----------
    ks:
        Max tolerated K-S distance between the region's windowed FCT
        distribution and the focal (reference) region's.
    latency_ks:
        Same bound for per-packet region latency windows; ``None``
        (default) reuses ``ks``.
    wasserstein_s:
        Optional absolute Wasserstein-1 bound on FCT windows, seconds.
    drop_delta:
        Max tolerated absolute drop-rate difference vs the reference.
    """

    ks: float = 0.35
    latency_ks: Optional[float] = None
    wasserstein_s: Optional[float] = None
    drop_delta: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.ks <= 1.0:
            raise ValueError(f"ks budget must be in (0, 1], got {self.ks}")
        if self.latency_ks is not None and not 0.0 < self.latency_ks <= 1.0:
            raise ValueError(
                f"latency_ks budget must be in (0, 1], got {self.latency_ks}"
            )
        if self.wasserstein_s is not None and self.wasserstein_s <= 0:
            raise ValueError(
                f"wasserstein_s budget must be positive, got {self.wasserstein_s}"
            )
        if self.drop_delta <= 0:
            raise ValueError(
                f"drop_delta budget must be positive, got {self.drop_delta}"
            )

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "TierBudget":
        unknown = set(raw) - {f.name for f in fields(cls)}
        if unknown:
            raise ValueError(f"unknown TierBudget fields: {sorted(unknown)}")
        return cls(**raw)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ks": self.ks,
            "latency_ks": self.latency_ks,
            "wasserstein_s": self.wasserstein_s,
            "drop_delta": self.drop_delta,
        }


@dataclass(frozen=True)
class CascadeConfig:
    """Options of one cascade run.

    Attributes
    ----------
    focal_cluster:
        The cluster simulated at full packet fidelity for the whole
        run.  It doubles as the controller's in-run reference: data
        center symmetry (the paper's own argument for one reusable
        model) makes its windowed FCT/latency distributions the ground
        truth that approximated regions are scored against.
    epoch_s:
        Controller cadence in simulated seconds: windows are scored
        and tier transitions applied only at epoch boundaries.
    window_epochs:
        Sliding scoring horizon, in epochs.
    initial_tier:
        Starting tier of every non-focal region not pinned otherwise.
    budget:
        Default per-region :class:`TierBudget`.
    region_budgets:
        Per-region budget overrides (region index -> budget).
    pin_tiers:
        region index -> tier for regions the controller must not move.
        Pinning a non-focal region to :attr:`Tier.DES` is rejected:
        packet receivers bind at network construction, so DES
        membership is structural (exactly the focal cluster).
    min_window_samples:
        Both FCT windows (reference and region) must hold at least
        this many samples before scores drive decisions.
    demote_fraction:
        A region is "calm" in an epoch when its breach ratio stays
        below this fraction of 1.0.
    demote_patience:
        Consecutive calm epochs required before a demotion.
    cooldown_epochs:
        Epochs a region sits out after any transition (hysteresis —
        prevents promote/demote flapping on window noise).
    max_promotions_per_epoch:
        Promotion pacing; the worst-breaching regions go first.
    macro_bucket_s, use_fused_inference, inference_dtype,
    batch_window_s, memoize_inference, memo_exact:
        Passed through to :class:`~repro.core.hybrid.HybridConfig` for
        the packet/model side of the cascade.
    """

    focal_cluster: int = 0
    epoch_s: float = 0.002
    window_epochs: int = 3
    initial_tier: Tier = Tier.FLOWSIM
    budget: TierBudget = field(default_factory=TierBudget)
    region_budgets: Mapping[int, TierBudget] = field(default_factory=dict)
    pin_tiers: Mapping[int, Tier] = field(default_factory=dict)
    min_window_samples: int = 8
    demote_fraction: float = 0.5
    demote_patience: int = 2
    cooldown_epochs: int = 1
    max_promotions_per_epoch: int = 1
    macro_bucket_s: float = 0.001
    use_fused_inference: bool = True
    inference_dtype: str = "float64"
    batch_window_s: float = 0.0
    memoize_inference: bool = False
    memo_exact: bool = True

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise ValueError(f"epoch_s must be positive, got {self.epoch_s}")
        if self.window_epochs < 1:
            raise ValueError(
                f"window_epochs must be >= 1, got {self.window_epochs}"
            )
        if self.min_window_samples < 1:
            raise ValueError(
                f"min_window_samples must be >= 1, got {self.min_window_samples}"
            )
        if not 0.0 < self.demote_fraction < 1.0:
            raise ValueError(
                f"demote_fraction must be in (0, 1), got {self.demote_fraction}"
            )
        if self.demote_patience < 1:
            raise ValueError(
                f"demote_patience must be >= 1, got {self.demote_patience}"
            )
        if self.cooldown_epochs < 0:
            raise ValueError(
                f"cooldown_epochs must be >= 0, got {self.cooldown_epochs}"
            )
        if self.max_promotions_per_epoch < 1:
            raise ValueError(
                "max_promotions_per_epoch must be >= 1, "
                f"got {self.max_promotions_per_epoch}"
            )
        if self.initial_tier is Tier.DES:
            raise ValueError(
                "initial_tier cannot be des: packet-tier membership is "
                "structural (the focal cluster); start regions at "
                "flowsim or hybrid"
            )
        for region, tier in self.pin_tiers.items():
            if tier is Tier.DES and region != self.focal_cluster:
                raise ValueError(
                    f"cannot pin region {region} to des: the packet network "
                    "binds receivers at construction, so only the focal "
                    f"cluster ({self.focal_cluster}) runs at full fidelity"
                )

    # ------------------------------------------------------------------
    @property
    def window_s(self) -> float:
        """The sliding scoring horizon in simulated seconds."""
        return self.epoch_s * self.window_epochs

    def budget_for(self, region: int) -> TierBudget:
        return self.region_budgets.get(region, self.budget)

    def tier_for(self, region: int) -> Tier:
        """The tier a non-focal region starts the run in."""
        pinned = self.pin_tiers.get(region)
        if pinned is not None:
            return pinned
        return self.initial_tier

    def is_pinned(self, region: int) -> bool:
        return region in self.pin_tiers

    def hybrid_config(self) -> HybridConfig:
        """The hybrid assembly options the cascade's packet side uses.

        ``elide_remote_traffic`` is always False: background flows are
        not dropped — they are *diverted* to the fluid tier (or carried
        by the models when a region is at hybrid), so every tier sees
        the load the workload actually offers.
        """
        return HybridConfig(
            full_cluster=self.focal_cluster,
            elide_remote_traffic=False,
            macro_bucket_s=self.macro_bucket_s,
            use_fused_inference=self.use_fused_inference,
            inference_dtype=self.inference_dtype,
            batch_window_s=self.batch_window_s,
            memoize_inference=self.memoize_inference,
            memo_exact=self.memo_exact,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "CascadeConfig":
        """Build from a parsed spec/CLI dict (JSON-typed values).

        Tier names arrive as strings, budgets as nested dicts, and
        mapping keys as strings (JSON objects) — all normalized here.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown CascadeConfig fields: {sorted(unknown)}")
        kwargs: dict[str, Any] = dict(raw)
        if "initial_tier" in kwargs:
            kwargs["initial_tier"] = Tier.parse(kwargs["initial_tier"])
        if "budget" in kwargs and not isinstance(kwargs["budget"], TierBudget):
            kwargs["budget"] = TierBudget.from_dict(kwargs["budget"])
        if "region_budgets" in kwargs:
            kwargs["region_budgets"] = {
                int(region): (
                    budget
                    if isinstance(budget, TierBudget)
                    else TierBudget.from_dict(budget)
                )
                for region, budget in kwargs["region_budgets"].items()
            }
        if "pin_tiers" in kwargs:
            kwargs["pin_tiers"] = {
                int(region): Tier.parse(tier)
                for region, tier in kwargs["pin_tiers"].items()
            }
        return cls(**kwargs)
