"""The fidelity controller: windowed scores in, tier decisions out.

At every epoch boundary the :class:`FidelityController` scores each
non-focal region's sliding windows against the focal region's (the
in-run reference — data center symmetry is the paper's own argument
that one cluster's distributions stand in for another's) and reduces
the scores to a single *breach ratio*: the worst component relative to
the region's :class:`~repro.cascade.config.TierBudget`.

Decision rules, in order:

* **promote** — ratio > 1 and the region is below :attr:`Tier.HYBRID`:
  the fluid approximation is visibly outside budget, move the region
  up one tier.  At most ``max_promotions_per_epoch`` promotions per
  epoch, worst ratio first.
* **breach at ceiling** — ratio > 1 at :attr:`Tier.HYBRID`: full DES
  membership is structural (receivers bind at network construction),
  so the breach is logged as an audit record instead of acted on.
* **demote** — ratio stayed below ``demote_fraction`` for
  ``demote_patience`` consecutive scoreable epochs at
  :attr:`Tier.HYBRID`: the cheap tier would have been good enough,
  move the region down.

Every transition starts a ``cooldown_epochs`` refractory period.
All inputs are simulated-time quantities from seeded streams and
regions are visited in sorted order, so the full decision sequence —
and the JSON decision log — is byte-identical across re-runs with the
same master seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro.cascade.config import CascadeConfig, Tier, TierBudget
from repro.validate.windows import RegionWindows, score_region


@dataclass
class Decision:
    """One applied tier transition (or audit record).

    ``entry`` is the *same dict object* stored in the
    :class:`DecisionLog`, so the caller can attach the tier-handoff
    summary after applying the adapter and it lands in the log.
    """

    epoch: int
    time: float
    region: int
    from_tier: Tier
    to_tier: Tier
    kind: str  # "promote" | "demote" | "breach_at_ceiling"
    ratio: float
    entry: dict[str, Any]

    @property
    def is_transition(self) -> bool:
        return self.from_tier is not self.to_tier


class DecisionLog:
    """Append-only, JSON-serializable audit trail of tier decisions."""

    def __init__(self) -> None:
        self.entries: list[dict[str, Any]] = []

    def append(self, entry: dict[str, Any]) -> dict[str, Any]:
        self.entries.append(entry)
        return entry

    @property
    def promotions(self) -> int:
        return sum(1 for e in self.entries if e["kind"] == "promote")

    @property
    def demotions(self) -> int:
        return sum(1 for e in self.entries if e["kind"] == "demote")

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, fixed separators —
        the byte-identical artifact the determinism guarantee is
        stated over."""
        return json.dumps(
            self.entries, sort_keys=True, indent=2, separators=(",", ": ")
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path


class FidelityController:
    """Promotes/demotes regions between tiers at epoch boundaries.

    Parameters
    ----------
    config:
        Budgets and cadence knobs.
    regions:
        The non-focal cluster indices under control.
    reference:
        The focal region's windows (ground-truth side of every score).
    windows:
        region index -> that region's :class:`RegionWindows`.
    metrics:
        Optional registry; publishes ``cascade.epochs``,
        ``cascade.promotions``, ``cascade.demotions``.
    """

    def __init__(
        self,
        config: CascadeConfig,
        regions: list[int],
        reference: RegionWindows,
        windows: dict[int, RegionWindows],
        metrics=None,
    ) -> None:
        self.config = config
        self.regions = sorted(regions)
        self.reference = reference
        self.windows = windows
        self.log = DecisionLog()
        self.tiers: dict[int, Tier] = {
            region: config.tier_for(region) for region in self.regions
        }
        self.epochs_evaluated = 0
        self._calm: dict[int, int] = {region: 0 for region in self.regions}
        self._cooldown: dict[int, int] = {region: 0 for region in self.regions}
        self._breached: set[int] = set()
        self._epoch_counter = metrics.counter("cascade.epochs") if metrics else None
        self._promo_counter = (
            metrics.counter("cascade.promotions") if metrics else None
        )
        self._demo_counter = metrics.counter("cascade.demotions") if metrics else None

    # ------------------------------------------------------------------
    @staticmethod
    def breach_ratio(
        scores: dict[str, Any], budget: TierBudget
    ) -> tuple[float, dict[str, float]]:
        """Reduce one region's windowed scores to (ratio, components).

        Each component is ``score / budget``; the ratio is their max.
        Components whose score is unavailable (starved window) or
        whose budget is ``None`` are omitted.
        """
        components: dict[str, float] = {}
        fct_ks = scores["fct"].get("ks")
        if fct_ks is not None:
            components["fct_ks"] = fct_ks / budget.ks
        latency_ks = scores["latency"].get("ks")
        if latency_ks is not None:
            components["latency_ks"] = latency_ks / (
                budget.latency_ks if budget.latency_ks is not None else budget.ks
            )
        if budget.wasserstein_s is not None:
            fct_w1 = scores["fct"].get("wasserstein")
            if fct_w1 is not None:
                components["fct_w1"] = fct_w1 / budget.wasserstein_s
        components["drop_delta"] = (
            abs(scores["drop_rate"]["delta"]) / budget.drop_delta
        )
        ratio = max(components.values()) if components else 0.0
        return ratio, components

    # ------------------------------------------------------------------
    def evaluate(self, epoch: int, now: float) -> list[Decision]:
        """Score every region and apply this epoch's decisions.

        Updates :attr:`tiers` and the log; returns the applied
        transitions (plus ceiling-breach audit records) so the caller
        can run the tier adapters and attach handoff summaries.
        """
        config = self.config
        self.epochs_evaluated += 1
        if self._epoch_counter is not None:
            self._epoch_counter.inc()
        cutoff = now - config.window_s
        self.reference.evict_before(cutoff)
        for region in self.regions:
            self.windows[region].evict_before(cutoff)

        promotion_candidates: list[tuple[float, int, dict[str, float]]] = []
        decisions: list[Decision] = []
        for region in self.regions:
            if self._cooldown[region] > 0:
                self._cooldown[region] -= 1
                continue
            if config.is_pinned(region):
                continue
            scores = score_region(
                self.reference,
                self.windows[region],
                horizon_s=config.window_s,
                min_samples=config.min_window_samples,
            )
            if not scores["scoreable"]:
                # A starved window is idleness, not fidelity evidence:
                # it neither accuses nor acquits.
                continue
            ratio, components = self.breach_ratio(scores, config.budget_for(region))
            tier = self.tiers[region]
            if ratio > 1.0:
                self._calm[region] = 0
                if tier < Tier.HYBRID:
                    promotion_candidates.append((ratio, region, components))
                elif region not in self._breached:
                    # Already at the runtime ceiling: audit, don't act
                    # (and don't repeat the record every epoch while
                    # the breach persists).
                    self._breached.add(region)
                    decisions.append(
                        self._record(
                            epoch, now, region, tier, tier,
                            kind="breach_at_ceiling",
                            ratio=ratio,
                            components=components,
                            reason=(
                                "budget exceeded at hybrid; full DES membership "
                                "is structural (focal cluster only)"
                            ),
                        )
                    )
                continue
            self._breached.discard(region)
            if ratio <= config.demote_fraction:
                self._calm[region] += 1
                if (
                    self._calm[region] >= config.demote_patience
                    and tier is Tier.HYBRID
                ):
                    decisions.append(
                        self._apply(
                            epoch, now, region, tier, Tier.FLOWSIM,
                            kind="demote",
                            ratio=ratio,
                            components=components,
                            reason=(
                                f"ratio <= {config.demote_fraction} for "
                                f"{self._calm[region]} consecutive epochs"
                            ),
                        )
                    )
            else:
                self._calm[region] = 0

        # Worst breach first; ties broken by region index — total order,
        # so pacing never depends on dict iteration.
        promotion_candidates.sort(key=lambda item: (-item[0], item[1]))
        for ratio, region, components in promotion_candidates[
            : config.max_promotions_per_epoch
        ]:
            decisions.append(
                self._apply(
                    epoch, now, region, self.tiers[region], Tier.HYBRID,
                    kind="promote",
                    ratio=ratio,
                    components=components,
                    reason="budget exceeded at flowsim",
                )
            )
        return decisions

    # ------------------------------------------------------------------
    def _apply(
        self,
        epoch: int,
        now: float,
        region: int,
        from_tier: Tier,
        to_tier: Tier,
        kind: str,
        ratio: float,
        components: dict[str, float],
        reason: str,
    ) -> Decision:
        self.tiers[region] = to_tier
        self._cooldown[region] = self.config.cooldown_epochs
        self._calm[region] = 0
        if kind == "promote" and self._promo_counter is not None:
            self._promo_counter.inc()
        if kind == "demote" and self._demo_counter is not None:
            self._demo_counter.inc()
        return self._record(
            epoch, now, region, from_tier, to_tier,
            kind=kind, ratio=ratio, components=components, reason=reason,
        )

    def _record(
        self,
        epoch: int,
        now: float,
        region: int,
        from_tier: Tier,
        to_tier: Tier,
        kind: str,
        ratio: float,
        components: dict[str, float],
        reason: str,
    ) -> Decision:
        # Name the flows whose FCT samples were in the region's scoring
        # window when this decision fired — sorted and seeded-stream
        # derived, so the log stays byte-identical across re-runs.
        window = self.windows.get(region)
        entry = self.log.append(
            {
                "epoch": epoch,
                "time": now,
                "region": region,
                "kind": kind,
                "from": from_tier.label,
                "to": to_tier.label,
                "ratio": ratio,
                "components": components,
                "reason": reason,
                "handoff": None,
                "window_flows": window.window_flows() if window is not None else [],
            }
        )
        return Decision(
            epoch=epoch,
            time=now,
            region=region,
            from_tier=from_tier,
            to_tier=to_tier,
            kind=kind,
            ratio=ratio,
            entry=entry,
        )
