"""The cascade assembly: three engines, one scenario, one clock.

:class:`CascadeSimulation` composes the repo's three fidelity tiers in
a single run:

* the **focal cluster** runs at full packet fidelity inside a
  :class:`~repro.core.hybrid.HybridSimulation` (DES tier — fixed for
  the run, because the packet network binds receivers at
  construction),
* every other cluster's fabric is an
  :class:`~repro.core.cluster_model.ApproximatedCluster` model
  (hybrid tier) — and keeps handling boundary packet traffic even
  while its region is demoted, so macro state stays warm,
* flows whose endpoints both live in flowsim-tier regions never become
  packets at all: the generator's ``flow_dispatch`` hook diverts them
  to an :class:`~repro.flowsim.epoch.EpochFlowSimulator` advanced to
  the DES clock at every epoch boundary.

An epoch tick flushes held inference batches, steps the fluid engine,
feeds the controller, and applies its decisions through the tier
adapters.  Everything is driven by simulated time and seeded streams:
re-running the same configuration reproduces the decision log byte
for byte.
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Union

from repro.cascade.adapters import adapter_for
from repro.cascade.config import CascadeConfig, Tier
from repro.cascade.controller import DecisionLog, FidelityController
from repro.core.hybrid import HybridSimulation
from repro.core.training import TrainedClusterModel
from repro.des.kernel import Simulator
from repro.flowsim.epoch import EpochFlowSimulator
from repro.flowsim.simulator import FlowResult, FlowSpec
from repro.net.network import NetworkConfig
from repro.net.packet import Packet
from repro.topology.graph import Topology
from repro.traffic.apps import FlowRecord, TrafficGenerator
from repro.validate.windows import RegionWindows


class FocalBoundaryTap:
    """Bounded online tap of the focal region's boundary.

    The same port-chaining scheme as the training collector
    (:class:`~repro.core.training.RegionTraceCollector`), but instead
    of accumulating a trace it feeds region-latency samples and drop
    events straight into the reference :class:`RegionWindows` — O(in
    flight) memory, run-length independent.
    """

    def __init__(self, network, focal_cluster: int, windows: RegionWindows) -> None:
        from repro.core.region import Region

        self.windows = windows
        self.network = network
        region = Region.cluster(network.topology, focal_cluster)
        switches = set(region.switches)
        self._entries: dict[int, float] = {}
        for (owner, peer), port in network.ports().items():
            owner_in = owner in switches
            peer_in = peer in switches
            if not owner_in and peer_in:
                port.on_deliver = self._chain_deliver(port.on_deliver, self._on_entry)
            elif owner_in and not peer_in:
                port.on_deliver = self._chain_deliver(port.on_deliver, self._on_exit)
            if owner_in:
                port.on_drop = self._chain_drop(port.on_drop, self._on_drop)

    @staticmethod
    def _chain_deliver(existing, handler):
        if existing is None:
            return handler

        def chained(packet: Packet, time: float) -> None:
            existing(packet, time)
            handler(packet, time)

        return chained

    @staticmethod
    def _chain_drop(existing, handler):
        if existing is None:
            return handler

        def chained(packet: Packet) -> None:
            existing(packet)
            handler(packet)

        return chained

    def _on_entry(self, packet: Packet, time: float) -> None:
        self._entries[packet.packet_id] = time

    def _on_exit(self, packet: Packet, time: float) -> None:
        entry = self._entries.pop(packet.packet_id, None)
        if entry is not None:
            self.windows.record_outcome(time, time - entry, dropped=False)

    def _on_drop(self, packet: Packet) -> None:
        if self._entries.pop(packet.packet_id, None) is not None:
            self.windows.record_outcome(
                self.network.sim.now, None, dropped=True
            )


class CascadeSimulation:
    """Multi-fidelity composition of DES, hybrid, and fluid engines.

    Parameters mirror :class:`~repro.core.hybrid.HybridSimulation`,
    with a :class:`~repro.cascade.config.CascadeConfig` instead of a
    ``HybridConfig``.  Call :meth:`attach_generator` before traffic
    starts and :meth:`finalize` after ``sim.run`` returns.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        trained: Union[TrainedClusterModel, Mapping[int, TrainedClusterModel]],
        net_config: Optional[NetworkConfig] = None,
        config: Optional[CascadeConfig] = None,
        metrics=None,
        invariants=None,
        tracer=None,
        routing_config=None,
        failures=(),
    ) -> None:
        self.sim = sim
        self.config = config or CascadeConfig()
        self.metrics = metrics
        #: Optional FlightRecorder — tier dispatches, epoch handoffs,
        #: and fluid completions land in it alongside the hybrid
        #: layer's own model/batch records.  Sim-time only, no RNG.
        self._tracer = tracer
        self.hybrid = HybridSimulation(
            sim,
            topology,
            trained,
            net_config=net_config,
            config=self.config.hybrid_config(),
            metrics=metrics,
            invariants=invariants,
            tracer=tracer,
            routing_config=routing_config,
            failures=failures,
        )
        self.topology = topology
        self.focal_cluster = self.config.focal_cluster
        self.regions = sorted(self.hybrid.approx_clusters)
        unknown_pins = [
            region
            for region in self.config.pin_tiers
            if region != self.focal_cluster and region not in self.regions
        ]
        if unknown_pins:
            raise ValueError(
                f"pin_tiers references unknown regions {unknown_pins}; "
                f"topology clusters are {topology.cluster_ids()}"
            )
        self._cluster_of = self.hybrid._cluster_of

        self.fluid = EpochFlowSimulator(
            topology, routing=self.hybrid.network.routing, metrics=metrics
        )
        self.fluid.on_completion = self._on_fluid_completion
        self.fluid_fcts: list[float] = []

        # ---- Windows and taps ----------------------------------------
        self.reference = RegionWindows()
        self.windows: dict[int, RegionWindows] = {
            region: RegionWindows() for region in self.regions
        }
        self._focal_tap = FocalBoundaryTap(
            self.hybrid.network, self.focal_cluster, self.reference
        )
        for region, model in self.hybrid.models.items():
            model.on_outcome = self._make_outcome_tap(self.windows[region])

        self.controller = FidelityController(
            self.config,
            self.regions,
            reference=self.reference,
            windows=self.windows,
            metrics=metrics,
        )

        # ---- Accounting ----------------------------------------------
        self.generator: Optional[TrafficGenerator] = None
        self._next_fluid_flow_id = 0
        self._carried_record_ids: set[int] = set()
        self._inflight_by_region: dict[int, int] = {
            region: 0 for region in self.regions
        }
        self._tier_packets: dict[Tier, float] = {tier: 0.0 for tier in Tier}
        self._tier_flows: dict[Tier, int] = {tier: 0 for tier in Tier}
        self._model_packet_marks: dict[int, int] = {
            region: 0 for region in self.regions
        }
        self._residency: dict[int, dict[Tier, int]] = {
            region: {tier: 0 for tier in Tier} for region in self.regions
        }
        self._epoch_index = 0
        self._finalized = False
        self.epoch_wallclock_s = 0.0
        sim.schedule(self.config.epoch_s, self._on_epoch)

    # ------------------------------------------------------------------
    def _make_outcome_tap(self, windows: RegionWindows):
        def tap(now: float, latency_s: Optional[float], dropped: bool) -> None:
            windows.record_outcome(now, latency_s, dropped)

        return tap

    # ------------------------------------------------------------------
    # Generator wiring
    # ------------------------------------------------------------------
    def attach_generator(self, generator: TrafficGenerator) -> None:
        """Install the dispatch hook and FCT taps (before traffic starts)."""
        self.generator = generator
        generator.flow_dispatch = self.dispatch_flow
        generator.on_flow_complete = self._on_packet_flow_complete

    def tier_of(self, region: int) -> Tier:
        """Current tier of any cluster (the focal one reports DES)."""
        if region == self.focal_cluster:
            return Tier.DES
        return self.controller.tiers[region]

    def dispatch_flow(self, src: str, dst: str, size_bytes: int) -> bool:
        """``TrafficGenerator.flow_dispatch`` hook.

        Flows with both endpoints in flowsim-tier regions go fluid
        (True: the generator opens no packet flow); everything else
        stays on the packet path and is attributed to the DES tier if
        it touches the focal cluster, else to the hybrid tier.
        """
        src_cluster = self._cluster_of[src]
        dst_cluster = self._cluster_of[dst]
        if (
            self.tier_of(src_cluster) is Tier.FLOWSIM
            and self.tier_of(dst_cluster) is Tier.FLOWSIM
        ):
            # Reserve the source port the packet tier *would* have
            # allocated, so the fluid path charger hashes onto the same
            # ECMP path and a later promotion handoff relaunches the
            # flow on exactly the links already charged.  This also
            # keeps per-host port sequences identical whether a flow is
            # diverted or launched.
            src_port = self.hybrid.network.host(src).allocate_port()
            spec = FlowSpec(
                flow_id=self._next_fluid_flow_id,
                src=src,
                dst=dst,
                size_bytes=size_bytes,
                start_time=self.sim.now,
                src_port=src_port,
            )
            self._next_fluid_flow_id += 1
            if self._tracer is not None:
                self._tracer.event(
                    "tier.dispatch",
                    trace=self._tracer.register_flow(
                        spec.flow_id, domain="fluid"
                    ),
                    tier=Tier.FLOWSIM.label,
                    src=src,
                    dst=dst,
                    size=size_bytes,
                )
            self.fluid.admit(spec)
            self._tier_flows[Tier.FLOWSIM] += 1
            return True
        if self.focal_cluster in (src_cluster, dst_cluster):
            self._tier_flows[Tier.DES] += 1
        else:
            self._tier_flows[Tier.HYBRID] += 1
        for cluster in {src_cluster, dst_cluster} - {self.focal_cluster}:
            self._inflight_by_region[cluster] += 1
        return False

    # ------------------------------------------------------------------
    # Completion taps
    # ------------------------------------------------------------------
    def _on_fluid_completion(self, result: FlowResult) -> None:
        fct = result.fct
        self.fluid_fcts.append(fct)
        now = result.completion_time
        spec = result.spec
        if self._tracer is not None:
            self._tracer.event(
                "flow.complete",
                trace=self._tracer.trace_for_flow(spec.flow_id, domain="fluid"),
                t=now,
                fct=fct,
                size=spec.size_bytes,
            )
        src_cluster = self._cluster_of[spec.src]
        dst_cluster = self._cluster_of[spec.dst]
        for cluster in {src_cluster, dst_cluster}:
            self.windows[cluster].record_fct(
                now, fct, flow=f"fluid:{spec.flow_id}"
            )

    def _on_packet_flow_complete(self, record: FlowRecord) -> None:
        src_cluster = self._cluster_of[record.src]
        dst_cluster = self._cluster_of[record.dst]
        for cluster in {src_cluster, dst_cluster} - {self.focal_cluster}:
            if self._inflight_by_region[cluster] > 0:
                self._inflight_by_region[cluster] -= 1
        if id(record) in self._carried_record_ids:
            # A promotion handoff relaunched this flow mid-transfer;
            # its packet-side FCT covers only the remaining bytes and
            # would poison the windows.
            self._carried_record_ids.discard(id(record))
            return
        fct = record.fct
        assert fct is not None
        now = record.completion_time
        flow_name = f"flow:{record.flow_id}"
        if self.focal_cluster in (src_cluster, dst_cluster):
            self.reference.record_fct(now, fct, flow=flow_name)
        for cluster in {src_cluster, dst_cluster} - {self.focal_cluster}:
            self.windows[cluster].record_fct(now, fct, flow=flow_name)

    # ------------------------------------------------------------------
    # Adapter context (see TierAdapter.transfer)
    # ------------------------------------------------------------------
    def cluster_of(self, server: str) -> int:
        return self._cluster_of[server]

    def launch_carried_flow(
        self, src: str, dst: str, size_bytes: int, src_port: Optional[int] = None
    ) -> FlowRecord:
        assert self.generator is not None, "attach_generator first"
        record = self.generator.launch_flow(src, dst, size_bytes, src_port=src_port)
        self._carried_record_ids.add(id(record))
        for cluster in {self._cluster_of[src], self._cluster_of[dst]} - {
            self.focal_cluster
        }:
            self._inflight_by_region[cluster] += 1
        return record

    def inflight_packet_flows(self, region: int) -> int:
        return self._inflight_by_region[region]

    def macro_label(self, region: int) -> Optional[str]:
        model = self.hybrid.models.get(region)
        if model is None:
            return None
        return model.macro.state.name.lower()

    # ------------------------------------------------------------------
    # Epoch tick
    # ------------------------------------------------------------------
    def _on_epoch(self) -> None:
        started = _wallclock.perf_counter()
        now = self.sim.now
        # Model state must be current before windows are scored.
        self.hybrid.flush_inference()
        self.fluid.step_to(now)
        for region in self.regions:
            self._residency[region][self.controller.tiers[region]] += 1
        self._epoch_index += 1
        decisions = self.controller.evaluate(self._epoch_index, now)
        for decision in decisions:
            if not decision.is_transition:
                continue
            # Close the region's model-packet bucket under the tier it
            # is leaving before the adapter moves any state.
            self._accrue_model_packets(decision.region, decision.from_tier)
            adapter = adapter_for(decision.from_tier, decision.to_tier)
            handoff = adapter.transfer(decision.region, self)
            decision.entry["handoff"] = handoff.to_dict()
            if self._tracer is not None:
                self._tracer.event(
                    "tier.handoff",
                    region=decision.region,
                    kind=decision.kind,
                    from_tier=decision.from_tier.label,
                    to_tier=decision.to_tier.label,
                    ratio=decision.ratio,
                    epoch=decision.epoch,
                )
        self.epoch_wallclock_s += _wallclock.perf_counter() - started
        self.sim.schedule(self.config.epoch_s, self._on_epoch)

    def _accrue_model_packets(self, region: int, tier: Tier) -> None:
        model = self.hybrid.models[region]
        delta = model.packets_handled - self._model_packet_marks[region]
        if delta:
            self._tier_packets[tier] += float(delta)
            self._model_packet_marks[region] = model.packets_handled

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def finalize(self, duration_s: float) -> None:
        """Drain all engines and close the per-tier accounting."""
        if self._finalized:
            return
        self._finalized = True
        self.hybrid.flush_inference()
        if duration_s > self.fluid.now:
            self.fluid.step_to(duration_s)
        for region in self.regions:
            self._accrue_model_packets(region, self.controller.tiers[region])
        focal_switches = {
            node.name
            for node in self.topology.cluster_nodes(self.focal_cluster)
            if node.role.is_switch
        }
        self._tier_packets[Tier.DES] += float(
            sum(
                switch.packets_forwarded
                for name, switch in self.hybrid.network.switches.items()
                if name in focal_switches
            )
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def decision_log(self) -> DecisionLog:
        return self.controller.log

    def per_tier_packets(self) -> dict[str, float]:
        """Packets attributed to each tier (see DESIGN.md §10).

        ``des`` counts forwards through the focal cluster's real
        switches; ``hybrid``/``flowsim`` count packets the region
        models handled while their region resided at that tier (fluid
        regions still see boundary packets from cross-tier flows —
        that is what keeps their macro state warm).
        """
        return {tier.label: self._tier_packets[tier] for tier in Tier}

    def per_tier_flows(self) -> dict[str, int]:
        """Flows by the tier that carried them at launch."""
        return {tier.label: self._tier_flows[tier] for tier in Tier}

    def tier_residency(self) -> dict[str, dict[str, int]]:
        """Epochs each region spent in each tier (manifest field)."""
        return {
            str(region): {
                tier.label: count
                for tier, count in self._residency[region].items()
            }
            for region in self.regions
        }

    def final_tiers(self) -> dict[str, str]:
        return {
            str(region): self.controller.tiers[region].label
            for region in self.regions
        }

    def cascade_summary(self) -> dict[str, Any]:
        """The ``result["cascade"]`` manifest block."""
        log = self.controller.log
        return {
            "epochs": self.controller.epochs_evaluated,
            "promotions": log.promotions,
            "demotions": log.demotions,
            "decisions": len(log.entries),
            "final_tiers": self.final_tiers(),
            "tier_residency": self.tier_residency(),
            "per_tier_packets": self.per_tier_packets(),
            "per_tier_flows": self.per_tier_flows(),
            "fluid": {
                "flows_admitted": self.fluid.flows_admitted,
                "flows_completed": self.fluid.flows_completed,
                "active_at_end": self.fluid.active_flows,
                "rate_recomputes": self.fluid.rate_recomputations,
                "bytes_admitted": float(self.fluid.bytes_admitted),
            },
            "flows_diverted": (
                self.generator.flows_diverted if self.generator else 0
            ),
            "failures": self.hybrid.failure_injector.summary(),
            "collective": (
                self.generator.collective.summary()
                if self.generator is not None and self.generator.collective
                else None
            ),
        }


# ----------------------------------------------------------------------
# Pipeline-style driver
# ----------------------------------------------------------------------
@dataclass
class CascadeResult:
    """Measurements from one cascade run.

    ``result`` is the packet-side :class:`~repro.core.pipeline.RunResult`
    (same schema as hybrid runs, so existing tooling applies); the
    fluid tier's outcomes ride alongside.
    """

    result: "RunResult"
    fluid_fcts: list[float] = field(default_factory=list)
    summary: dict[str, Any] = field(default_factory=dict)

    @property
    def all_fcts(self) -> list[float]:
        """Packet-side and fluid FCTs combined."""
        return list(self.result.fcts) + list(self.fluid_fcts)

    @property
    def total_flows_completed(self) -> int:
        return self.result.flows_completed + len(self.fluid_fcts)

    @property
    def total_events(self) -> int:
        """Kernel events plus fluid engine events (arrivals+completions)."""
        fluid = self.summary.get("fluid", {})
        return self.result.events_executed + int(
            fluid.get("flows_admitted", 0) + fluid.get("flows_completed", 0)
        )


def run_cascade_simulation(
    config: "ExperimentConfig",
    trained: Union[TrainedClusterModel, Mapping[int, TrainedClusterModel]],
    cascade: Optional[CascadeConfig] = None,
    metrics=None,
    probe_period_s: Optional[float] = None,
    tracer=None,
    invariants=None,
) -> tuple[CascadeResult, CascadeSimulation]:
    """Run one scenario under per-region fidelity assignments.

    The same seeded workload the full and hybrid pipelines would
    generate; background flows are diverted (not elided) per the
    current tier map, so offered load is preserved across tiers.
    With ``tracer``, packet flows get admission/completion records,
    fluid flows ``tier.dispatch`` records, and every epoch transition
    a ``tier.handoff`` record — RNG-free, outcomes unchanged.
    """
    from repro.core.pipeline import RunResult, make_generator
    from repro.topology.clos import build_clos

    topology = build_clos(config.clos)
    sim = Simulator(seed=config.seed)
    if tracer is not None:
        tracer.bind_clock(lambda: sim.now)
    if invariants is not None:
        invariants.attach_simulator(sim)
    cascade_sim = CascadeSimulation(
        sim,
        topology,
        trained,
        net_config=config.net,
        config=cascade,
        metrics=metrics,
        tracer=tracer,
        invariants=invariants,
        routing_config=config.routing,
        failures=config.failures,
    )
    generator = make_generator(
        sim, cascade_sim.hybrid.network, config, tracer=tracer
    )
    cascade_sim.attach_generator(generator)
    if metrics is not None:
        from repro.obs import attach_cascade_probes, default_period

        period = probe_period_s or default_period(config.duration_s)
        attach_cascade_probes(metrics, sim, cascade_sim, period)
    generator.start()
    sim.run(until=config.duration_s)
    cascade_sim.finalize(config.duration_s)

    hybrid_sim = cascade_sim.hybrid
    result = RunResult(
        sim_seconds=config.duration_s,
        wallclock_seconds=sim.wallclock_elapsed,
        events_executed=sim.events_executed,
        flows_started=generator.flows_started,
        flows_completed=generator.flows_completed,
        flows_elided=generator.flows_elided,
        drops=hybrid_sim.network.total_drops + hybrid_sim.model_drops(),
        rtt_samples=hybrid_sim.observed_rtt_samples(),
        fcts=generator.completed_fcts(),
        model_packets=hybrid_sim.model_packets_handled(),
        model_drops=hybrid_sim.model_drops(),
        model_inference_seconds=hybrid_sim.inference_seconds(),
        failure_events=hybrid_sim.failure_injector.summary(),
        collective=(
            generator.collective.summary() if generator.collective else None
        ),
    )
    return (
        CascadeResult(
            result=result,
            fluid_fcts=list(cascade_sim.fluid_fcts),
            summary=cascade_sim.cascade_summary(),
        ),
        cascade_sim,
    )
