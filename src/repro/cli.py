"""Command-line interface.

Exposes the Figure 3 workflow without writing Python::

    python -m repro simulate --clusters 2 --load 0.25 --duration 0.01
    python -m repro train    --output cluster_model/ --duration 0.01
    python -m repro hybrid   --model cluster_model/ --clusters 8
    python -m repro validate --model cluster_model/ --duration 0.004
    python -m repro runs     submit --spec sweep.json --out runs/
    python -m repro runs     status --out runs/
    python -m repro models   ls --registry runs/models
    python -m repro obs      show runs/<run_id>/manifest.json
    python -m repro info

``simulate`` runs full fidelity and prints workload statistics (with
optional CSV packet traces); ``train`` performs the full-fidelity +
training stages and saves a reusable model directory; ``hybrid`` loads
such a directory and runs the approximate simulation at any size.
All commands print aligned plain-text tables and return a process exit
code (0 on success), so they compose with shell pipelines.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro import __version__
from repro.analysis.reporting import format_table
from repro.analysis.stats import percentile_summary
from repro.core.features import FEATURE_NAMES
from repro.core.hybrid import HybridConfig
from repro.core.micro import MicroModelConfig
from repro.core.pipeline import (
    ExperimentConfig,
    RunResult,
    run_full_simulation,
    run_hybrid_simulation,
    train_reusable_model,
)
from repro.core.training import TrainedClusterModel
from repro.topology.clos import ClosParams


def _add_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clusters", type=int, default=2, help="number of clusters")
    parser.add_argument("--load", type=float, default=0.25, help="offered load fraction")
    parser.add_argument(
        "--duration", type=float, default=0.01, help="simulated seconds"
    )
    parser.add_argument("--seed", type=int, default=1, help="master seed")


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    """AI-factory scenario knobs: routing policy, link failures, and
    collective (AllReduce) workloads — shared by the packet-carrying
    stages (simulate/hybrid/cascade/validate)."""
    parser.add_argument(
        "--routing", choices=("ecmp", "flowlet", "adaptive"), default="ecmp",
        help="switch routing policy (flowlet: gap-based re-hashing; "
        "adaptive: least-loaded egress among shortest paths)",
    )
    parser.add_argument(
        "--flowlet-gap-s", type=float, default=50e-6, metavar="SECONDS",
        help="idle gap that opens a new flowlet (with --routing flowlet)",
    )
    parser.add_argument(
        "--fail-link", action="append", default=None, metavar="TIME:A:B[:ACTION]",
        help="deterministic link event at simulated TIME seconds between "
        "nodes A and B; ACTION is down (default) or up (repeatable, e.g. "
        "--fail-link 0.004:core-0:agg-c0-0 --fail-link 0.007:core-0:agg-c0-0:up)",
    )
    parser.add_argument(
        "--collective", choices=("ring", "tree"), default=None, metavar="ALGO",
        help="drive an AllReduce collective (ring or tree) over all "
        "servers instead of only background traffic",
    )
    parser.add_argument(
        "--collective-ranks", type=int, default=None, metavar="N",
        help="participating ranks (default: every server)",
    )
    parser.add_argument(
        "--collective-dp-groups", type=int, default=1, metavar="N",
        help="independent data-parallel replica groups",
    )
    parser.add_argument(
        "--chunk-bytes", type=int, default=262_144, metavar="BYTES",
        help="AllReduce chunk size per step",
    )
    parser.add_argument(
        "--collective-rounds", type=int, default=1, metavar="N",
        help="training iterations to run (each: TP/PP phases, AllReduce, compute)",
    )
    parser.add_argument(
        "--collective-compute-s", type=float, default=0.0, metavar="SECONDS",
        help="compute phase between iterations (the communicate/compute barrier)",
    )
    parser.add_argument(
        "--collective-jitter", type=float, default=0.0, metavar="FRACTION",
        help="uniform jitter fraction on the compute phase (seeded)",
    )
    parser.add_argument(
        "--tp-bytes", type=int, default=0, metavar="BYTES",
        help="tensor-parallel pairwise exchange before each AllReduce",
    )
    parser.add_argument(
        "--pp-bytes", type=int, default=0, metavar="BYTES",
        help="pipeline-parallel stage-to-stage transfer before each AllReduce",
    )


def _parse_fail_links(specs: Optional[Sequence[str]]) -> list[tuple]:
    """Parse repeated ``--fail-link TIME:A:B[:ACTION]`` arguments."""
    events = []
    for text in specs or ():
        parts = text.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"--fail-link expects TIME:A:B[:ACTION], got {text!r}"
            )
        try:
            time_s = float(parts[0])
        except ValueError:
            raise ValueError(
                f"--fail-link time must be a number, got {parts[0]!r}"
            ) from None
        events.append(tuple([time_s, *parts[1:]]))
    return events


def _experiment_from_args(args: argparse.Namespace) -> ExperimentConfig:
    collective = None
    if getattr(args, "collective", None) is not None:
        collective = {
            "algorithm": args.collective,
            "ranks": args.collective_ranks,
            "dp_groups": args.collective_dp_groups,
            "chunk_bytes": args.chunk_bytes,
            "rounds": args.collective_rounds,
            "compute_s": args.collective_compute_s,
            "compute_jitter": args.collective_jitter,
            "tp_bytes": args.tp_bytes,
            "pp_bytes": args.pp_bytes,
        }
    try:
        return ExperimentConfig(
            clos=ClosParams(clusters=args.clusters),
            load=args.load,
            duration_s=args.duration,
            seed=args.seed,
            matrix=getattr(args, "matrix", "uniform"),
            routing={
                "policy": getattr(args, "routing", "ecmp"),
                "flowlet_gap_s": getattr(args, "flowlet_gap_s", 50e-6),
            },
            failures=_parse_fail_links(getattr(args, "fail_link", None)),
            collective=collective,
        )
    except ValueError as error:
        # Scenario knobs validate at construction; fail like argparse does.
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(2) from None


def _add_metrics_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="export observability metrics (spans, counters, histograms, "
        "sim-time probe samples) as JSONL to this file",
    )


def _add_batching_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-window", type=float, default=0.0, metavar="SECONDS",
        help="event-horizon inference batching window; 0 disables "
        "(clamped to the minimum region latency for causality)",
    )
    parser.add_argument(
        "--memoize", action="store_true",
        help="cache steady-state inference outcomes (requires --batch-window)",
    )
    parser.add_argument(
        "--memo-approximate", action="store_true",
        help="accept quantized-key memo hits without exact verification "
        "(faster; validate fidelity with `repro validate`)",
    )


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", action="store_true",
        help="record a deterministic flight-recorder trace (flow "
        "admissions/completions, model decisions, batching rounds, tier "
        "handoffs, cross-worker exchanges); sim-time only, draws no "
        "randomness, seeded outcomes are byte-identical on and off",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the trace as JSONL to this file (implies --trace)",
    )
    parser.add_argument(
        "--trace-capacity", type=int, default=None, metavar="N",
        help="flight-recorder ring size per process (default 4096; the "
        "oldest records evict first when a run outgrows it)",
    )


def _trace_enabled(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "trace", False) or getattr(args, "trace_out", None)
    )


def _tracer_from_args(args: argparse.Namespace, seed: int):
    """A FlightRecorder iff --trace/--trace-out was given, else None."""
    if not _trace_enabled(args):
        return None
    from repro.obs.trace import DEFAULT_TRACE_CAPACITY, FlightRecorder

    capacity = getattr(args, "trace_capacity", None) or DEFAULT_TRACE_CAPACITY
    return FlightRecorder(seed=seed, capacity=capacity)


def _export_trace(
    args: argparse.Namespace,
    events: list,
    recorded: int,
    evicted: int,
    meta: dict,
) -> None:
    """Print the trace summary line; write ``--trace-out`` if given."""
    print(f"trace: {recorded} records ({evicted} evicted from the ring)")
    if getattr(args, "trace_out", None):
        from repro.obs.trace import write_trace_jsonl

        rows = write_trace_jsonl(args.trace_out, events, meta=meta)
        print(f"wrote {rows} trace records to {args.trace_out}")


def _metrics_from_args(args: argparse.Namespace):
    """An enabled registry iff ``--metrics-out`` was given, else None."""
    if getattr(args, "metrics_out", None) is None:
        return None
    from repro.obs import MetricsRegistry

    return MetricsRegistry(enabled=True)


def _export_metrics(args: argparse.Namespace, metrics) -> None:
    if metrics is None:
        return
    rows = metrics.write_jsonl(args.metrics_out)
    print(f"wrote {rows} metrics records to {args.metrics_out}")


def _print_run(result: RunResult, title: str) -> None:
    rows = [
        ["simulated (ms)", result.sim_seconds * 1e3],
        ["wall-clock (s)", result.wallclock_seconds],
        ["sim-seconds/second", result.sim_seconds_per_second],
        ["events executed", result.events_executed],
        ["flows started", result.flows_started],
        ["flows completed", result.flows_completed],
        ["flows elided", result.flows_elided],
        ["drops", result.drops],
    ]
    if result.model_packets:
        rows.append(["model packets", result.model_packets])
        rows.append(["model drops", result.model_drops])
        rows.append(["inference wall-clock (s)", result.model_inference_seconds])
        rows.append(["inference share", result.inference_share])
        rows.append(["model packets/sec", result.model_packets_per_sec])
    if result.collective is not None:
        rows.append([
            "collective rounds",
            f"{result.collective['rounds_completed']}"
            f"/{result.collective['rounds_requested']}",
        ])
        rows.append(["collective flows", result.collective["flows_launched"]])
    print(f"== {title} ==")
    print(format_table(["metric", "value"], rows))
    for event in result.failure_events:
        a, b = event["link"]
        print(
            f"link {event['action']} {a}-{b} at {event['time'] * 1e3:.3f} ms"
            f" ({'applied' if event['changed'] else 'no-op'})"
        )
    for name, sample in (("RTT (us)", result.rtt_samples), ("FCT (ms)", result.fcts)):
        if not sample:
            continue
        scale = 1e6 if name.startswith("RTT") else 1e3
        stats = percentile_summary(sample, percentiles=(50, 95, 99))
        print(
            f"{name}: n={int(stats['count'])} "
            f"p50={stats['p50'] * scale:.1f} "
            f"p95={stats['p95'] * scale:.1f} "
            f"p99={stats['p99'] * scale:.1f}"
        )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_simulate(args: argparse.Namespace) -> int:
    config = _experiment_from_args(args)
    metrics = _metrics_from_args(args)
    if args.trace_csv:
        # Build manually so the tracer attaches before traffic starts.
        from repro.des.kernel import Simulator
        from repro.net.network import Network
        from repro.net.tracing import PacketTracer
        from repro.topology.clos import build_clos
        from repro.core.pipeline import make_generator

        topology = build_clos(config.clos)
        sim = Simulator(seed=config.seed)
        if metrics is not None:
            from repro.obs import attach_network_probes, default_period

            sim.metrics = metrics
        network = Network(sim, topology, config=config.net)
        tracer = PacketTracer(network)
        generator = make_generator(sim, network, config)
        if metrics is not None:
            attach_network_probes(
                metrics, sim, network, default_period(config.duration_s)
            )
        generator.start()
        sim.run(until=config.duration_s)
        count = tracer.write_csv(args.trace_csv)
        print(f"wrote {count} trace events to {args.trace_csv}")
        result = RunResult(
            sim_seconds=config.duration_s,
            wallclock_seconds=sim.wallclock_elapsed,
            events_executed=sim.events_executed,
            flows_started=generator.flows_started,
            flows_completed=generator.flows_completed,
            flows_elided=generator.flows_elided,
            drops=network.total_drops,
            rtt_samples=network.rtt_monitor(0).values.tolist(),
            fcts=generator.completed_fcts(),
        )
    else:
        result = run_full_simulation(config, metrics=metrics).result
    _print_run(result, f"full simulation: {args.clusters} clusters @ {args.load:.0%}")
    _export_metrics(args, metrics)
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    config = _experiment_from_args(args)
    micro = MicroModelConfig(
        hidden_size=args.hidden,
        num_layers=args.layers,
        cell=args.cell,
        alpha=args.alpha,
        window=args.window,
        train_batches=args.batches,
        learning_rate=args.learning_rate,
        seed=args.seed,
    )
    print(
        f"training on a {args.clusters}-cluster full simulation "
        f"({config.duration_s * 1e3:.0f} ms @ {config.load:.0%} load)..."
    )
    metrics = _metrics_from_args(args)
    trained, full_output = train_reusable_model(config, micro=micro, metrics=metrics)
    trained.save(args.output)
    rows = [[key, value] for key, value in sorted(trained.training_summary.items())]
    print(format_table(["training metric", "value"], rows))
    print(f"saved model bundle to {args.output}")
    _print_run(full_output.result, "ground-truth run")
    _export_metrics(args, metrics)
    return 0


def _cmd_hybrid(args: argparse.Namespace) -> int:
    try:
        trained = TrainedClusterModel.load(args.model)
    except FileNotFoundError as error:
        print(f"error: cannot load model bundle: {error}", file=sys.stderr)
        return 2
    config = _experiment_from_args(args)
    hybrid_config = HybridConfig(
        full_cluster=args.full_cluster,
        elide_remote_traffic=not args.keep_remote_traffic,
        single_black_box=args.single_black_box,
        batch_window_s=args.batch_window,
        memoize_inference=args.memoize,
        memo_exact=not args.memo_approximate,
    )
    metrics = _metrics_from_args(args)
    tracer = _tracer_from_args(args, config.seed)
    result, _ = run_hybrid_simulation(
        config, trained, hybrid=hybrid_config, metrics=metrics, tracer=tracer
    )
    mode = "single-black-box" if args.single_black_box else "per-cluster"
    _print_run(result, f"hybrid simulation ({mode}): {args.clusters} clusters")
    _export_metrics(args, metrics)
    if tracer is not None:
        _export_trace(
            args,
            tracer.records(),
            tracer.recorded,
            tracer.evicted,
            meta={"stage": "hybrid", "seed": config.seed, "workers": 1},
        )
    return 0


def _cmd_pdes(args: argparse.Namespace) -> int:
    config = _experiment_from_args(args)
    if args.hybrid:
        if args.model is None:
            print("error: --hybrid requires --model", file=sys.stderr)
            return 2
        try:
            trained = TrainedClusterModel.load(args.model)
        except FileNotFoundError as error:
            print(f"error: cannot load model bundle: {error}", file=sys.stderr)
            return 2
        from repro.pdes.hybrid_shard import (
            HybridShardConfig,
            run_hybrid_sharded,
        )

        hybrid_config = HybridConfig(
            full_cluster=args.full_cluster,
            elide_remote_traffic=not args.keep_remote_traffic,
            batch_window_s=args.batch_window,
            memoize_inference=args.memoize,
            memo_exact=not args.memo_approximate,
        )
        shard_kwargs = {}
        if _trace_enabled(args):
            from repro.obs.trace import DEFAULT_TRACE_CAPACITY

            shard_kwargs = {
                "trace": True,
                "trace_capacity": args.trace_capacity or DEFAULT_TRACE_CAPACITY,
            }
        shard_config = HybridShardConfig(
            workers=args.workers, window_s=args.window,
            metrics=args.worker_metrics, **shard_kwargs,
        )
        try:
            result = run_hybrid_sharded(
                config, trained, shard=shard_config, hybrid=hybrid_config
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        rows = [
            ["workers", result.workers],
            ["window (us)", result.window_s * 1e6],
            ["windows", result.windows],
            ["cut links", result.cut_links],
            ["exchanges", result.exchanges],
            ["messages", result.messages],
            ["stall wall-clock (s)", result.stall_seconds],
            ["lookahead violations", result.lookahead_violations],
            ["invariant violations", result.invariant_violations],
            ["simulated (ms)", result.sim_seconds * 1e3],
            ["wall-clock (s)", result.wallclock_seconds],
            ["sim-seconds/second", result.sim_seconds_per_second],
            ["events executed", result.events_executed],
            ["flows completed", result.flows_completed],
            ["drops", result.drops],
            ["model packets", result.model_packets],
            ["model drops", result.model_drops],
        ]
        print(
            f"== sharded hybrid ({result.workers} workers): "
            f"{args.clusters} clusters =="
        )
        print(format_table(["metric", "value"], rows))
        for name, sample in (
            ("RTT (us)", result.rtt_samples),
            ("FCT (ms)", result.fcts),
        ):
            if not sample:
                continue
            scale = 1e6 if name.startswith("RTT") else 1e3
            stats = percentile_summary(sample, percentiles=(50, 95, 99))
            print(
                f"{name}: n={int(stats['count'])} "
                f"p50={stats['p50'] * scale:.1f} "
                f"p95={stats['p95'] * scale:.1f} "
                f"p99={stats['p99'] * scale:.1f}"
            )
        if shard_config.trace:
            _export_trace(
                args,
                result.merged_trace(),
                result.trace_recorded,
                result.trace_evicted,
                meta={
                    "stage": "pdes-hybrid",
                    "seed": config.seed,
                    "workers": result.workers,
                },
            )
        return 0

    # Classic full-fidelity PDES (the Figure 1 reproduction).
    from repro.flowsim.workload import generate_workload
    from repro.pdes import PdesConfig, run_parallel_simulation
    from repro.topology.clos import build_clos

    topology = build_clos(config.clos)
    flows = generate_workload(
        topology,
        duration_s=config.duration_s,
        load=config.load,
        sizes=config.sizes(),
        seed=config.seed,
    )
    try:
        result = run_parallel_simulation(
            topology,
            flows,
            PdesConfig(
                workers=args.workers,
                duration_s=config.duration_s,
                window_s=args.window,
                seed=config.seed,
            ),
            net_config=config.net,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = [
        ["workers", result.workers],
        ["cut links", result.cut_links],
        ["cross-partition messages", result.cross_partition_messages],
        ["simulated (ms)", result.sim_seconds * 1e3],
        ["wall-clock (s)", result.wallclock_seconds],
        ["sim-seconds/second", result.sim_seconds_per_second],
        ["events executed", result.events_executed],
        ["flows completed", result.flows_completed],
        ["drops", result.drops],
    ]
    print(f"== parallel DES ({result.workers} workers): {args.clusters} clusters ==")
    print(format_table(["metric", "value"], rows))
    return 0


def _parse_pin_tiers(pins: Optional[Sequence[str]]):
    """Parse repeated ``--pin-tier REGION=TIER`` arguments."""
    from repro.cascade import Tier

    parsed = {}
    for pin in pins or ():
        region_text, sep, tier_text = pin.partition("=")
        if not sep:
            raise ValueError(f"--pin-tier expects REGION=TIER, got {pin!r}")
        try:
            region = int(region_text)
        except ValueError:
            raise ValueError(
                f"--pin-tier region must be an integer, got {region_text!r}"
            ) from None
        parsed[region] = Tier.parse(tier_text)
    return parsed


def _cmd_cascade(args: argparse.Namespace) -> int:
    try:
        trained = TrainedClusterModel.load(args.model)
    except FileNotFoundError as error:
        print(f"error: cannot load model bundle: {error}", file=sys.stderr)
        return 2
    from repro.cascade import (
        CascadeConfig,
        Tier,
        TierBudget,
        run_cascade_simulation,
    )

    config = _experiment_from_args(args)
    try:
        cascade_config = CascadeConfig(
            focal_cluster=args.focal_cluster,
            epoch_s=args.epoch_s,
            window_epochs=args.window_epochs,
            initial_tier=Tier.parse(args.initial_tier),
            budget=TierBudget(
                ks=args.budget,
                wasserstein_s=args.wasserstein_budget,
                drop_delta=args.drop_budget,
            ),
            pin_tiers=_parse_pin_tiers(args.pin_tier),
            min_window_samples=args.min_window_samples,
            demote_fraction=args.demote_fraction,
            demote_patience=args.demote_patience,
            cooldown_epochs=args.cooldown_epochs,
            max_promotions_per_epoch=args.max_promotions,
            batch_window_s=args.batch_window,
            memoize_inference=args.memoize,
            memo_exact=not args.memo_approximate,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    metrics = _metrics_from_args(args)
    tracer = _tracer_from_args(args, config.seed)
    result, cascade_sim = run_cascade_simulation(
        config, trained, cascade=cascade_config, metrics=metrics, tracer=tracer
    )
    _print_run(
        result.result,
        f"cascade simulation: {args.clusters} clusters, "
        f"focal cluster {args.focal_cluster}",
    )
    summary = result.summary
    print(
        f"controller: {summary['epochs']} epochs, "
        f"{summary['promotions']} promotion(s), "
        f"{summary['demotions']} demotion(s), "
        f"{summary['decisions']} decision-log record(s)"
    )
    rows = []
    for region in sorted(summary["tier_residency"], key=int):
        residency = summary["tier_residency"][region]
        rows.append([
            region,
            summary["final_tiers"][region],
            residency.get("flowsim", 0),
            residency.get("hybrid", 0),
            residency.get("des", 0),
        ])
    print(format_table(
        ["region", "final tier", "flowsim epochs", "hybrid epochs", "des epochs"],
        rows,
    ))
    print(format_table(
        ["tier", "packets", "flows"],
        [
            [tier, f"{summary['per_tier_packets'][tier]:.0f}",
             summary["per_tier_flows"][tier]]
            for tier in ("flowsim", "hybrid", "des")
        ],
    ))
    fluid = summary["fluid"]
    print(
        f"fluid tier: {fluid['flows_admitted']} admitted, "
        f"{fluid['flows_completed']} completed, "
        f"{fluid['active_at_end']} in flight at end, "
        f"{fluid['rate_recomputes']} rate recomputes"
    )
    if result.fluid_fcts:
        stats = percentile_summary(result.fluid_fcts, percentiles=(50, 95, 99))
        print(
            f"fluid FCT (ms): n={int(stats['count'])} "
            f"p50={stats['p50'] * 1e3:.1f} "
            f"p95={stats['p95'] * 1e3:.1f} "
            f"p99={stats['p99'] * 1e3:.1f}"
        )
    if args.decision_log:
        cascade_sim.decision_log.save(args.decision_log)
        print(f"wrote decision log to {args.decision_log}")
    _export_metrics(args, metrics)
    if tracer is not None:
        _export_trace(
            args,
            tracer.records(),
            tracer.recorded,
            tracer.evicted,
            meta={"stage": "cascade", "seed": config.seed, "workers": 1},
        )
    return 0


def _cmd_flowsim(args: argparse.Namespace) -> int:
    from repro.flowsim import FlowLevelSimulator
    from repro.flowsim.workload import generate_workload, load_workload
    from repro.topology.clos import build_clos

    config = _experiment_from_args(args)
    topology = build_clos(config.clos)
    if args.workload:
        try:
            flows = load_workload(args.workload)
        except (OSError, ValueError, TypeError) as error:
            print(f"error: cannot load workload: {error}", file=sys.stderr)
            return 2
    else:
        flows = generate_workload(
            topology,
            duration_s=config.duration_s,
            load=config.load,
            sizes=config.sizes(),
            seed=config.seed,
        )
    metrics = _metrics_from_args(args)
    simulator = FlowLevelSimulator(topology, metrics=metrics)
    try:
        results = simulator.run(flows)
    except ValueError as error:
        print(f"error: invalid workload: {error}", file=sys.stderr)
        return 2
    rows = [
        ["flows simulated", len(results)],
        ["wall-clock (s)", simulator.wallclock_elapsed],
        ["rate recomputes", simulator.rate_recomputations],
        ["bytes transferred", sum(r.spec.size_bytes for r in results)],
    ]
    print(f"== flow-level simulation: {args.clusters} clusters @ {args.load:.0%} ==")
    print(format_table(["metric", "value"], rows))
    fcts = [r.fct for r in results]
    if fcts:
        stats = percentile_summary(fcts, percentiles=(50, 95, 99))
        print(
            f"FCT (ms): n={int(stats['count'])} "
            f"p50={stats['p50'] * 1e3:.1f} "
            f"p95={stats['p95'] * 1e3:.1f} "
            f"p99={stats['p99'] * 1e3:.1f}"
        )
    _export_metrics(args, metrics)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    import json as _json

    from repro.validate import ValidateConfig, render_report, run_differential_pair

    config = _experiment_from_args(args)
    metrics = _metrics_from_args(args)
    if args.model is not None:
        try:
            trained = TrainedClusterModel.load(args.model)
        except FileNotFoundError as error:
            print(f"error: cannot load model bundle: {error}", file=sys.stderr)
            return 2
    else:
        training = ExperimentConfig(
            clos=ClosParams(clusters=2),
            load=config.load,
            duration_s=args.train_duration,
            seed=config.seed,
        )
        micro = MicroModelConfig(
            hidden_size=args.hidden,
            num_layers=args.layers,
            window=args.window,
            train_batches=args.batches,
            seed=config.seed,
        )
        print(
            f"no --model given: training a bundle on a 2-cluster run "
            f"({training.duration_s * 1e3:.0f} ms @ {training.load:.0%} load)..."
        )
        trained, _ = train_reusable_model(training, micro=micro)
    validate_config = ValidateConfig(
        region_cluster=args.region_cluster,
        full_cluster=args.full_cluster,
        elide_remote_traffic=args.elide_remote_traffic,
        batch_window_s=args.batch_window,
        memoize_inference=args.memoize,
        memo_exact=not args.memo_approximate,
    )
    diff = run_differential_pair(
        config, trained, validate=validate_config, metrics=metrics
    )
    print(
        f"== differential fidelity: {args.clusters} clusters @ "
        f"{args.load:.0%}, seed {config.seed} =="
    )
    print(render_report(diff.report))
    if args.report_json:
        payload = {
            "experiment": {
                "clusters": args.clusters,
                "load": config.load,
                "duration_s": config.duration_s,
                "seed": config.seed,
            },
            "full": {
                "flows_completed": diff.full.flows_completed,
                "drops": diff.full.drops,
                "events_executed": diff.full.events_executed,
            },
            "hybrid": {
                "flows_completed": diff.hybrid.flows_completed,
                "drops": diff.hybrid.drops,
                "events_executed": diff.hybrid.events_executed,
                "model_packets": diff.hybrid.model_packets,
            },
            "fidelity": diff.report.to_dict(),
        }
        with open(args.report_json, "w", encoding="utf-8") as handle:
            _json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote fidelity report to {args.report_json}")
    _export_metrics(args, metrics)
    violations = diff.checker.total
    if violations:
        print(f"error: {violations} invariant violation(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    try:
        trained = TrainedClusterModel.load(args.model)
    except FileNotFoundError as error:
        print(f"error: cannot load model bundle: {error}", file=sys.stderr)
        return 2
    from repro.core.evaluation import evaluate_on_records
    from repro.core.features import RegionFeatureExtractor
    from repro.core.pipeline import run_full_simulation

    config = _experiment_from_args(args)
    print(
        f"collecting a held-out trace: {args.clusters}-cluster full "
        f"simulation ({config.duration_s * 1e3:.0f} ms @ {config.load:.0%})..."
    )
    output = run_full_simulation(config, collect_cluster=args.region_cluster)
    if not output.records:
        print("error: trace is empty; increase --duration or --load", file=sys.stderr)
        return 1
    extractor = RegionFeatureExtractor(
        output.extractor.topology, output.extractor.routing, args.region_cluster
    )
    results = evaluate_on_records(trained, output.records, extractor)
    rows = []
    for direction, ev in results.items():
        rows.append([
            direction.value,
            ev.samples,
            f"{ev.drop_rate_true:.4f}",
            f"{ev.drop_rate_predicted:.4f}",
            "-" if ev.drop_auc is None else f"{ev.drop_auc:.3f}",
            f"{ev.latency_log_mae:.3f}",
            f"{ev.latency_median_relative_error:.2f}",
        ])
    print(format_table(
        ["direction", "samples", "drop_true", "drop_pred", "drop_auc",
         "log_mae", "median_rel_err"],
        rows,
    ))
    return 0


def _format_axes(axes: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(axes.items())) or "-"


def _cmd_runs_submit(args: argparse.Namespace) -> int:
    from repro.runs import SchedulerConfig, SweepScheduler, load_spec

    try:
        spec = load_spec(args.spec)
    except (OSError, ValueError) as error:
        print(f"error: cannot load spec: {error}", file=sys.stderr)
        return 2
    config = SchedulerConfig(
        workers=args.workers,
        timeout_s=args.timeout,
        retries=args.retries,
        backoff_s=args.backoff,
    )
    scheduler = SweepScheduler(
        spec, args.out, registry_root=args.registry, config=config
    )
    print(
        f"submitting sweep {spec.name!r}: {len(spec.expand())} runs "
        f"({spec.stage} stage, {args.workers} workers) -> {args.out}"
    )
    manifests = scheduler.submit()
    rows = []
    for manifest in manifests:
        cache = "-"
        if manifest.model is not None:
            cache = "hit" if manifest.model.get("cache_hit") else "miss"
        wall = (
            f"{manifest.wallclock_seconds:.2f}"
            if manifest.wallclock_seconds is not None
            else "-"
        )
        rows.append([
            manifest.run_id, manifest.status, manifest.attempts,
            wall, cache, _format_axes(manifest.axes),
        ])
    print(format_table(
        ["run", "status", "attempts", "wall (s)", "model", "axes"], rows
    ))
    failed = sum(1 for m in manifests if m.status != "completed")
    if failed:
        print(f"{failed}/{len(manifests)} runs did not complete", file=sys.stderr)
    return 1 if failed else 0


def _cmd_runs_status(args: argparse.Namespace) -> int:
    from repro.runs import RunStore, summarize_statuses

    store = RunStore(args.out)
    manifests = store.manifests(status=args.status, stage=args.stage)
    if not manifests:
        print(f"no run manifests under {args.out}")
        return 0
    rows = []
    for manifest in manifests:
        cache = "-"
        if manifest.model is not None:
            cache = "hit" if manifest.model.get("cache_hit") else "miss"
        wall = (
            f"{manifest.wallclock_seconds:.2f}"
            if manifest.wallclock_seconds is not None
            else "-"
        )
        rows.append([
            manifest.run_id, manifest.stage, manifest.status,
            manifest.attempts, wall, cache, _format_axes(manifest.axes),
        ])
    print(format_table(
        ["run", "stage", "status", "attempts", "wall (s)", "model", "axes"], rows
    ))
    counts = summarize_statuses(manifests)
    print(", ".join(f"{status}: {count}" for status, count in sorted(counts.items())))
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    import json as _json

    from repro.runs import RunStore

    store = RunStore(args.out)
    try:
        manifest = store.get(args.run_id)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(_json.dumps(manifest.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_models_ls(args: argparse.Namespace) -> int:
    import datetime as _dt

    from repro.runs import ModelRegistry

    registry = ModelRegistry(args.registry)
    entries = registry.entries()
    if not entries:
        print(f"no models under {args.registry}")
        return 0
    rows = []
    for entry in entries:
        micro = entry.inputs.get("micro", {})
        shape = "-"
        if micro:
            shape = (
                f"{micro.get('cell', '?')} h{micro.get('hidden_size', '?')}"
                f"x{micro.get('num_layers', '?')}"
            )
        rows.append([
            entry.fingerprint,
            shape,
            f"{entry.size_bytes / 1024:.0f}",
            _dt.datetime.fromtimestamp(entry.created_at).strftime("%Y-%m-%d %H:%M:%S"),
            _dt.datetime.fromtimestamp(entry.last_used_at).strftime("%Y-%m-%d %H:%M:%S"),
        ])
    print(format_table(
        ["fingerprint", "model", "size (KiB)", "created", "last used"], rows
    ))
    return 0


def _cmd_models_gc(args: argparse.Namespace) -> int:
    from repro.runs import ModelRegistry

    registry = ModelRegistry(args.registry)
    removed = registry.gc(keep=args.keep, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    for entry in removed:
        print(f"{verb} {entry.fingerprint} ({entry.size_bytes / 1024:.0f} KiB)")
    kept = len(registry.entries())
    print(f"{verb} {len(removed)} model(s); {kept} kept under {args.registry}")
    return 0


def _load_trace_file(run: str):
    """Resolve a run directory / manifest path / trace file to
    ``(meta, records)``."""
    from pathlib import Path

    from repro.obs.trace import read_trace_jsonl

    path = Path(run)
    if path.is_dir():
        path = path / "trace.jsonl"
    elif path.name == "manifest.json":
        path = path.with_name("trace.jsonl")
    return read_trace_jsonl(path)


def _format_trace_args(record: dict) -> str:
    parts = []
    for key, value in sorted(record.get("args", {}).items()):
        if isinstance(value, float):
            parts.append(f"{key}={value:.3e}")
        else:
            parts.append(f"{key}={value}")
    return ",".join(parts) or "-"


def _cmd_trace_show(args: argparse.Namespace) -> int:
    from repro.obs.trace import flow_events, trace_id

    try:
        meta, records = _load_trace_file(args.run)
    except (OSError, ValueError) as error:
        print(f"error: cannot load trace: {error}", file=sys.stderr)
        return 2
    target = args.flow
    if target.isdigit() and meta.get("seed") is not None:
        target = trace_id(int(meta["seed"]), int(target), domain=args.domain)
    try:
        events = flow_events(records, target)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not events:
        print(f"no trace records for flow {args.flow!r}")
        return 1
    print(
        f"== flow {args.flow} (trace {events[0]['trace']}): "
        f"{len(events)} records =="
    )
    rows = []
    for record in events:
        duration = record["t1"] - record["t0"]
        rows.append([
            f"{record['t0'] * 1e3:.4f}",
            "-" if record["worker"] is None else record["worker"],
            record["kind"],
            record["name"],
            f"{duration * 1e6:.2f}" if duration > 0 else "-",
            _format_trace_args(record),
        ])
    print(format_table(
        ["t (ms)", "worker", "kind", "name", "dur (us)", "detail"], rows
    ))
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.trace import to_chrome_trace

    try:
        meta, records = _load_trace_file(args.run)
    except (OSError, ValueError) as error:
        print(f"error: cannot load trace: {error}", file=sys.stderr)
        return 2
    payload = to_chrome_trace(records)
    text = _json.dumps(payload, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(
            f"wrote {len(payload['traceEvents'])} Chrome trace events "
            f"to {args.out}"
        )
    else:
        print(text)
    return 0


def _cmd_trace_top(args: argparse.Namespace) -> int:
    from repro.obs.trace import top_spans

    try:
        meta, records = _load_trace_file(args.run)
    except (OSError, ValueError) as error:
        print(f"error: cannot load trace: {error}", file=sys.stderr)
        return 2
    ranked = top_spans(records, by=args.by, limit=args.limit)
    if not ranked:
        print("no spans in this trace")
        return 1
    if args.by == "count":
        print(format_table(
            ["name", "count"], [[row["name"], row["count"]] for row in ranked]
        ))
        return 0
    rows = [
        [
            row["name"],
            row["trace"] or "-",
            "-" if row["worker"] is None else row["worker"],
            f"{row['t0'] * 1e3:.4f}",
            f"{row['duration_s'] * 1e6:.2f}",
        ]
        for row in ranked
    ]
    print(format_table(
        ["span", "trace", "worker", "t0 (ms)", "duration (us)"], rows
    ))
    return 0


def _format_labels(labels: Optional[dict]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted((labels or {}).items())) or "-"


def _cmd_obs_show(args: argparse.Namespace) -> int:
    import json as _json

    from repro.runs import RunManifest

    try:
        manifest = RunManifest.load(args.manifest)
    except (OSError, _json.JSONDecodeError, TypeError, KeyError) as error:
        print(f"error: cannot load manifest: {error}", file=sys.stderr)
        return 2
    pdes = (manifest.result or {}).get("pdes")
    if pdes and pdes.get("per_worker"):
        print(
            f"== pdes shards: run {manifest.run_id} "
            f"({pdes['workers']} workers, {pdes['windows']} windows, "
            f"{pdes['exchanges']} exchanges) =="
        )
        rows = [
            [
                worker["worker_index"],
                worker["events_executed"],
                worker["windows"],
                worker["exchanges"],
                worker["messages_sent"],
                worker["messages_received"],
                f"{worker['stall_seconds']:.4f}",
                f"{worker['cpu_seconds']:.4f}",
                worker["flows_completed"],
                worker["model_packets"],
                worker["invariant_violations"],
            ]
            for worker in pdes["per_worker"]
        ]
        print(format_table(
            ["worker", "events", "windows", "exch", "sent", "recv",
             "stall (s)", "cpu (s)", "flows", "model pkts", "viol"],
            rows,
        ))
        trace_info = pdes.get("trace")
        if trace_info:
            print(
                f"trace: {trace_info['recorded']} records merged across "
                f"workers ({trace_info['evicted']} evicted)"
            )
    snap = manifest.metrics
    if snap is None:
        print(f"run {manifest.run_id}: no observability snapshot in this manifest")
        return 1
    if not snap.get("enabled", False):
        print(f"run {manifest.run_id}: metrics were disabled for this run")
        return 0
    print(
        f"== observability: run {manifest.run_id} "
        f"({manifest.stage}, {manifest.status}) =="
    )
    spans = snap.get("spans", [])
    if spans:
        rows = []
        for span in spans:
            s = span["summary"]
            rows.append([
                span["name"], _format_labels(span.get("labels")),
                int(s["count"]), int(s["errors"]),
                f"{s['total_s']:.4f}",
                f"{s.get('seconds_mean', 0.0):.2e}" if s["count"] else "-",
            ])
        print(format_table(
            ["span", "labels", "count", "errors", "total (s)", "mean (s)"], rows
        ))
    counters = snap.get("counters", [])
    if counters:
        rows = [
            [c["name"], _format_labels(c.get("labels")), c["value"]]
            for c in counters
        ]
        print(format_table(["counter", "labels", "value"], rows))
    gauges = snap.get("gauges", [])
    if gauges:
        rows = [
            [g["name"], _format_labels(g.get("labels")), g["value"]]
            for g in gauges
        ]
        print(format_table(["gauge", "labels", "value"], rows))
    histograms = snap.get("histograms", [])
    if histograms:
        rows = []
        for hist in histograms:
            s = hist["summary"]
            count = int(s.get("count", 0))
            rows.append([
                hist["name"], _format_labels(hist.get("labels")), count,
                f"{s['mean']:.3e}" if count else "-",
                f"{s['p50']:.3e}" if count else "-",
                f"{s['p99']:.3e}" if count else "-",
                f"{s['max']:.3e}" if count else "-",
            ])
        print(format_table(
            ["histogram", "labels", "count", "mean", "p50", "p99", "max"], rows
        ))
    probes = snap.get("probes", {})
    samples = probes.get("samples", [])
    print(
        f"probe samples: {len(samples)} retained, "
        f"{probes.get('dropped', 0)} dropped"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__}")
    print(
        "reproduction of: Kazer et al., 'Fast Network Simulation Through "
        "Approximation' (HotNets-XVII, 2018)"
    )
    print(f"micro-model features ({len(FEATURE_NAMES)}):")
    for name in FEATURE_NAMES:
        print(f"  - {name}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="approximate data center network simulation (HotNets'18 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser("simulate", help="full packet-level simulation")
    _add_experiment_arguments(simulate)
    simulate.add_argument(
        "--matrix", choices=("uniform", "permutation", "incast"), default="uniform",
        help="traffic matrix (endpoint selection policy)",
    )
    simulate.add_argument(
        "--trace-csv", default=None, help="write a raw packet/event trace CSV here"
    )
    _add_scenario_arguments(simulate)
    _add_metrics_argument(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    train = commands.add_parser("train", help="train a reusable cluster model")
    _add_experiment_arguments(train)
    train.add_argument("--output", required=True, help="model bundle directory")
    train.add_argument("--hidden", type=int, default=32, help="hidden units per layer")
    train.add_argument("--layers", type=int, default=1, help="recurrent layers")
    train.add_argument("--cell", choices=("lstm", "gru"), default="lstm")
    train.add_argument("--alpha", type=float, default=0.5, help="joint-loss latency weight")
    train.add_argument("--window", type=int, default=16, help="BPTT window length")
    train.add_argument("--batches", type=int, default=300, help="SGD steps")
    train.add_argument("--learning-rate", type=float, default=3e-3)
    _add_metrics_argument(train)
    train.set_defaults(handler=_cmd_train)

    hybrid = commands.add_parser("hybrid", help="run an approximate simulation")
    _add_experiment_arguments(hybrid)
    hybrid.add_argument("--model", required=True, help="model bundle directory")
    hybrid.add_argument("--full-cluster", type=int, default=0)
    hybrid.add_argument(
        "--keep-remote-traffic", action="store_true",
        help="simulate traffic between approximated clusters too",
    )
    hybrid.add_argument(
        "--single-black-box", action="store_true",
        help="replace everything outside the full cluster with one model (Section 7)",
    )
    _add_scenario_arguments(hybrid)
    _add_batching_arguments(hybrid)
    _add_metrics_argument(hybrid)
    _add_trace_arguments(hybrid)
    hybrid.set_defaults(handler=_cmd_hybrid)

    pdes = commands.add_parser(
        "pdes",
        help="parallel DES across worker processes (add --hybrid to "
        "shard the hybrid simulation)",
    )
    _add_experiment_arguments(pdes)
    pdes.add_argument(
        "--workers", type=int, default=2, help="worker processes"
    )
    pdes.add_argument(
        "--window", type=float, default=None, metavar="SECONDS",
        help="synchronization window (default: the maximum safe lookahead; "
        "larger values are rejected)",
    )
    pdes.add_argument(
        "--hybrid", action="store_true",
        help="shard the hybrid simulation (full-fidelity region split "
        "across workers, cluster models colocated with their attachment "
        "points); requires --model",
    )
    pdes.add_argument(
        "--model", default=None, help="model bundle directory (with --hybrid)"
    )
    pdes.add_argument("--full-cluster", type=int, default=0)
    pdes.add_argument(
        "--keep-remote-traffic", action="store_true",
        help="simulate traffic between approximated clusters too",
    )
    pdes.add_argument(
        "--worker-metrics", action="store_true",
        help="collect a per-worker metrics snapshot (hybrid mode)",
    )
    _add_batching_arguments(pdes)
    _add_trace_arguments(pdes)
    pdes.set_defaults(handler=_cmd_pdes)

    cascade = commands.add_parser(
        "cascade",
        help="multi-fidelity cascade with validated auto-promotion",
    )
    _add_experiment_arguments(cascade)
    cascade.add_argument("--model", required=True, help="model bundle directory")
    cascade.add_argument(
        "--focal-cluster", type=int, default=0,
        help="cluster kept at full packet fidelity (the in-run reference)",
    )
    cascade.add_argument(
        "--budget", type=float, default=0.35, metavar="KS",
        help="per-region K-S fidelity budget on windowed FCTs vs the focal region",
    )
    cascade.add_argument(
        "--drop-budget", type=float, default=0.05, metavar="DELTA",
        help="max tolerated absolute drop-rate difference vs the focal region",
    )
    cascade.add_argument(
        "--wasserstein-budget", type=float, default=None, metavar="SECONDS",
        help="optional absolute Wasserstein-1 budget on windowed FCTs",
    )
    cascade.add_argument(
        "--epoch-s", type=float, default=0.002, metavar="SECONDS",
        help="controller cadence in simulated seconds",
    )
    cascade.add_argument(
        "--window-epochs", type=int, default=3,
        help="sliding scoring horizon, in epochs",
    )
    cascade.add_argument(
        "--min-window-samples", type=int, default=8,
        help="FCT samples both windows need before scores drive decisions",
    )
    cascade.add_argument(
        "--initial-tier", default="flowsim", metavar="TIER",
        help="starting tier of unpinned regions (flowsim|hybrid)",
    )
    cascade.add_argument(
        "--pin-tier", action="append", default=None, metavar="REGION=TIER",
        help="pin one region to a tier the controller must not move "
        "(repeatable, e.g. --pin-tier 2=hybrid)",
    )
    cascade.add_argument(
        "--demote-fraction", type=float, default=0.5,
        help="breach-ratio fraction under which an epoch counts as calm",
    )
    cascade.add_argument(
        "--demote-patience", type=int, default=2,
        help="consecutive calm epochs required before a demotion",
    )
    cascade.add_argument(
        "--cooldown-epochs", type=int, default=1,
        help="epochs a region sits out after any transition",
    )
    cascade.add_argument(
        "--max-promotions", type=int, default=1, metavar="N",
        help="promotion pacing per epoch (worst-breaching regions first)",
    )
    cascade.add_argument(
        "--decision-log", default=None, metavar="PATH",
        help="write the controller's auditable decision log (JSON) here",
    )
    _add_scenario_arguments(cascade)
    _add_batching_arguments(cascade)
    _add_metrics_argument(cascade)
    _add_trace_arguments(cascade)
    cascade.set_defaults(handler=_cmd_cascade)

    flowsim = commands.add_parser(
        "flowsim", help="flow-level (max-min fluid) simulation baseline"
    )
    _add_experiment_arguments(flowsim)
    flowsim.add_argument(
        "workload", nargs="?", default=None,
        help="pre-generated workload JSON (default: sample one from the "
        "experiment arguments)",
    )
    _add_metrics_argument(flowsim)
    flowsim.set_defaults(handler=_cmd_flowsim)

    validate = commands.add_parser(
        "validate",
        help="differential fidelity: score a hybrid against a matched full run",
    )
    _add_experiment_arguments(validate)
    validate.add_argument(
        "--model", default=None,
        help="model bundle directory (default: train a small bundle first)",
    )
    validate.add_argument(
        "--region-cluster", type=int, default=1,
        help="cluster traced in the full run and approximated in the hybrid",
    )
    validate.add_argument(
        "--full-cluster", type=int, default=0,
        help="cluster kept at full fidelity on the hybrid side",
    )
    validate.add_argument(
        "--elide-remote-traffic", action="store_true",
        help="elide flows between approximated clusters (off by default: "
        "the pair should carry identical workloads)",
    )
    validate.add_argument(
        "--train-duration", type=float, default=0.006,
        help="training-run simulated seconds when no --model is given",
    )
    validate.add_argument("--hidden", type=int, default=16, help="hidden units (training fallback)")
    validate.add_argument("--layers", type=int, default=1, help="recurrent layers (training fallback)")
    validate.add_argument("--window", type=int, default=8, help="BPTT window (training fallback)")
    validate.add_argument("--batches", type=int, default=40, help="SGD steps (training fallback)")
    validate.add_argument(
        "--report-json", default=None, metavar="PATH",
        help="write the full fidelity report as JSON here",
    )
    _add_scenario_arguments(validate)
    _add_batching_arguments(validate)
    _add_metrics_argument(validate)
    validate.set_defaults(handler=_cmd_validate)

    evaluate = commands.add_parser(
        "evaluate", help="score a model bundle against a fresh ground-truth trace"
    )
    _add_experiment_arguments(evaluate)
    evaluate.add_argument("--model", required=True, help="model bundle directory")
    evaluate.add_argument(
        "--region-cluster", type=int, default=1,
        help="cluster whose boundary to trace and predict",
    )
    evaluate.set_defaults(handler=_cmd_evaluate)

    runs = commands.add_parser(
        "runs", help="experiment orchestration: sweeps, manifests, run store"
    )
    runs_commands = runs.add_subparsers(dest="runs_command", required=True)

    submit = runs_commands.add_parser(
        "submit", help="expand a scenario spec and execute its sweep"
    )
    submit.add_argument("--spec", required=True, help="scenario spec (.json or .toml)")
    submit.add_argument("--out", default="runs", help="sweep output directory")
    submit.add_argument(
        "--registry", default=None,
        help="model registry directory (default: <out>/models)",
    )
    submit.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (0 = run inline in this process)",
    )
    submit.add_argument(
        "--timeout", type=float, default=None, help="per-attempt timeout in seconds"
    )
    submit.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts after a failed or timed-out run",
    )
    submit.add_argument(
        "--backoff", type=float, default=0.25, help="base retry backoff in seconds"
    )
    submit.set_defaults(handler=_cmd_runs_submit)

    status = runs_commands.add_parser("status", help="list a sweep's run manifests")
    status.add_argument("--out", default="runs", help="sweep output directory")
    status.add_argument(
        "--status", default=None,
        choices=("running", "completed", "failed", "timeout"),
        help="only show runs in this state",
    )
    status.add_argument("--stage", default=None, help="only show runs of this stage")
    status.set_defaults(handler=_cmd_runs_status)

    show = runs_commands.add_parser("show", help="print one run's full manifest")
    show.add_argument("run_id", help="run id (see 'repro runs status')")
    show.add_argument("--out", default="runs", help="sweep output directory")
    show.set_defaults(handler=_cmd_runs_show)

    models = commands.add_parser(
        "models", help="model registry: list and garbage-collect trained bundles"
    )
    models_commands = models.add_subparsers(dest="models_command", required=True)

    models_ls = models_commands.add_parser("ls", help="list stored cluster models")
    models_ls.add_argument(
        "--registry", default="runs/models", help="model registry directory"
    )
    models_ls.set_defaults(handler=_cmd_models_ls)

    models_gc = models_commands.add_parser(
        "gc", help="drop all but the most-recently-used models"
    )
    models_gc.add_argument(
        "--registry", default="runs/models", help="model registry directory"
    )
    models_gc.add_argument(
        "--keep", type=int, default=8, help="how many recently-used models to keep"
    )
    models_gc.add_argument(
        "--dry-run", action="store_true", help="report victims without deleting"
    )
    models_gc.set_defaults(handler=_cmd_models_gc)

    obs = commands.add_parser(
        "obs", help="observability: inspect a run's metrics snapshot"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    obs_show = obs_commands.add_parser(
        "show", help="pretty-print the metrics snapshot of a run manifest"
    )
    obs_show.add_argument(
        "manifest", help="path to a manifest.json (or the run directory holding one)"
    )
    obs_show.set_defaults(handler=_cmd_obs_show)

    trace = commands.add_parser(
        "trace",
        help="causal tracing: follow one flow across tiers, shards, and "
        "workers (reads the trace.jsonl a traced run wrote)",
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)

    trace_show = trace_commands.add_parser(
        "show", help="print every trace record of one flow, in causal order"
    )
    trace_show.add_argument(
        "run", help="run directory, manifest.json, or trace.jsonl path"
    )
    trace_show.add_argument(
        "flow", help="flow id (integer, resolved via the trace's seed) or "
        "a trace-id hex prefix",
    )
    trace_show.add_argument(
        "--domain", choices=("flow", "fluid"), default="flow",
        help="id domain when flow is an integer (packet flows vs the "
        "cascade's fluid flows)",
    )
    trace_show.set_defaults(handler=_cmd_trace_show)

    trace_export = trace_commands.add_parser(
        "export", help="export the trace for external viewers"
    )
    trace_export.add_argument(
        "run", help="run directory, manifest.json, or trace.jsonl path"
    )
    trace_export.add_argument(
        "--format", choices=("chrome",), default="chrome",
        help="output format (chrome://tracing / Perfetto JSON)",
    )
    trace_export.add_argument(
        "--out", default=None, metavar="PATH",
        help="write here instead of stdout",
    )
    trace_export.set_defaults(handler=_cmd_trace_export)

    trace_top = trace_commands.add_parser(
        "top", help="rank trace records (longest spans or commonest names)"
    )
    trace_top.add_argument(
        "run", help="run directory, manifest.json, or trace.jsonl path"
    )
    trace_top.add_argument(
        "--by", choices=("span-duration", "count"), default="span-duration",
        help="ranking: longest spans, or record-name frequency",
    )
    trace_top.add_argument("--limit", type=int, default=10)
    trace_top.set_defaults(handler=_cmd_trace_top)

    info = commands.add_parser("info", help="version and model feature list")
    info.set_defaults(handler=_cmd_info)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ValueError as error:
        # The package raises ValueError for invalid user input (bad
        # scenario specs, nonexistent failure links, oversized PDES
        # windows, ...); render it as a CLI error, not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
