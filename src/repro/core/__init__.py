"""The paper's contribution: ML-approximated network regions.

This package implements Sections 3-5 of the paper:

* :mod:`repro.core.macro` — the four-state auto-regressive congestion
  classifier (Section 4.1).
* :mod:`repro.core.features` — per-packet feature extraction from
  headers, simulation time, and routing knowledge (Section 4.2).
* :mod:`repro.core.micro` — the two-layer LSTM micro model with fully
  connected drop and latency heads (Section 4.2).
* :mod:`repro.core.training` — trace collection on a full-fidelity
  simulation, dataset construction, SGD training, and the serializable
  :class:`~repro.core.training.TrainedClusterModel` bundle.
* :mod:`repro.core.cluster_model` — the black-box DES entity that
  replaces a cluster fabric at simulation time, with the paper's
  first-come-first-served conflict resolution.
* :mod:`repro.core.hybrid` — assembly of hybrid simulations: one full
  cluster + all core switches in full fidelity, everything else
  approximated (Section 5).
* :mod:`repro.core.pipeline` — the Figure 3 workflow end to end.
"""

from repro.core.features import Direction, FEATURE_COUNT, FEATURE_NAMES, RegionFeatureExtractor
from repro.core.hybrid import BLACK_BOX_KEY, HybridConfig, HybridSimulation
from repro.core.region import Region
from repro.core.macro import (
    AutoRegressiveMacroClassifier,
    MacroCalibration,
    MacroState,
    calibrate_macro,
)
from repro.core.micro import MicroModel, MicroModelConfig
from repro.core.cluster_model import ApproximatedCluster
from repro.core.evaluation import DirectionEvaluation, evaluate_on_records
from repro.core.pipeline import (
    ExperimentConfig,
    FullRunOutput,
    RunResult,
    run_full_simulation,
    run_hybrid_simulation,
    train_reusable_model,
)
from repro.core.training import (
    PacketCrossing,
    RegionTraceCollector,
    TrainedClusterModel,
    train_cluster_model,
    train_micro_model,
)

__all__ = [
    "ApproximatedCluster",
    "BLACK_BOX_KEY",
    "AutoRegressiveMacroClassifier",
    "Direction",
    "DirectionEvaluation",
    "ExperimentConfig",
    "FEATURE_COUNT",
    "FEATURE_NAMES",
    "FullRunOutput",
    "HybridConfig",
    "HybridSimulation",
    "MacroCalibration",
    "MacroState",
    "MicroModel",
    "MicroModelConfig",
    "PacketCrossing",
    "Region",
    "RegionFeatureExtractor",
    "RegionTraceCollector",
    "RunResult",
    "TrainedClusterModel",
    "calibrate_macro",
    "evaluate_on_records",
    "run_full_simulation",
    "run_hybrid_simulation",
    "train_cluster_model",
    "train_micro_model",
    "train_reusable_model",
]
