"""Event-horizon inference batching across approximated clusters.

The hybrid hot path spends its time in micro-model steps, one GEMV
chain per packet (see ``BENCH_hotpath.json``).  Packets arriving at
*different* approximated clusters are causally independent until their
deliveries re-enter the shared network, and a delivery can never land
earlier than ``MIN_REGION_LATENCY_S`` after its packet's arrival —
which opens a window: hold packets arriving anywhere in the black-box
layer for up to that long, then advance every cluster's recurrent
state together with one stacked GEMM per layer
(:class:`~repro.nn.batch.BatchedFusedEngine`) instead of per-packet
GEMV chains.

Causality is preserved by construction:

* the effective window is ``min(window_s, MIN_REGION_LATENCY_S)``, so
  the flush event at ``t0 + W`` (``t0`` = first enqueue) fires at or
  before the earliest time any held packet's delivery could occur —
  nothing is ever scheduled into the past, and no event that could
  *observe* a held packet's outcome runs before the flush;
* the flush event carries :data:`FLUSH_PRIORITY` (< the kernel
  default), so at an equal timestamp the flush executes first;
* any code that reads model state mid-run (observability probes, the
  conservation check, end-of-run accounting) calls :meth:`flush`
  explicitly — flushing early is always safe, it only shrinks the
  batch.

Event-identity with the unbatched path (float64) holds because within
a cluster packets are processed strictly in arrival order — feature
extraction, macro observation, the drop Bernoulli, and conflict
resolution all happen per cluster in the same sequence with the same
(arrival-time) clock — while *across* clusters every per-packet state
is disjoint, so interleaving is value-free.  Each flush therefore runs
in FIFO *rounds*: round ``r`` takes the ``r``-th held packet of every
cluster, and a packet's features are extracted only after its
predecessor in the same cluster has been finalized.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter

#: Scheduling priority of the flush event — below the kernel default
#: (0), so a flush at time ``t`` runs before any same-time deliveries
#: or arrivals could observe model state.
FLUSH_PRIORITY = -1


class InferenceBatcher:
    """Shared packet-holding area for all approximated clusters.

    Parameters
    ----------
    sim:
        The simulator (flush events are scheduled on it).
    window_s:
        Requested batching window; clamped to
        ``MIN_REGION_LATENCY_S`` (holding longer could not be causal).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; resolves the
        ``hybrid.batch_size`` histogram and the
        ``hybrid.scalar_fallbacks`` / ``hybrid.batch_flushes``
        counters once, here.
    tracer:
        Optional :class:`~repro.obs.trace.FlightRecorder`; each
        stacked inference round then records a ``batch.round`` event
        with its lane count and the memoization hit/miss delta of the
        engine that served it (the per-flush view of cache health).

    Attributes
    ----------
    batched_packets, batched_rounds, flushes, scalar_fallbacks:
        Plain counters (mirrored to obs when a registry is given).
        ``scalar_fallbacks`` counts engine calls that degenerated to a
        single lane — the causality fallback path.
    """

    def __init__(self, sim, window_s: float, metrics=None, tracer=None) -> None:
        from repro.core.cluster_model import MIN_REGION_LATENCY_S

        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.sim = sim
        self._tracer = tracer
        self.window_s = min(window_s, MIN_REGION_LATENCY_S)
        self._clusters: list = []  # registration order == round order
        self._lanes: dict = {}  # cluster name -> deque of (seq, arrival, packet)
        self._seq = 0
        self._flush_event = None
        self._flush = self.flush  # prebound for schedule_at
        self.batched_packets = 0
        self.batched_rounds = 0
        self.flushes = 0
        self.scalar_fallbacks = 0
        self._m_batch_size = None
        self._m_fallbacks = None
        self._m_flushes = None
        if metrics is not None and metrics.handles_enabled():
            self._m_batch_size = metrics.histogram("hybrid.batch_size")
            self._m_fallbacks = metrics.counter("hybrid.scalar_fallbacks")
            self._m_flushes = metrics.counter("hybrid.batch_flushes")

    # ------------------------------------------------------------------
    def register(self, cluster) -> None:
        """Add a cluster to the round rotation (registration order is
        the deterministic round order)."""
        self._clusters.append(cluster)
        self._lanes[cluster.name] = deque()

    # ------------------------------------------------------------------
    def enqueue(self, cluster, packet) -> None:
        """Hold one packet; arm the window flush on the first one."""
        self._lanes[cluster.name].append((self._seq, self.sim.now, packet))
        self._seq += 1
        if self._flush_event is None:
            self._flush_event = self.sim.schedule(
                self.window_s, self._flush, priority=FLUSH_PRIORITY
            )

    @property
    def pending(self) -> int:
        """Held packets not yet flushed."""
        return sum(len(lane) for lane in self._lanes.values())

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Run all held packets through stacked inference rounds.

        Safe to call at any time (early flushes only shrink batches);
        called by the armed window event, by observability probes
        before they read model state, and at end of run.
        """
        event = self._flush_event
        if event is not None:
            self._flush_event = None
            if event.pending:
                self.sim.cancel(event)
        lanes = [
            (cluster, self._lanes[cluster.name])
            for cluster in self._clusters
            if self._lanes[cluster.name]
        ]
        if not lanes:
            return
        self.flushes += 1
        if self._m_flushes is not None:
            self._m_flushes.inc()
        while lanes:
            # One round: the oldest held packet of every cluster.  The
            # per-engine groups preserve enqueue (seq) order because
            # clusters are iterated in registration order and a round
            # holds at most one packet per cluster.
            jobs = []
            for cluster, lane in lanes:
                seq, arrival, packet = lane.popleft()
                direction, bundle, features, macro_index, engine, row = (
                    cluster.batch_prepare(packet, arrival)
                )
                jobs.append(
                    (seq, arrival, packet, cluster, direction, bundle,
                     features, macro_index, engine, row)
                )
            groups: dict = {}
            for job in jobs:
                groups.setdefault(id(job[8]), []).append(job)
            for group in groups.values():
                engine = group[0][8]
                hits_before = misses_before = 0
                if self._tracer is not None:
                    hits_before = getattr(engine, "memo_hits", 0)
                    misses_before = getattr(engine, "memo_misses", 0)
                start = perf_counter()
                outcomes = engine.predict_rows(
                    [job[6] for job in group],
                    [job[7] for job in group],
                    [job[9] for job in group],
                )
                share = (perf_counter() - start) / len(group)
                self.batched_rounds += 1
                self.batched_packets += len(group)
                if len(group) == 1:
                    self.scalar_fallbacks += 1
                    if self._m_fallbacks is not None:
                        self._m_fallbacks.inc()
                if self._m_batch_size is not None:
                    self._m_batch_size.observe(float(len(group)))
                if self._tracer is not None:
                    self._tracer.event(
                        "batch.round",
                        size=len(group),
                        memo_hits=getattr(engine, "memo_hits", 0) - hits_before,
                        memo_misses=getattr(engine, "memo_misses", 0)
                        - misses_before,
                    )
                for job, outcome in zip(group, outcomes):
                    job[3].add_inference_time(share)
                    job[3].batch_finalize(
                        job[2], job[1], job[4], job[5], outcome[0], outcome[1]
                    )
            lanes = [(cluster, lane) for cluster, lane in lanes if lane]
