"""The approximated cluster: an ML black box standing in for a fabric.

Figure 3 (right): large-scale simulations replace the four switches of
each approximated cluster "with a single black box approximation".
This entity is that box.  Any port wired to a switch of the replaced
cluster delivers here instead; per packet it

1. extracts features (same stateful extractor as training),
2. steps the direction's LSTM (one hidden state per direction,
   carried across the whole simulation — the model's "memory" of the
   cluster's congestion history),
3. decides drop vs. deliver, and for deliveries schedules a single
   egress event after the predicted latency,
4. feeds its own prediction to the macro classifier so the macro-state
   feature evolves as it did during training.

Conflict resolution (Section 4.2): "predicted latency can sometimes
result in impossible schedules if two packets are scheduled for the
same time.  In this case, the one processed first is given priority,
with conflicting packet sent at the next possible time."  We keep the
last scheduled delivery per egress node and push conflicting packets
to one serialization time after it.

Everything the fabric would have done — per-hop queuing, routing,
per-packet forwarding events — is elided; this is where the paper's
event-count savings come from (counted in ``fabric_events_elided``).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional

import numpy as np

from repro.analysis.streaming import StreamingStats
from repro.core.features import Direction, RegionFeatureExtractor
from repro.core.macro import AutoRegressiveMacroClassifier
from repro.core.region import Region
from repro.core.training import TrainedClusterModel
from repro.des.entities import Entity
from repro.des.kernel import Simulator
from repro.net.packet import Packet
from repro.topology.graph import Topology
from repro.topology.routing import EcmpRouting

#: Latency floor: one hop of propagation (the shortest region traversal
#: is ToR -> server); the model can never beat physics no matter what
#: the regression head says.
MIN_REGION_LATENCY_S = 1e-6
#: Latency ceiling guard against wild extrapolation early in training.
MAX_REGION_LATENCY_S = 1.0


class _Delivery:
    """Prebound egress delivery callback.

    The hot path used to schedule ``lambda e=.., p=.., b=..: ...`` —
    one fresh closure (code object + cell-free function + 3 defaults)
    per delivered packet.  This is the same callable as a plain
    instance: three slot stores at schedule time, one bound call at
    fire time, and it shows up named in profiles instead of
    ``<lambda>``.
    """

    __slots__ = ("entity", "packet", "boundary")

    def __init__(self, entity, packet: Packet, boundary: str) -> None:
        self.entity = entity
        self.packet = packet
        self.boundary = boundary

    def __call__(self) -> None:
        self.entity.receive(self.packet, self.boundary)


class ApproximatedCluster(Entity):
    """ML approximation of one cluster's fabric.

    Parameters
    ----------
    sim:
        The simulator.
    topology, routing:
        Full-topology structures (routing features need them).
    region:
        What this box replaces — a :class:`~repro.core.region.Region`,
        or a bare cluster index as shorthand for the paper's
        one-cluster unit of approximation.
    trained:
        The model bundle produced by training.
    resolve_entity:
        Callback name -> entity used to deliver egress packets (hosts
        of this cluster and core switches); late-bound because the
        network is constructed after the models.
    rng:
        Random stream for sampling the drop Bernoulli.
    macro_bucket_s:
        Macro classifier bucket (match training for consistency).
    use_fused:
        Run the fused, allocation-free inference engine
        (:mod:`repro.nn.infer`) instead of the reference
        ``predict_step`` path.  Default on; the reference path stays
        available as the oracle and for debugging.
    inference_dtype:
        Engine precision: ``float64`` (default, matches the reference
        to <= 1e-9) or ``float32`` (opt-in speed mode — halves weight
        memory traffic at reduced precision).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`.  Instrument
        handles are resolved once here, at construction, so the per-
        packet cost is a single ``is not None`` branch when metrics
        are absent or disabled — the hot path never does a registry
        lookup.
    invariants:
        Optional :class:`~repro.validate.InvariantChecker`.  When set,
        every delivery is checked for causality, per-egress FCFS
        monotonicity, and latency bounds (one ``is not None`` branch
        per packet when absent — same contract as ``metrics``).
    tracer:
        Optional :class:`~repro.obs.trace.FlightRecorder`.  Deliveries
        record a ``model.decide`` span (arrival → delivery) and drops a
        ``model.drop`` event, both attributed to the packet's flow
        trace id; invariant findings carry the same id.  Same hot-path
        contract: one ``is not None`` branch per packet when absent.

    Attributes
    ----------
    on_outcome:
        Optional tap ``(now, latency_s_or_None, dropped) -> None``
        fired once per handled packet with the model's decision.  The
        differential fidelity harness collects the hybrid side of its
        latency/drop/macro comparisons through it; ``None`` (default)
        costs one branch per packet.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        routing: EcmpRouting,
        region: Region | int,
        trained: TrainedClusterModel,
        resolve_entity: Callable[[str], object],
        rng: np.random.Generator,
        macro_bucket_s: float = 0.001,
        use_fused: bool = True,
        inference_dtype: str | np.dtype = np.float64,
        metrics=None,
        invariants=None,
        tracer=None,
    ) -> None:
        if isinstance(region, int):
            region = Region.cluster(topology, region)
        super().__init__(sim, f"approx-{region.name}")
        self.topology = topology
        self.routing = routing
        self.region = region
        self.trained = trained
        self.resolve_entity = resolve_entity
        self.rng = rng
        self.use_fused = use_fused

        self.extractor = RegionFeatureExtractor(topology, routing, region)
        self.macro = AutoRegressiveMacroClassifier(
            trained.calibration, bucket_s=macro_bucket_s
        )
        if use_fused:
            # Compiled weights are cached on (and shared via) the
            # trained bundle; each cluster owns only its per-direction
            # hidden states and scratch.
            compiled = trained.compiled(inference_dtype)
            self._engines = {
                direction: compiled.engine(direction)
                for direction in trained.directions
            }
            self._states = None
        else:
            self._engines = None
            self._states = {
                direction: bundle.model.initial_state()
                for direction, bundle in trained.directions.items()
            }
        # Conflict resolution state: last scheduled delivery per egress node.
        self._last_delivery: dict[str, float] = {}
        self._egress_cache: dict[tuple[str, str, int, int], str] = {}
        self._boundary_cache: dict[str, str] = {}
        self._rate_cache: dict[str, float] = {}

        # Statistics.
        self.packets_handled = 0
        self.packets_dropped = 0
        self.packets_delivered = 0
        self.conflicts_resolved = 0
        self.rate_fallbacks = 0  # distinct egress nodes that needed one
        self.inference_seconds = 0.0
        self.latency_stats = StreamingStats()

        #: Per-packet outcome tap (see class docstring); resolved to a
        #: local in ``receive`` so the disabled cost is one branch.
        self.on_outcome = None
        #: Event-horizon batching (see :mod:`repro.core.batcher`):
        #: ``receive`` hands packets to the batcher instead of running
        #: inference inline.  Wired by :meth:`enable_batching`; the
        #: default costs one ``is not None`` branch per packet.
        self._batcher = None
        self._batch_engines: dict[Direction, tuple] = {}
        self._invariants = invariants
        self._tracer = tracer
        if invariants is not None:
            invariants.watch_cluster(self)

        # Observability handles (resolved once; None == disabled).
        self._m_infer = None
        self._m_latency = None
        self._m_drops = None
        self._m_conflicts = None
        self._m_rate_fallbacks = None
        if metrics is not None and metrics.handles_enabled():
            cluster = self.region.name
            self._m_infer = metrics.histogram(
                "hybrid.inference_seconds", cluster=cluster
            )
            self._m_latency = metrics.histogram(
                "hybrid.predicted_latency_s", cluster=cluster
            )
            self._m_drops = metrics.counter("hybrid.model_drops", cluster=cluster)
            self._m_conflicts = metrics.counter(
                "hybrid.conflicts_resolved", cluster=cluster
            )
            self._m_rate_fallbacks = metrics.counter(
                "hybrid.egress_rate_fallbacks", cluster=cluster
            )
            transitions = metrics.counter("hybrid.macro_transitions", cluster=cluster)
            by_edge = {}

            def on_transition(before, after, _t=transitions, _m=metrics, _b=by_edge, _c=cluster):
                _t.inc()
                edge = _b.get((before, after))
                if edge is None:
                    edge = _b[(before, after)] = _m.counter(
                        "hybrid.macro_transition",
                        cluster=_c,
                        src=before.name,
                        dst=after.name,
                    )
                edge.inc()

            self.macro.on_transition = on_transition

    # ------------------------------------------------------------------
    # Batched-inference wiring (see repro.core.batcher)
    # ------------------------------------------------------------------
    def enable_batching(self, batcher) -> None:
        """Route arriving packets through ``batcher`` instead of inline
        inference.  Requires a batch engine per trained direction (set
        via :meth:`set_batch_engine`) and the fused path."""
        if not self.use_fused:
            raise ValueError(
                f"{self.name}: batched inference requires the fused engine "
                "(use_fused=True)"
            )
        missing = [
            d for d in self.trained.directions if d not in self._batch_engines
        ]
        if missing:
            raise ValueError(f"{self.name}: no batch engine for {missing}")
        self._batcher = batcher
        batcher.register(self)

    def set_batch_engine(self, direction: Direction, engine, row: int) -> None:
        """Assign this cluster's lane in a shared batched engine."""
        self._batch_engines[direction] = (engine, row)

    def add_inference_time(self, seconds: float) -> None:
        """Attribute a share of a batched inference round to this
        cluster (same accounting the inline path does per packet)."""
        self.inference_seconds += seconds
        if self._m_infer is not None:
            self._m_infer.observe(seconds)

    def batch_prepare(self, packet: Packet, arrival: float):
        """Stage one held packet for a stacked inference round.

        Mirrors :meth:`receive` up to (and excluding) the model step —
        called by the batcher only after this cluster's previous packet
        was finalized, so the extractor clocks and macro state read
        here are exactly what the inline path would have seen.  The
        clock is the packet's *arrival* time, not the flush time.
        """
        self.packets_handled += 1
        direction = self.extractor.direction_of(packet)
        bundle = self.trained.directions.get(direction)
        if bundle is None:
            direction = next(iter(self.trained.directions))
            bundle = self.trained.directions[direction]
        features = self.extractor.extract(
            packet, arrival, self.macro.state, direction=direction
        )
        engine, row = self._batch_engines[direction]
        return direction, bundle, features, self.macro.index, engine, row

    def batch_finalize(
        self,
        packet: Packet,
        arrival: float,
        direction: Direction,
        bundle,
        drop_prob: float,
        latency_norm: float,
    ) -> None:
        """Apply one batched model outcome.

        Mirrors :meth:`receive` after the model step, with every clock
        read replaced by the packet's arrival time: the drop Bernoulli
        uses the same per-cluster stream in the same order, macro
        observations and outcome taps carry arrival timestamps, and
        conflict resolution serializes from ``arrival + latency`` —
        bit-identical bookkeeping to the inline float64 path.
        """
        now = arrival
        if self.rng.random() < drop_prob:
            self.packets_dropped += 1
            if self._m_drops is not None:
                self._m_drops.inc()
            if self._tracer is not None:
                self._tracer.event(
                    "model.drop",
                    trace=self._tracer.trace_for_packet(packet),
                    t=now,
                    cluster=self.region.name,
                )
            self.macro.observe(now, dropped=True)
            if self.on_outcome is not None:
                self.on_outcome(now, None, True)
            return

        latency = bundle.latency_from_norm(latency_norm)
        latency = min(max(latency, MIN_REGION_LATENCY_S), MAX_REGION_LATENCY_S)
        self.latency_stats.add(latency)
        if self._m_latency is not None:
            self._m_latency.observe(latency)
        self.macro.observe(now, latency_s=latency)
        if self.on_outcome is not None:
            self.on_outcome(now, latency, False)

        target = self._egress_node(packet, direction)
        boundary = self._boundary_node(target)
        deliver_at = self._resolve_conflict(target, now + latency, packet)
        entity = self.resolve_entity(target)
        self.packets_delivered += 1
        trace = None
        if self._tracer is not None:
            trace = self._tracer.packet_span(
                "model.decide", now, deliver_at, packet,
                self.region.name, target, True,
            )
        if self._invariants is not None:
            self._invariants.check_latency(self.name, now, latency, trace=trace)
            self._invariants.check_delivery(
                self.name, target, now, deliver_at, trace=trace
            )
        remote = getattr(entity, "schedule_model_delivery", None)
        if remote is None:
            self.sim.schedule_at(deliver_at, _Delivery(entity, packet, boundary))
        else:
            # PDES shard boundary: the owning worker is remote, and the
            # message must be captured now (decision time), not when a
            # local event fires — see repro.pdes.stub.RemoteEntityProxy.
            remote(deliver_at, packet, boundary)

    # ------------------------------------------------------------------
    def receive(self, packet: Packet, from_node: str) -> None:
        """Handle one packet crossing into the approximated region."""
        if self._batcher is not None:
            self._batcher.enqueue(self, packet)
            return
        self.packets_handled += 1
        now = self.now
        direction = self.extractor.direction_of(packet)
        bundle = self.trained.directions.get(direction)
        if bundle is None:
            # Direction unseen in training (possible in tiny traces):
            # fall back to the other direction's model.
            direction = next(iter(self.trained.directions))
            bundle = self.trained.directions[direction]
        features = self.extractor.extract(packet, now, self.macro.state, direction=direction)
        macro_index = self.macro.index
        if self.use_fused:
            # The engine consumes raw features (the standardizer is
            # folded into its layer-0 weights) and keeps its hidden
            # state in place.
            start = perf_counter()
            drop_prob, latency_norm = self._engines[direction].predict(
                features, macro_index=macro_index
            )
            elapsed = perf_counter() - start
        else:
            start = perf_counter()
            normalized = bundle.feature_standardizer.transform(features)
            drop_prob, latency_norm, new_state = bundle.model.predict_step(
                normalized, self._states[direction], macro_index=macro_index
            )
            elapsed = perf_counter() - start
            self._states[direction] = new_state
        self.inference_seconds += elapsed
        if self._m_infer is not None:
            self._m_infer.observe(elapsed)

        if self.rng.random() < drop_prob:
            self.packets_dropped += 1
            if self._m_drops is not None:
                self._m_drops.inc()
            if self._tracer is not None:
                self._tracer.event(
                    "model.drop",
                    trace=self._tracer.trace_for_packet(packet),
                    t=now,
                    cluster=self.region.name,
                )
            self.macro.observe(now, dropped=True)
            if self.on_outcome is not None:
                self.on_outcome(now, None, True)
            return

        latency = bundle.latency_from_norm(latency_norm)
        latency = min(max(latency, MIN_REGION_LATENCY_S), MAX_REGION_LATENCY_S)
        self.latency_stats.add(latency)
        if self._m_latency is not None:
            self._m_latency.observe(latency)
        self.macro.observe(now, latency_s=latency)
        if self.on_outcome is not None:
            self.on_outcome(now, latency, False)

        target = self._egress_node(packet, direction)
        boundary = self._boundary_node(target)
        deliver_at = self._resolve_conflict(target, now + latency, packet)
        entity = self.resolve_entity(target)
        self.packets_delivered += 1
        trace = None
        if self._tracer is not None:
            trace = self._tracer.packet_span(
                "model.decide", now, deliver_at, packet,
                self.region.name, target, False,
            )
        if self._invariants is not None:
            self._invariants.check_latency(self.name, now, latency, trace=trace)
            self._invariants.check_delivery(
                self.name, target, now, deliver_at, trace=trace
            )
        remote = getattr(entity, "schedule_model_delivery", None)
        if remote is None:
            self.sim.schedule_at(deliver_at, _Delivery(entity, packet, boundary))
        else:
            remote(deliver_at, packet, boundary)

    # ------------------------------------------------------------------
    def _egress_node(self, packet: Packet, direction: Direction) -> str:
        """Where the packet re-enters full-fidelity simulation.

        Destination inside the cluster -> its server host.  Otherwise
        -> the core switch on the packet's (deterministic) ECMP path.
        """
        if direction is Direction.INGRESS:
            return packet.dst
        key = packet.flow_tuple
        cached = self._egress_cache.get(key)
        if cached is not None:
            return cached
        path = self.routing.path(packet.src, packet.dst, packet.flow_hash())
        egress = self.region.egress_node_on_path(path)
        self._egress_cache[key] = egress
        return egress

    def _boundary_node(self, target: str) -> str:
        """The region node the packet notionally arrives *from*.

        Receivers use it only as the ``from_node`` argument; any
        adjacent region node is equivalent because forwarding is
        destination-based.
        """
        cached = self._boundary_cache.get(target)
        if cached is not None:
            return cached
        result = self.name
        for neighbor in self.topology.neighbors(target):
            if self.region.contains_switch(neighbor):
                result = neighbor
                break
        self._boundary_cache[target] = result
        return result

    def _resolve_conflict(self, target: str, deliver_at: float, packet: Packet) -> float:
        """First-come-first-served serialization of same-time egresses."""
        link_rate = self._egress_link_rate(target)
        serialization = packet.size_bytes * 8.0 / link_rate
        last = self._last_delivery.get(target)
        if last is not None and deliver_at < last + serialization:
            deliver_at = last + serialization
            self.conflicts_resolved += 1
            if self._m_conflicts is not None:
                self._m_conflicts.inc()
        self._last_delivery[target] = deliver_at
        return deliver_at

    def _egress_link_rate(self, target: str) -> float:
        """Rate of the link the packet would use to leave the region."""
        cached = self._rate_cache.get(target)
        if cached is not None:
            return cached
        rate = None
        for neighbor in self.topology.neighbors(target):
            if self.region.contains_switch(neighbor):
                rate = self.topology.link_between(target, neighbor).rate_bps
                break
        if rate is None:
            # No region-facing link at this egress node.  Fall back to
            # the slowest link actually configured at the target (the
            # bottleneck assumption) instead of a hardcoded 10G, which
            # mis-sized conflict serialization on any other topology;
            # count the hit so divergence here is observable.
            rate = min(
                (
                    self.topology.link_between(target, neighbor).rate_bps
                    for neighbor in self.topology.neighbors(target)
                ),
                default=None,
            )
            if rate is None:
                raise ValueError(
                    f"egress node {target!r} has no links; cannot size "
                    "conflict-resolution serialization"
                )
            self.rate_fallbacks += 1
            if self._m_rate_fallbacks is not None:
                self._m_rate_fallbacks.inc()
        self._rate_cache[target] = rate
        return rate
