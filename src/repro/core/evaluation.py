"""Offline evaluation of trained cluster models.

Accuracy in the paper is reported distributionally (Figure 4), which
mixes the model's error with TCP's reaction to it.  For model
development you also want the *isolated* error: given a held-out trace
of real crossings, how well does the model predict each packet's fate
when fed the true history (teacher forcing)?

:func:`evaluate_on_records` replays a crossing trace exactly as
training's dataset builder does — entries interleaved with outcomes in
time order, macro classifier fed ground truth — but instead of storing
features it *steps the trained model* and scores its predictions:

* drop head — ROC AUC and base rates (when both classes occur);
* latency head — MAE/RMSE in log-space, median absolute relative
  error in linear space, and predicted-vs-true quantiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.stats import roc_auc
from repro.core.features import Direction, RegionFeatureExtractor
from repro.core.macro import AutoRegressiveMacroClassifier
from repro.core.training import PacketCrossing, TrainedClusterModel


@dataclass
class DirectionEvaluation:
    """Per-direction prediction quality on a held-out trace."""

    samples: int
    drop_rate_true: float
    drop_rate_predicted: float
    drop_auc: Optional[float]
    latency_log_mae: float
    latency_log_rmse: float
    latency_median_relative_error: float
    latency_quantiles_true: dict[str, float] = field(default_factory=dict)
    latency_quantiles_predicted: dict[str, float] = field(default_factory=dict)


def evaluate_on_records(
    trained: TrainedClusterModel,
    records: list[PacketCrossing],
    extractor: RegionFeatureExtractor,
    macro_bucket_s: float = 0.001,
) -> dict[Direction, DirectionEvaluation]:
    """Score a trained bundle against ground-truth crossings.

    ``extractor`` must be a *fresh* extractor over the same region (its
    inter-arrival clocks are stateful; reusing the training instance
    would corrupt the gaps).
    """
    if not records:
        raise ValueError("no records to evaluate on")
    macro = AutoRegressiveMacroClassifier(trained.calibration, bucket_s=macro_bucket_s)
    states = {
        direction: bundle.model.initial_state()
        for direction, bundle in trained.directions.items()
    }
    collected: dict[Direction, dict[str, list[float]]] = {
        direction: {"p": [], "label": [], "pred_log": [], "true_log": []}
        for direction in trained.directions
    }

    events: list[tuple[float, int, str, PacketCrossing]] = []
    for record in records:
        events.append((record.entry_time, 0, "entry", record))
        if record.outcome_time is not None:
            events.append((record.outcome_time, 1, "outcome", record))
    events.sort(key=lambda e: (e[0], e[1]))

    for time, _, kind, record in events:
        if kind == "outcome":
            macro.observe(time, latency_s=record.latency_s, dropped=record.dropped)
            continue
        direction = extractor.direction_of(record.packet)
        features = extractor.extract(record.packet, time, macro.state, direction=direction)
        bundle = trained.directions.get(direction)
        if bundle is None:
            continue
        normalized = bundle.feature_standardizer.transform(features)
        drop_prob, latency_norm, states[direction] = bundle.model.predict_step(
            normalized, states[direction], macro_index=macro.state.value - 1
        )
        bucket = collected[direction]
        bucket["p"].append(drop_prob)
        bucket["label"].append(1.0 if record.dropped else 0.0)
        if not record.dropped and record.latency_s is not None:
            bucket["pred_log"].append(
                latency_norm * bundle.latency_std + bundle.latency_mean
            )
            bucket["true_log"].append(math.log(max(record.latency_s, 1e-9)))

    results: dict[Direction, DirectionEvaluation] = {}
    for direction, bucket in collected.items():
        if not bucket["p"]:
            continue
        labels = np.asarray(bucket["label"])
        probs = np.asarray(bucket["p"])
        auc: Optional[float] = None
        if 0.0 < labels.mean() < 1.0:
            auc = roc_auc(probs, labels.astype(int))
        pred_log = np.asarray(bucket["pred_log"])
        true_log = np.asarray(bucket["true_log"])
        if pred_log.size:
            log_err = pred_log - true_log
            mae = float(np.abs(log_err).mean())
            rmse = float(np.sqrt((log_err**2).mean()))
            relative = np.abs(np.exp(pred_log) - np.exp(true_log)) / np.exp(true_log)
            median_rel = float(np.median(relative))
            quantiles_true = {
                f"p{int(q * 100)}": float(np.exp(np.quantile(true_log, q)))
                for q in (0.5, 0.9, 0.99)
            }
            quantiles_pred = {
                f"p{int(q * 100)}": float(np.exp(np.quantile(pred_log, q)))
                for q in (0.5, 0.9, 0.99)
            }
        else:
            mae = rmse = median_rel = float("nan")
            quantiles_true = {}
            quantiles_pred = {}
        results[direction] = DirectionEvaluation(
            samples=len(bucket["p"]),
            drop_rate_true=float(labels.mean()),
            drop_rate_predicted=float(probs.mean()),
            drop_auc=auc,
            latency_log_mae=mae,
            latency_log_rmse=rmse,
            latency_median_relative_error=median_rel,
            latency_quantiles_true=quantiles_true,
            latency_quantiles_predicted=quantiles_pred,
        )
    if not results:
        raise ValueError("no direction produced evaluable samples")
    return results
