"""Per-packet feature extraction for the micro models.

Section 4.2 lists the features: "the origin and destination servers;
the ToR, Cluster, and Core switches that the packet would pass through
in the cluster replaced by approximation; the time since the last
packet arrived at the model; a moving average of these times; and
finally, the current macro state of the cluster" — all computable
"directly from the packet header information, simulation time, and
knowledge of routing strategy."

The extractor is *stateful* (inter-arrival clocks per direction) and
shared verbatim between trace collection and hybrid inference so the
two phases can never drift apart on feature semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from repro.core.macro import MacroState
from repro.core.region import Region
from repro.net.packet import Packet
from repro.topology.graph import NodeRole, Topology
from repro.topology.routing import EcmpRouting

#: Documented order of the feature vector produced by the extractor.
FEATURE_NAMES: tuple[str, ...] = (
    "src_cluster",
    "src_tor",
    "src_slot",
    "dst_cluster",
    "dst_tor",
    "dst_slot",
    "path_tor_in",
    "path_agg",
    "path_core",
    "path_tor_out",
    "has_core_hop",
    "gap_log_us",
    "gap_ema_log_us",
    "size_frac",
    "is_ack",
    "is_retransmission",
    "direction_ingress",
    "macro_minimal",
    "macro_increasing",
    "macro_high",
    "macro_decreasing",
)

FEATURE_COUNT = len(FEATURE_NAMES)


class Direction(Enum):
    """Which micro model handles a packet (paper trains one per
    direction because "the distribution of flows in either direction
    can differ significantly")."""

    INGRESS = "ingress"  # destination server lives inside the cluster
    EGRESS = "egress"  # destination is outside: packet exits via core


@dataclass
class _DirectionClock:
    """Inter-arrival state for one direction of one cluster."""

    last_arrival: Optional[float] = None
    gap_ema: Optional[float] = None


def _log_us(gap_s: float) -> float:
    """Compress a time gap to a well-scaled feature: log1p(microseconds)."""
    return math.log1p(max(gap_s, 0.0) * 1e6)


class RegionFeatureExtractor:
    """Feature computation for one approximated cluster.

    Parameters
    ----------
    topology:
        The *full* topology (routing knowledge of the replaced fabric
        is explicitly allowed as a model input).
    routing:
        ECMP tables over the full topology.
    region:
        The approximated region this extractor describes — a
        :class:`~repro.core.region.Region`, or a bare cluster index as
        shorthand for ``Region.cluster(topology, index)``.
    ema_alpha:
        Smoothing for the inter-arrival moving average.
    """

    def __init__(
        self,
        topology: Topology,
        routing: EcmpRouting,
        region: Region | int,
        ema_alpha: float = 0.1,
    ) -> None:
        self.topology = topology
        self.routing = routing
        if isinstance(region, int):
            region = Region.cluster(topology, region)
        self.region = region
        self.ema_alpha = ema_alpha

        servers = topology.servers()
        self._num_clusters = max(len(topology.cluster_ids()), 1)
        self._server_info: dict[str, tuple[int, int, int]] = {}
        max_tor = 1
        max_slot = 1
        for server in servers:
            tor_name = next(
                nbr
                for nbr in topology.neighbors(server.name)
                if topology.node(nbr).role is NodeRole.TOR
            )
            tor_index = topology.node(tor_name).index
            slot = server.index
            cluster_index = server.cluster if server.cluster is not None else 0
            self._server_info[server.name] = (cluster_index, tor_index, slot)
            max_tor = max(max_tor, tor_index + 1)
            max_slot = max(max_slot, slot + 1)
        self._max_tor = max_tor
        self._max_slot = max_slot
        aggs = topology.nodes_with_role(NodeRole.CLUSTER)
        self._max_agg = max((node.index + 1 for node in aggs), default=1)
        cores = topology.nodes_with_role(NodeRole.CORE)
        self._num_cores = max(len(cores), 1)
        self._clocks = {Direction.INGRESS: _DirectionClock(), Direction.EGRESS: _DirectionClock()}
        self._path_cache: dict[tuple[str, str, int, int], tuple[float, float, float, float, float]] = {}

    # ------------------------------------------------------------------
    def direction_of(self, packet: Packet) -> Direction:
        """INGRESS if the packet terminates behind this region."""
        if self.region.is_shadow_server(packet.dst):
            return Direction.INGRESS
        return Direction.EGRESS

    def _path_features(self, packet: Packet) -> tuple[float, float, float, float, float]:
        """Normalized indices of the region switches on the ECMP path.

        Returns (tor_in, agg, core, tor_out, has_core) where absent
        hops are encoded as 0 with ``has_core`` flagging core usage.
        """
        key = packet.flow_tuple
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        path = self.routing.path(packet.src, packet.dst, packet.flow_hash())
        tor_in = agg = core = tor_out = 0.0
        has_core = 0.0
        seen_tor = False
        for name in path:
            node = self.topology.node(name)
            if node.role is NodeRole.CORE:
                core = (node.index + 1) / self._num_cores
                has_core = 1.0
            elif self.region.contains_switch(name):
                if node.role is NodeRole.TOR:
                    value = (node.index + 1) / self._max_tor
                    if not seen_tor:
                        tor_in = value
                        seen_tor = True
                    else:
                        tor_out = value
                elif node.role is NodeRole.CLUSTER:
                    agg = (node.index + 1) / self._max_agg
        result = (tor_in, agg, core, tor_out, has_core)
        self._path_cache[key] = result
        return result

    def extract(
        self,
        packet: Packet,
        now: float,
        macro_state: MacroState,
        direction: Optional[Direction] = None,
    ) -> np.ndarray:
        """Compute the feature vector for a packet arriving at ``now``.

        Advances the direction's inter-arrival clock as a side effect
        (each packet *is* an arrival).  Callers that already classified
        the packet pass ``direction`` to skip the second lookup.
        """
        if direction is None:
            direction = self.direction_of(packet)
        clock = self._clocks[direction]
        if clock.last_arrival is None:
            # First arrival: 0.0 is a "no previous packet" sentinel, not
            # a real inter-arrival gap — it must not seed the moving
            # average, or the EMA starts biased low for the whole warm-up.
            gap = 0.0
        else:
            gap = now - clock.last_arrival
            if clock.gap_ema is None:
                clock.gap_ema = gap
            else:
                clock.gap_ema += self.ema_alpha * (gap - clock.gap_ema)
        clock.last_arrival = now

        src_cluster, src_tor, src_slot = self._server_info[packet.src]
        dst_cluster, dst_tor, dst_slot = self._server_info[packet.dst]
        tor_in, agg, core, tor_out, has_core = self._path_features(packet)

        features = np.empty(FEATURE_COUNT)
        features[0] = (src_cluster + 1) / self._num_clusters
        features[1] = (src_tor + 1) / self._max_tor
        features[2] = (src_slot + 1) / self._max_slot
        features[3] = (dst_cluster + 1) / self._num_clusters
        features[4] = (dst_tor + 1) / self._max_tor
        features[5] = (dst_slot + 1) / self._max_slot
        features[6] = tor_in
        features[7] = agg
        features[8] = core
        features[9] = tor_out
        features[10] = has_core
        features[11] = _log_us(gap)
        features[12] = _log_us(clock.gap_ema) if clock.gap_ema is not None else 0.0
        features[13] = packet.size_bytes / 1500.0
        features[14] = 1.0 if packet.is_ack_only() else 0.0
        features[15] = 1.0 if packet.retransmission else 0.0
        features[16] = 1.0 if direction is Direction.INGRESS else 0.0
        features[17:21] = macro_state.one_hot()
        return features
