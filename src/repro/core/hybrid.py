"""Hybrid simulation assembly: one full cluster + N-1 approximations.

Section 5: "In our prototype, a single cluster and all core switches
are implemented in full fidelity.  Approximated clusters run full TCP
stacks because it is more efficient to implement them than try to
learn the TCP state machine."  This module builds exactly that
configuration:

* the full-fidelity cluster keeps its real switches;
* every other cluster's ToR and Cluster switches are excluded from the
  network, and every port that pointed at them is rewired to that
  cluster's :class:`~repro.core.cluster_model.ApproximatedCluster`;
* all hosts everywhere are real (full TCP stacks);
* all core switches are real;
* optionally, flows whose endpoints both avoid the full-fidelity
  cluster are elided from the schedule (Section 6.2's second source of
  speedup — they "do not directly affect the measurements of the fully
  simulated cluster").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

import numpy as np

from repro.core.cluster_model import ApproximatedCluster
from repro.core.region import Region
from repro.core.training import TrainedClusterModel

#: Key under which the rest-of-network model appears in
#: :attr:`HybridSimulation.models` when single-black-box mode is on.
BLACK_BOX_KEY = -1
from repro.des.kernel import Simulator
from repro.net.network import Network, NetworkConfig
from repro.topology.graph import NodeRole, Topology
from repro.net.failures import FailureInjector
from repro.topology.routing import EcmpRouting, make_routing


class ShardableHybrid:
    """Ownership seam between :class:`HybridSimulation` and PDES shards.

    A hybrid world is assembled against one of these: it answers *which
    nodes this process owns* and *how to reach the rest*.  The default
    instance owns everything, so the single-process hybrid is exactly a
    one-worker shard — :mod:`repro.pdes.hybrid_shard` builds the same
    :class:`HybridSimulation`, just with a partial ownership set, stub
    receivers for remote ports, and decision-time proxies for remote
    model egress.

    Parameters
    ----------
    owned_nodes:
        Node names this shard owns, or ``None`` to own the whole
        topology.  Approximated clusters must be atomic: a cluster's
        fabric names and hosts all owned or all remote (the model's
        recurrent state cannot be split).
    remote_receiver:
        ``name -> receiver`` factory for ports whose peer is remote
        (a :class:`~repro.pdes.stub.RemoteStub` in the PDES worker).
    remote_entity:
        ``name -> entity`` factory for model egress targets that are
        remote (a :class:`~repro.pdes.stub.RemoteEntityProxy`).
    """

    def __init__(
        self,
        owned_nodes=None,
        remote_receiver=None,
        remote_entity=None,
    ) -> None:
        self.owned_nodes = (
            frozenset(owned_nodes) if owned_nodes is not None else None
        )
        self._remote_receiver = remote_receiver
        self._remote_entity = remote_entity

    @property
    def is_sharded(self) -> bool:
        """True when this shard owns only part of the topology."""
        return self.owned_nodes is not None

    def owns(self, name: str) -> bool:
        """Does this shard own ``name``?"""
        return self.owned_nodes is None or name in self.owned_nodes

    def remote_receiver(self, name: str):
        """Receiver standing in for the remote node ``name``."""
        if self._remote_receiver is None:
            raise ValueError(
                f"node {name!r} is not owned by this shard and no "
                "remote_receiver factory was provided"
            )
        return self._remote_receiver(name)

    def remote_entity(self, name: str):
        """Egress target standing in for the remote node ``name``."""
        if self._remote_entity is None:
            raise ValueError(
                f"model egress target {name!r} is not owned by this shard "
                "and no remote_entity factory was provided"
            )
        return self._remote_entity(name)


@dataclass(frozen=True)
class HybridConfig:
    """Options of a hybrid assembly.

    Attributes
    ----------
    full_cluster:
        Index of the cluster kept at full fidelity (the observation
        region; data center symmetry makes the choice arbitrary).
    elide_remote_traffic:
        Skip flows between two approximated clusters entirely.
    macro_bucket_s:
        Macro classifier bucket for the runtime classifiers.
    single_black_box:
        Section 7's limit case: instead of one model per approximated
        cluster, replace *everything* outside the full cluster — core
        layer included — with one rest-of-network model.  The trained
        bundle should then come from a rest-of-network trace
        (``Region.rest_of_network``), not a single-cluster trace.
    use_fused_inference:
        Run approximated clusters on the fused, allocation-free
        inference engine (:mod:`repro.nn.infer`).  Default on; off
        falls back to the reference ``predict_step`` oracle path.
    inference_dtype:
        Engine precision — ``"float64"`` (default, reference-exact to
        <= 1e-9) or ``"float32"`` (opt-in speed mode).
    batch_window_s:
        Event-horizon inference batching window (see
        :mod:`repro.core.batcher`): packets arriving at any
        approximated cluster within the window are flushed as one
        stacked GEMM round.  Clamped to the causality bound
        (``MIN_REGION_LATENCY_S``); ``0`` (default) disables batching.
        Requires ``use_fused_inference``.
    memoize_inference:
        Steady-state memoization on the batched engines (see
        :class:`~repro.nn.batch.MemoConfig`): repeated
        (features, hidden state, macro) transitions replay from a
        cache instead of running the model.  Only takes effect with a
        positive ``batch_window_s``.
    memo_exact:
        Require exact array equality on cache hits (default): memoized
        runs stay bit-identical to unmemoized ones.  Off allows
        quantized-key hits — much higher hit rates under near-periodic
        traffic, gated by ``repro validate`` instead of exactness.
    memo_feature_decimals, memo_state_decimals:
        Quantization (decimal places) of the cache keys.
    memo_max_entries:
        FIFO capacity of each engine's cache.
    """

    full_cluster: int = 0
    elide_remote_traffic: bool = True
    macro_bucket_s: float = 0.001
    single_black_box: bool = False
    use_fused_inference: bool = True
    inference_dtype: str = "float64"
    batch_window_s: float = 0.0
    memoize_inference: bool = False
    memo_exact: bool = True
    memo_feature_decimals: int = 6
    memo_state_decimals: int = 4
    memo_max_entries: int = 8192


class HybridSimulation:
    """A network where most cluster fabrics are ML models.

    Parameters
    ----------
    sim:
        Simulator to build into.
    topology:
        The full Clos topology (all clusters, as if fully simulated).
    trained:
        The reusable cluster model (trained on a small topology) — the
        paper's configuration, where data center symmetry lets one
        model stand in for every cluster.  Alternatively a mapping
        ``cluster index -> model`` assigns independently trained models
        per cluster (the Section 7 "trained independently" question);
        it must cover every approximated cluster.
    net_config:
        Queue/TCP parameters — should match what training used.
    config:
        Hybrid options.
    invariants:
        Optional :class:`~repro.validate.InvariantChecker`; handed to
        every approximated cluster so model deliveries are checked for
        causality, FCFS monotonicity, and latency bounds.  (Attach it
        to the kernel separately via ``attach_simulator`` to also
        observe scheduling calls.)
    tracer:
        Optional :class:`~repro.obs.trace.FlightRecorder`; handed to
        every approximated cluster (``model.decide``/``model.drop``
        records) and to the inference batcher (``batch.round``).  Wire
        the same recorder into the traffic generator to get end-to-end
        flow timelines.

    Attributes
    ----------
    network:
        The underlying :class:`~repro.net.network.Network` with
        approximated fabrics excluded.
    models:
        cluster index -> :class:`ApproximatedCluster`.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        trained: Union[TrainedClusterModel, Mapping[int, TrainedClusterModel]],
        net_config: Optional[NetworkConfig] = None,
        config: Optional[HybridConfig] = None,
        metrics=None,
        invariants=None,
        shard: Optional[ShardableHybrid] = None,
        tracer=None,
        routing_config=None,
        failures=(),
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.trained = trained
        self.config = config or HybridConfig()
        #: Optional :class:`~repro.obs.trace.FlightRecorder` shared by
        #: the models and the batcher (same handle contract as metrics).
        self.tracer = tracer
        #: Ownership seam (see :class:`ShardableHybrid`); the default
        #: owns everything — the single-process path *is* the 1-worker
        #: shard.
        self.shard = shard or ShardableHybrid()
        #: Optional :class:`~repro.obs.MetricsRegistry`; handed to every
        #: approximated cluster (per-packet instrument handles resolve
        #: there, at construction) and installed on the kernel so the
        #: event loop is span-profiled under the same registry.
        self.metrics = metrics
        if metrics is not None:
            sim.metrics = metrics
        net_config = net_config or NetworkConfig()

        cluster_ids = topology.cluster_ids()
        if self.config.full_cluster not in cluster_ids:
            raise ValueError(
                f"full_cluster={self.config.full_cluster} not in topology clusters {cluster_ids}"
            )
        self.full_cluster = self.config.full_cluster
        self.approx_clusters = [c for c in cluster_ids if c != self.full_cluster]

        routing = make_routing(topology, routing_config)
        self.models: dict[int, ApproximatedCluster] = {}
        overrides: dict[str, ApproximatedCluster] = {}
        excluded: set[str] = set()
        per_cluster_models = isinstance(trained, Mapping)
        if self.config.single_black_box:
            if self.shard.is_sharded:
                raise ValueError(
                    "single_black_box mode cannot be sharded: the one "
                    "rest-of-network model has nowhere to split"
                )
            if per_cluster_models:
                raise ValueError(
                    "single_black_box mode takes one rest-of-network model, "
                    "not a per-cluster mapping"
                )
            region = Region.rest_of_network(topology, self.full_cluster)
            model = ApproximatedCluster(
                sim=sim,
                topology=topology,
                routing=routing,
                region=region,
                trained=trained,
                resolve_entity=self._resolve_entity,
                rng=sim.rng.stream("approx-blackbox.drops"),
                macro_bucket_s=self.config.macro_bucket_s,
                use_fused=self.config.use_fused_inference,
                inference_dtype=self.config.inference_dtype,
                metrics=metrics,
                invariants=invariants,
                tracer=tracer,
            )
            self.models[BLACK_BOX_KEY] = model
            for name in region.switches:
                excluded.add(name)
                overrides[name] = model
        else:
            if per_cluster_models:
                missing = [c for c in self.approx_clusters if c not in trained]
                if missing:
                    raise ValueError(
                        f"per-cluster model mapping is missing clusters {missing}"
                    )
            for cluster in self.approx_clusters:
                fabric = [
                    node.name
                    for node in topology.cluster_nodes(cluster)
                    if node.role in (NodeRole.TOR, NodeRole.CLUSTER)
                ]
                # Cluster atomicity: the shard owns all of a cluster's
                # fabric names or none of them (the model's recurrent
                # state lives in exactly one worker).
                owned_fabric = [name for name in fabric if self.shard.owns(name)]
                if owned_fabric and len(owned_fabric) != len(fabric):
                    raise ValueError(
                        f"shard splits approximated cluster {cluster}: owns "
                        f"{sorted(owned_fabric)} but not the rest of {sorted(fabric)}"
                    )
                if not owned_fabric:
                    # Remote cluster: its model lives in another worker;
                    # any local port pointing at its fabric gets a
                    # remote receiver (the worker's stub).
                    excluded.update(fabric)
                    continue
                model = ApproximatedCluster(
                    sim=sim,
                    topology=topology,
                    routing=routing,
                    region=cluster,
                    trained=trained[cluster] if per_cluster_models else trained,
                    resolve_entity=self._resolve_entity,
                    rng=sim.rng.stream(f"approx-cluster-{cluster}.drops"),
                    macro_bucket_s=self.config.macro_bucket_s,
                    use_fused=self.config.use_fused_inference,
                    inference_dtype=self.config.inference_dtype,
                    metrics=metrics,
                    invariants=invariants,
                    tracer=tracer,
                )
                self.models[cluster] = model
                for name in fabric:
                    excluded.add(name)
                    overrides[name] = model

        if self.shard.is_sharded:
            # Exclude every remote real node, then wire the ports of
            # owned nodes that point across the shard boundary to the
            # shard's remote receivers (stubs that re-add link delay).
            for node in topology.nodes:
                if not self.shard.owns(node.name):
                    excluded.add(node.name)
            for link in topology.links:
                for owner, peer in ((link.a, link.b), (link.b, link.a)):
                    if owner in excluded:
                        continue
                    if peer in excluded and peer not in overrides:
                        overrides[peer] = self.shard.remote_receiver(peer)

        self.network = Network(
            sim,
            topology,
            config=net_config,
            routing=routing,
            excluded_nodes=excluded,
            receiver_overrides=overrides,
        )
        #: Deterministic link failure/recovery schedule (no-op when the
        #: experiment declares none).  Table rebuilds cover the whole
        #: routing object, so model path features and the fluid tier
        #: see failures too.
        self.failure_injector = FailureInjector(sim, routing, failures, tracer=tracer)
        if invariants is not None:
            invariants.watch_network(self.network)
        self._cluster_of = {
            node.name: node.cluster for node in topology.servers()
        }

        #: The shared :class:`~repro.core.batcher.InferenceBatcher`
        #: (``None`` when ``batch_window_s == 0``).
        self.batcher = None
        self._batch_engines: list = []
        if self.config.batch_window_s > 0:
            self._enable_batching(metrics)

    # ------------------------------------------------------------------
    def _enable_batching(self, metrics) -> None:
        """Wire every approximated cluster into one shared batcher.

        Clusters sharing a compiled direction model (the paper's
        reusable-model configuration — and the common case) become
        lanes of one :class:`~repro.nn.batch.BatchedFusedEngine`, so a
        flush round advances all of them with a single stacked GEMM.
        Independently trained per-cluster models simply form more
        groups with fewer lanes each.
        """
        from repro.core.batcher import InferenceBatcher
        from repro.nn.batch import MemoConfig, make_batched_engine

        config = self.config
        if not config.use_fused_inference:
            raise ValueError(
                "batch_window_s requires use_fused_inference=True "
                "(the reference predict_step path has no batched form)"
            )
        memo = None
        if config.memoize_inference:
            memo = MemoConfig(
                feature_decimals=config.memo_feature_decimals,
                state_decimals=config.memo_state_decimals,
                max_entries=config.memo_max_entries,
                exact=config.memo_exact,
            )
        # Group (cluster, direction) pairs by compiled weight identity.
        # Iteration over self.models is insertion-ordered, making lane
        # assignment (and therefore the whole run) deterministic.
        groups: dict[int, list] = {}
        for model in self.models.values():
            compiled = model.trained.compiled(config.inference_dtype)
            for direction, compiled_dir in compiled.directions.items():
                groups.setdefault(id(compiled_dir), []).append(
                    (model, direction, compiled_dir)
                )
        self._batch_engines = []
        for members in groups.values():
            compiled_dir = members[0][2]
            direction = members[0][1]
            engine = make_batched_engine(
                compiled_dir,
                n_lanes=len(members),
                memo=memo,
                metrics=metrics,
                direction_label=direction.name.lower(),
            )
            self._batch_engines.append(engine)
            for row, (model, member_direction, _) in enumerate(members):
                model.set_batch_engine(member_direction, engine, row)
        self.batcher = InferenceBatcher(
            self.sim, config.batch_window_s, metrics=metrics, tracer=self.tracer
        )
        for model in self.models.values():
            model.enable_batching(self.batcher)

    def flush_inference(self) -> None:
        """Flush any held packets (no-op without batching).

        Must run before anything reads model state — end of run,
        observability sampling, conservation checks.
        """
        if self.batcher is not None:
            self.batcher.flush()

    # ------------------------------------------------------------------
    def _resolve_entity(self, name: str) -> object:
        """Late-bound entity lookup for model egress deliveries.

        Local hosts and switches resolve directly; anything else is a
        remote egress target and resolves through the shard seam (a
        decision-time proxy in PDES workers; an error in the default
        full-ownership shard, where every target must be local).
        """
        host = self.network.hosts.get(name)
        if host is not None:
            return host
        switch = self.network.switches.get(name)
        if switch is not None:
            return switch
        return self.shard.remote_entity(name)

    # ------------------------------------------------------------------
    def flow_filter(self, src: str, dst: str) -> bool:
        """Keep a flow iff it touches the full-fidelity cluster.

        With ``elide_remote_traffic`` disabled, everything is kept
        (approximated clusters then also carry background traffic).
        """
        if not self.config.elide_remote_traffic:
            return True
        return (
            self._cluster_of[src] == self.full_cluster
            or self._cluster_of[dst] == self.full_cluster
        )

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def model_packets_handled(self) -> int:
        """Packets processed by all approximated clusters."""
        return sum(m.packets_handled for m in self.models.values())

    def model_drops(self) -> int:
        """Packets dropped by model decisions."""
        return sum(m.packets_dropped for m in self.models.values())

    def inference_seconds(self) -> float:
        """Wall-clock spent inside model inference, all clusters."""
        return sum(m.inference_seconds for m in self.models.values())

    def hot_path_counters(self, wallclock_s: Optional[float] = None) -> dict[str, float]:
        """Hot-path health snapshot for the approximated clusters.

        Parameters
        ----------
        wallclock_s:
            Total run wall-clock; when given, the share of it spent in
            inference and the packet throughput are included.  Every
            ratio is guarded against zero packets / zero wall-clock
            (degenerate but reachable: an empty workload, a crashed
            attempt) so manifests never carry ``inf``/``NaN`` — both
            are invalid JSON.
        """
        packets = self.model_packets_handled()
        inference = self.inference_seconds()
        counters = {
            "model_packets": float(packets),
            "model_drops": float(self.model_drops()),
            "inference_seconds": inference,
            "inference_seconds_per_packet": inference / packets if packets else 0.0,
        }
        # Batching/memoization health — stable schema: the keys are
        # present (zeroed) even when batching is off, so manifests and
        # sweeps can always compare them across configurations.
        batcher = self.batcher
        memo_hits = memo_misses = 0
        if batcher is not None:
            for engine in self._batch_engines:
                memo_hits += engine.memo_hits
                memo_misses += engine.memo_misses
        memo_total = memo_hits + memo_misses
        counters["batched_rounds"] = float(batcher.batched_rounds) if batcher else 0.0
        counters["batched_packets"] = (
            float(batcher.batched_packets) if batcher else 0.0
        )
        counters["batch_flushes"] = float(batcher.flushes) if batcher else 0.0
        counters["scalar_fallbacks"] = (
            float(batcher.scalar_fallbacks) if batcher else 0.0
        )
        counters["memo_hits"] = float(memo_hits)
        counters["memo_misses"] = float(memo_misses)
        counters["memo_hit_rate"] = memo_hits / memo_total if memo_total else 0.0
        if wallclock_s is not None:
            positive = wallclock_s > 0
            counters["inference_share"] = inference / wallclock_s if positive else 0.0
            counters["model_packets_per_sec"] = packets / wallclock_s if positive else 0.0
        return counters

    def observed_rtt_samples(self) -> list[float]:
        """RTTs observed by the full-fidelity cluster's hosts.

        The paper draws its accuracy comparison (Figure 4) from the
        fully simulated region.  A PDES shard that owns none of the
        full cluster's hosts has no monitor and reports no samples.
        """
        monitor = self.network.rtt_monitors.get(self.full_cluster)
        if monitor is None:
            return []
        return monitor.values.tolist()
