"""The macro model: a four-state auto-regressive congestion classifier.

Section 4.1 of the paper identifies four macro states in cluster
latency/drop data and classifies them with "a simple and fast
auto-regressive model": based on previously observed latency and drop
rates, low latency means state (1) minimal congestion; high drops mean
the high-congestion regime; otherwise states (2) increasing and (4)
decreasing congestion are distinguished by whether latency and drops
are rising or falling relative to the recent past.

(The paper's text assigns the "drops are relatively high" rule to
state (4); given the state definitions — (3) is "high congestion,
where a significant number of packets are being dropped due to full
queues" — that is a typo, and we map high drops to state (3).  The
discrepancy only relabels one state; the classifier structure is
unchanged.)

The classifier is *auto-regressive* in the simple sense the paper
means: its inputs are exponential moving averages of its own past
observations, and the rising/falling decision compares the current
EMA against its previous value (a first-order AR comparison).  The
same object serves training (fed ground-truth observations) and hybrid
simulation (fed the micro model's own predictions).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Callable, Iterable, Optional

import numpy as np


class MacroState(IntEnum):
    """The four congestion regimes of Section 4.1."""

    MINIMAL = 1
    INCREASING = 2
    HIGH = 3
    DECREASING = 4

    def one_hot(self) -> np.ndarray:
        """4-vector encoding used as a micro-model feature."""
        vec = np.zeros(4)
        vec[self.value - 1] = 1.0
        return vec


@dataclass(frozen=True)
class MacroCalibration:
    """Thresholds learned from a training trace.

    Attributes
    ----------
    latency_low_s:
        Below this EMA latency the cluster is in MINIMAL congestion.
    drop_rate_high:
        Above this EMA drop fraction the cluster is in HIGH congestion.
    """

    latency_low_s: float
    drop_rate_high: float

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Serialization helper."""
        return {
            "latency_low_s": np.asarray(self.latency_low_s),
            "drop_rate_high": np.asarray(self.drop_rate_high),
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "MacroCalibration":
        """Inverse of :meth:`as_arrays`."""
        return cls(
            latency_low_s=float(arrays["latency_low_s"]),
            drop_rate_high=float(arrays["drop_rate_high"]),
        )


def calibrate_macro(
    latencies_s: Iterable[float],
    drop_flags: Iterable[int],
    latency_quantile: float = 0.25,
    drop_scale: float = 2.0,
) -> MacroCalibration:
    """Derive thresholds from a ground-truth region trace.

    ``latency_low_s`` is the given quantile of observed latencies
    (periods calmer than the lower quartile count as minimal
    congestion); ``drop_rate_high`` is ``drop_scale`` times the mean
    drop rate, floored at 0.5% so noise-free traces don't make every
    stray drop scream HIGH.
    """
    latencies = np.asarray(list(latencies_s), dtype=np.float64)
    drops = np.asarray(list(drop_flags), dtype=np.float64)
    if latencies.size == 0:
        raise ValueError("cannot calibrate on an empty latency trace")
    latency_low = float(np.quantile(latencies, latency_quantile))
    drop_high = max(float(drops.mean()) * drop_scale, 0.005) if drops.size else 0.005
    return MacroCalibration(latency_low_s=latency_low, drop_rate_high=drop_high)


class AutoRegressiveMacroClassifier:
    """Streaming four-state classifier over per-packet observations.

    Parameters
    ----------
    calibration:
        Thresholds (see :func:`calibrate_macro`).
    bucket_s:
        State is re-evaluated once per bucket of simulated time —
        the "seconds scale" of the paper's two-timescale analysis,
        scaled down with our shorter simulations.
    ema_alpha:
        Smoothing factor for the latency/drop EMAs.

    Attributes
    ----------
    on_transition:
        Optional hook ``(previous, new) -> None`` fired whenever a
        bucket re-classification lands on a *different* state.  The
        observability layer counts regime transitions through it;
        ``None`` (default) costs one comparison per bucket, nothing
        per packet.
    """

    def __init__(
        self,
        calibration: MacroCalibration,
        bucket_s: float = 0.001,
        ema_alpha: float = 0.2,
    ) -> None:
        if bucket_s <= 0:
            raise ValueError(f"bucket_s must be positive, got {bucket_s}")
        if not 0 < ema_alpha <= 1:
            raise ValueError(f"ema_alpha must be in (0, 1], got {ema_alpha}")
        self.calibration = calibration
        self.bucket_s = bucket_s
        self.ema_alpha = ema_alpha
        self.state = MacroState.MINIMAL
        #: ``state.value - 1`` maintained alongside ``state``: the
        #: micro-model head index for the current regime.  The hybrid
        #: hot path reads it per packet (and the batcher per batch
        #: row), so it is stored rather than recomputed from the enum.
        self.index = self.state.value - 1
        self.on_transition: Optional[
            "Callable[[MacroState, MacroState], None]"
        ] = None
        self._latency_ema: Optional[float] = None
        self._prev_latency_ema: Optional[float] = None
        self._drop_ema = 0.0
        self._bucket_index: Optional[int] = None
        self._bucket_has_obs = False

    #: Idle buckets are stepped one by one (decay + reclassify) up to
    #: this many; a longer gap zeroes the EMAs directly, so arbitrarily
    #: long idle periods cost O(_MAX_IDLE_STEPS), not O(gap).
    _MAX_IDLE_STEPS = 64

    def observe(self, now: float, latency_s: Optional[float] = None, dropped: bool = False) -> None:
        """Feed one packet outcome (a latency, a drop, or both).

        In training this receives ground truth; during hybrid
        simulation it receives the micro model's own predictions, so
        the macro state reflects what the approximation is doing.
        """
        self.advance(now)
        a = self.ema_alpha
        if latency_s is not None:
            if self._latency_ema is None:
                self._latency_ema = latency_s
            else:
                self._latency_ema += a * (latency_s - self._latency_ema)
        self._drop_ema += a * ((1.0 if dropped else 0.0) - self._drop_ema)
        self._bucket_has_obs = True

    def advance(self, now: float) -> None:
        """Step the bucket clock to ``now`` without an observation.

        Every elapsed bucket gets its own reclassification, and every
        *idle* bucket (one that closed with no packets) decays both
        EMAs by ``(1 - ema_alpha)`` — the drop burst a cluster saw
        before going quiet must not keep it pinned in HIGH forever.
        The loop is bounded by :attr:`_MAX_IDLE_STEPS`; gaps beyond it
        zero the EMAs directly (the decayed value would underflow any
        calibrated threshold anyway), so a long idle period is O(1).

        ``observe`` calls this on every packet; the fidelity harness
        calls it directly to sample per-bucket state timelines.
        """
        bucket = int(now / self.bucket_s)
        if self._bucket_index is None:
            self._bucket_index = bucket
            return
        elapsed = bucket - self._bucket_index
        if elapsed <= 0:
            return
        decay = 1.0 - self.ema_alpha
        # Close the current bucket: if it saw no packets it is itself an
        # idle bucket and must decay — stepping one bucket at a time has
        # to match one big jump over the same span.
        if not self._bucket_has_obs:
            self._drop_ema *= decay
            if self._latency_ema is not None:
                self._latency_ema *= decay
        self._reclassify()
        self._bucket_has_obs = False
        idle = elapsed - 1
        if idle > self._MAX_IDLE_STEPS:
            self._drop_ema = 0.0
            if self._latency_ema is not None:
                self._latency_ema = 0.0
            idle = 1  # one more reclassification lands the final state
        for _ in range(idle):
            self._drop_ema *= decay
            if self._latency_ema is not None:
                self._latency_ema *= decay
            self._reclassify()
        self._bucket_index = bucket

    def _reclassify(self) -> None:
        latency = self._latency_ema
        before = self.state
        if latency is None:
            self.state = MacroState.MINIMAL
        else:
            previous = (
                self._prev_latency_ema if self._prev_latency_ema is not None else latency
            )
            self._prev_latency_ema = latency
            if self._drop_ema >= self.calibration.drop_rate_high:
                self.state = MacroState.HIGH
            elif latency <= self.calibration.latency_low_s:
                self.state = MacroState.MINIMAL
            elif latency >= previous:
                self.state = MacroState.INCREASING
            else:
                self.state = MacroState.DECREASING
        self.index = self.state.value - 1
        if self.state is not before and self.on_transition is not None:
            self.on_transition(before, self.state)

    @property
    def latency_ema(self) -> Optional[float]:
        """Current latency EMA (None before any latency observation)."""
        return self._latency_ema

    @property
    def drop_ema(self) -> float:
        """Current drop-rate EMA."""
        return self._drop_ema
