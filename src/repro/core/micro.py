"""The micro model: a two-layer LSTM with drop and latency heads.

Section 4.2: the LSTM's "multi-dimensional hidden state output ... is
given to one fully connected layer to predict the latency and another
fully connected layer to predict packet drop.  This is superior to
training two separate models as the neural network representation can
learn the joint distribution of drops and latency."  The paper's
prototype "uses a two-layer LSTM with 128 hidden nodes"; those are the
defaults here.

Latency is regressed in standardized log-space: region latencies span
from a few microseconds (empty cut-through) to milliseconds (deep
queues + retransmission pressure), and a linear-space MSE would let the
tail dominate.  The transform lives with the model (in
:class:`~repro.core.training.TrainedClusterModel`) so inference
inverts it consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.gru import GRU
from repro.nn.linear import Linear
from repro.nn.selective import SelectiveLinear
from repro.nn.lstm import LSTM, LSTMState
from repro.nn.module import Module
from repro.core.features import FEATURE_COUNT


@dataclass(frozen=True)
class MicroModelConfig:
    """Architecture and training hyper-parameters.

    Defaults follow Section 4.2 exactly where the paper specifies them:
    two LSTM layers, 128 hidden nodes, SGD with learning rate 1e-4 and
    momentum 0.9, batch size 64, and the joint loss weight
    ``0 < alpha <= 1``.  ``train_batches`` is the scaled-down knob: the
    paper trains ">50,000 batches" on a Tesla P100; numpy on CPU is
    ~50x slower per step, so defaults are modest and experiments can
    raise it.
    """

    input_size: int = FEATURE_COUNT
    hidden_size: int = 128
    num_layers: int = 2
    cell: str = "lstm"
    heads: str = "shared"
    alpha: float = 0.5
    learning_rate: float = 1e-4
    momentum: float = 0.9
    batch_size: int = 64
    window: int = 32
    train_batches: int = 400
    grad_clip: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_size < 1 or self.num_layers < 1:
            raise ValueError("hidden_size and num_layers must be >= 1")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.window < 1 or self.batch_size < 1 or self.train_batches < 0:
            raise ValueError("window, batch_size must be >= 1; train_batches >= 0")
        if self.cell not in ("lstm", "gru"):
            raise ValueError(f"cell must be 'lstm' or 'gru', got {self.cell!r}")
        if self.heads not in ("shared", "per_macro"):
            raise ValueError(
                f"heads must be 'shared' or 'per_macro', got {self.heads!r}"
            )


class MicroModel(Module):
    """Recurrent trunk (LSTM by default, GRU optional — the Section 7
    variant) with fully connected drop and latency heads."""

    def __init__(self, config: MicroModelConfig, rng: np.random.Generator) -> None:
        self.config = config
        trunk_type = LSTM if config.cell == "lstm" else GRU
        self.lstm = trunk_type(
            config.input_size, config.hidden_size, config.num_layers, rng, name="trunk"
        )
        if config.heads == "per_macro":
            # Hierarchical coupling (Section 7): one head per macro
            # congestion state, hard-routed by the macro classifier.
            self.drop_head = SelectiveLinear(
                config.hidden_size, 4, rng, name="drop_head"
            )
            self.latency_head = SelectiveLinear(
                config.hidden_size, 4, rng, name="latency_head"
            )
        else:
            self.drop_head = Linear(config.hidden_size, 1, rng, name="drop_head")
            self.latency_head = Linear(config.hidden_size, 1, rng, name="latency_head")

    # ------------------------------------------------------------------
    # Training path (batched sequences)
    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, macro_index: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run a window batch ``(T, B, F)``.

        ``macro_index`` (ints, ``(T, B)``) routes the per-macro heads
        and is required when ``config.heads == "per_macro"``.  Returns
        ``(drop_logits, latency_norm)`` both shaped ``(T, B)``.  Caches
        activations for :meth:`backward`.
        """
        hidden, _ = self.lstm.forward(x)
        if self.config.heads == "per_macro":
            if macro_index is None:
                raise ValueError("per_macro heads require macro_index")
            drop_logits = self.drop_head.forward(hidden, macro_index)
            latency = self.latency_head.forward(hidden, macro_index)
        else:
            drop_logits = self.drop_head.forward(hidden)[..., 0]
            latency = self.latency_head.forward(hidden)[..., 0]
        return drop_logits, latency

    def backward(self, grad_drop: np.ndarray, grad_latency: np.ndarray) -> None:
        """Backprop both heads into the LSTM trunk (full BPTT).

        ``grad_drop``/``grad_latency`` are dL/d(output), shape (T, B).
        """
        if self.config.heads == "per_macro":
            grad_hidden = self.drop_head.backward(grad_drop)
            grad_hidden = grad_hidden + self.latency_head.backward(grad_latency)
        else:
            grad_hidden = self.drop_head.backward(grad_drop[..., None])
            grad_hidden = grad_hidden + self.latency_head.backward(
                grad_latency[..., None]
            )
        self.lstm.backward(grad_hidden)

    # ------------------------------------------------------------------
    # Inference path (one packet at a time, stateful)
    # ------------------------------------------------------------------
    def initial_state(self) -> LSTMState:
        """Fresh hidden state for a batch-of-one packet stream."""
        return self.lstm.initial_state(batch_size=1)

    def predict_step(
        self, features: np.ndarray, state: LSTMState, macro_index: int = 0
    ) -> tuple[float, float, LSTMState]:
        """Predict one packet: returns (drop_probability, latency_norm, state).

        ``features`` is a flat standardized vector.  "The model
        prediction is relatively fast since prediction only involves a
        few matrix multiplications and non-linear transformations"
        (Section 4.2) — this is that code path.
        """
        x = features.reshape(1, -1)
        hidden, new_state = self.lstm.step(x, state)
        if self.config.heads == "per_macro":
            logit = self.drop_head.forward_single(hidden[0], macro_index)
            latency_norm = self.latency_head.forward_single(hidden[0], macro_index)
        else:
            logit = float(self.drop_head.forward_inference(hidden)[0, 0])
            latency_norm = float(self.latency_head.forward_inference(hidden)[0, 0])
        drop_prob = 1.0 / (1.0 + np.exp(-logit)) if logit > -500 else 0.0
        return drop_prob, latency_norm, new_state
