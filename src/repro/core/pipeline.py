"""End-to-end experiment pipeline (the workflow of Figure 3).

Stage 1 — :func:`run_full_simulation`: full packet-level fidelity,
optionally recording one cluster's boundary crossings.

Stage 2 — :func:`train_reusable_model`: briefly simulate a small
(default two-cluster) network, train the ingress/egress micro models
on the recorded crossings.

Stage 3 — :func:`run_hybrid_simulation`: assemble a (typically larger)
topology with all but one cluster approximated and run the same
workload family.

The result objects carry the measurements every benchmark needs:
wall-clock seconds of event processing (the kernel excludes setup),
executed event counts, RTT samples from the observed cluster, FCTs,
and drop totals.
"""

from __future__ import annotations

import json
import time as _wallclock
from dataclasses import dataclass, field
from typing import Optional

from repro.core.features import RegionFeatureExtractor
from repro.core.hybrid import HybridConfig, HybridSimulation
from repro.core.region import Region
from repro.core.micro import MicroModelConfig
from repro.core.training import (
    PacketCrossing,
    RegionTraceCollector,
    TrainedClusterModel,
    train_cluster_model,
)
from repro.des.kernel import Simulator
from repro.net.failures import FailureInjector, LinkFailure, normalize_failures
from repro.net.network import Network, NetworkConfig
from repro.topology.clos import ClosParams, build_clos
from repro.topology.routing import EcmpRouting, RoutingConfig, make_routing
from repro.traffic.apps import TrafficGenerator
from repro.traffic.collectives import CollectiveConfig, CollectiveWorkload
from repro.traffic.arrivals import PoissonArrivals, arrival_rate_for_load
from repro.traffic.distributions import EmpiricalSizeDistribution, web_search_sizes
from repro.traffic.matrix import IncastMatrix, PermutationMatrix, TrafficMatrix, UniformMatrix


@dataclass(frozen=True)
class ExperimentConfig:
    """Workload and topology parameters shared by all pipeline stages.

    Attributes
    ----------
    clos:
        Topology shape (the evaluation's clusters have four switches
        and eight servers — :class:`ClosParams` defaults).
    load:
        Offered load as a fraction of server access capacity.
    duration_s:
        Simulated time window.
    seed:
        Master seed (workload and simulation randomness).
    net:
        Queue and TCP parameters.
    intra_cluster_fraction:
        Optional locality bias of the traffic matrix.
    matrix:
        Endpoint-selection policy: "uniform" (the evaluation default),
        "permutation", or "incast" — the generality ablation (A6)
        trains under one and evaluates under another.
    routing:
        Forwarding policy (ECMP / flowlet / adaptive) and its knobs;
        consumed by every stage's network *and* the fluid path charger.
    failures:
        Deterministic link-failure/recovery events, applied by a
        :class:`~repro.net.failures.FailureInjector` in every stage.
    collective:
        Optional AI-training collective workload running alongside the
        Poisson mice traffic (see :mod:`repro.traffic.collectives`).
    """

    clos: ClosParams = field(default_factory=ClosParams)
    load: float = 0.25
    duration_s: float = 0.02
    seed: int = 1
    net: NetworkConfig = field(default_factory=NetworkConfig)
    intra_cluster_fraction: Optional[float] = None
    matrix: str = "uniform"
    routing: RoutingConfig = field(default_factory=RoutingConfig)
    failures: tuple[LinkFailure, ...] = ()
    collective: Optional[CollectiveConfig] = None

    def __post_init__(self) -> None:
        # Spec files hand these over as plain dicts/lists; normalize so
        # every consumer sees the frozen dataclasses and the run
        # fingerprint stays canonical.
        object.__setattr__(self, "routing", RoutingConfig.from_dict(self.routing))
        object.__setattr__(self, "failures", normalize_failures(self.failures))
        if self.collective is not None:
            object.__setattr__(
                self, "collective", CollectiveConfig.from_dict(self.collective)
            )
        if self.matrix not in ("uniform", "permutation", "incast"):
            raise ValueError(
                f"matrix must be uniform|permutation|incast, got {self.matrix!r}"
            )
        # Sweep schedulers build configs from parsed spec files; bad
        # numbers must fail here, not surface as NaNs mid-simulation.
        if not self.load > 0:
            raise ValueError(f"load must be > 0, got {self.load}")
        if not self.duration_s > 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")

    def sizes(self) -> EmpiricalSizeDistribution:
        """The flow-size distribution (the paper's web-search trace)."""
        return web_search_sizes()


@dataclass
class RunResult:
    """Measurements from one simulation run (full or hybrid)."""

    sim_seconds: float
    wallclock_seconds: float
    events_executed: int
    flows_started: int
    flows_completed: int
    flows_elided: int
    drops: int
    rtt_samples: list[float]
    fcts: list[float]
    model_packets: int = 0
    model_drops: int = 0
    model_inference_seconds: float = 0.0
    #: Applied link failure/recovery events (manifest-ready dicts).
    failure_events: list[dict] = field(default_factory=list)
    #: Collective workload accounting when one ran (else None).
    collective: Optional[dict] = None

    @property
    def sim_seconds_per_second(self) -> float:
        """Simulated seconds per wall-clock second (Figure 1's metric).

        Zero wall-clock (degenerate but reachable: empty workload, a
        mocked clock) yields 0.0, never ``inf`` — results get JSON-
        serialized into manifests and ``inf`` is not valid JSON.
        """
        if self.wallclock_seconds <= 0:
            return 0.0
        return self.sim_seconds / self.wallclock_seconds

    @property
    def events_per_second(self) -> float:
        """Executed events per wall-clock second (zero-guarded)."""
        if self.wallclock_seconds <= 0:
            return 0.0
        return self.events_executed / self.wallclock_seconds

    @property
    def inference_share(self) -> float:
        """Fraction of wall-clock spent inside model inference."""
        if self.wallclock_seconds <= 0:
            return 0.0
        return self.model_inference_seconds / self.wallclock_seconds

    @property
    def model_packets_per_sec(self) -> float:
        """Wall-clock throughput of packets through approximated clusters."""
        if self.wallclock_seconds <= 0:
            return 0.0
        return self.model_packets / self.wallclock_seconds

    def determinism_signature(self) -> str:
        """Byte-comparable canonical form of everything seeded.

        Wall-clock fields are excluded, and so is ``events_executed``
        (metrics probes schedule extra kernel events without touching
        outcomes); same-seed runs of the same scenario (including
        link-failure schedules and collective workloads) must produce
        identical signatures whether or not metrics or tracing were
        enabled.
        """
        payload = {
            "flows_started": self.flows_started,
            "flows_completed": self.flows_completed,
            "flows_elided": self.flows_elided,
            "drops": self.drops,
            "rtts": self.rtt_samples,
            "fcts": self.fcts,
            "model_packets": self.model_packets,
            "model_drops": self.model_drops,
            "failure_events": self.failure_events,
            "collective": self.collective,
        }
        return json.dumps(payload, sort_keys=True)


@dataclass
class FullRunOutput:
    """A full-fidelity run plus (optionally) its training trace."""

    result: RunResult
    records: list[PacketCrossing]
    extractor: Optional[RegionFeatureExtractor]


def make_generator(
    sim: Simulator,
    network: Network,
    config: ExperimentConfig,
    flow_filter=None,
    flow_dispatch=None,
    tracer=None,
) -> TrafficGenerator:
    """Build the load-calibrated traffic generator for an experiment.

    Public so custom experiment drivers (and the CLI) can assemble
    networks manually — e.g. to attach tracers before traffic starts —
    while keeping the exact workload semantics of the pipeline.
    """
    sizes = config.sizes()
    rate = arrival_rate_for_load(
        config.load,
        len(network.topology.servers()),
        next(iter(network.topology.links)).rate_bps,
        sizes.mean(),
    )
    matrix = _make_matrix(sim, network, config)
    generator = TrafficGenerator(
        sim,
        network,
        matrix=matrix,
        sizes=sizes,
        arrivals=PoissonArrivals(rate),
        flow_filter=flow_filter,
        flow_dispatch=flow_dispatch,
        tracer=tracer,
    )
    # The collective workload self-starts at sim time 0 and launches
    # its gated chunk flows through the generator (packet path in
    # every tier); the Poisson arrivals are the background mice.
    if config.collective is not None:
        generator.collective = CollectiveWorkload(sim, generator, config.collective)
    else:
        generator.collective = None
    return generator


def _make_matrix(
    sim: Simulator, network: Network, config: ExperimentConfig
) -> TrafficMatrix:
    if config.matrix == "permutation":
        return PermutationMatrix(network.topology, sim.rng.stream("traffic.permutation"))
    if config.matrix == "incast":
        return IncastMatrix(network.topology)
    return UniformMatrix(
        network.topology, intra_cluster_fraction=config.intra_cluster_fraction
    )


def run_full_simulation(
    config: ExperimentConfig,
    collect_cluster: Optional[int | Region] = None,
    observe_cluster: int = 0,
    metrics=None,
    probe_period_s: Optional[float] = None,
) -> FullRunOutput:
    """Stage 1: full packet-level simulation.

    Parameters
    ----------
    collect_cluster:
        If set, instrument that region's fabric boundary and return the
        packet-crossing trace (training input).  A cluster index is the
        paper's configuration; a :class:`~repro.core.region.Region`
        (e.g. ``Region.rest_of_network``) selects other boundaries.
    observe_cluster:
        Whose hosts' RTT samples to report (Figure 4 population).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`.  Installs the
        ``des.run`` span on the kernel and attaches sim-time queue
        probes; probes are ordinary kernel events and draw no
        randomness, so seeded runs are byte-identical with or without
        them.
    probe_period_s:
        Simulated-time sampling period for the probes; defaults to
        ``duration_s / 50`` (:func:`repro.obs.default_period`).
    """
    topology = build_clos(config.clos)
    sim = Simulator(seed=config.seed)
    if metrics is not None:
        sim.metrics = metrics
    routing = make_routing(topology, config.routing)
    network = Network(sim, topology, config=config.net, routing=routing)
    injector = FailureInjector(sim, routing, config.failures)
    collector = None
    extractor = None
    if collect_cluster is not None:
        collector = RegionTraceCollector(network, collect_cluster)
        extractor = RegionFeatureExtractor(topology, network.routing, collect_cluster)
    generator = make_generator(sim, network, config)
    if metrics is not None:
        from repro.obs import attach_network_probes, default_period

        period = probe_period_s or default_period(config.duration_s)
        attach_network_probes(metrics, sim, network, period)
    generator.start()
    sim.run(until=config.duration_s)

    records = collector.finalize() if collector is not None else []
    result = RunResult(
        sim_seconds=config.duration_s,
        wallclock_seconds=sim.wallclock_elapsed,
        events_executed=sim.events_executed,
        flows_started=generator.flows_started,
        flows_completed=generator.flows_completed,
        flows_elided=generator.flows_elided,
        drops=network.total_drops,
        rtt_samples=network.rtt_monitor(observe_cluster).values.tolist(),
        fcts=generator.completed_fcts(),
        failure_events=injector.summary(),
        collective=(
            generator.collective.summary() if generator.collective else None
        ),
    )
    return FullRunOutput(result=result, records=records, extractor=extractor)


def train_reusable_model(
    config: ExperimentConfig,
    micro: Optional[MicroModelConfig] = None,
    collect_cluster: int | Region = 1,
    metrics=None,
) -> tuple[TrainedClusterModel, FullRunOutput]:
    """Stage 1 + 2: simulate small, train the cluster model.

    The paper trains on a two-cluster simulation and replaces one of
    them (Figure 3); ``config.clos.clusters`` should normally be 2.
    Returns the trained bundle and the training run (whose RTT samples
    serve as the ground-truth side of accuracy comparisons).  With
    ``metrics``, the collection run is probe-instrumented and training
    batches are span-profiled (``train.batch`` plus loss / grad-norm /
    examples-per-second histograms, labeled by direction).
    """
    output = run_full_simulation(
        config, collect_cluster=collect_cluster, metrics=metrics
    )
    if not output.records:
        raise ValueError(
            "training simulation produced no region crossings; "
            "increase duration_s or load"
        )
    assert output.extractor is not None
    trained = train_cluster_model(
        output.records, output.extractor, config=micro, metrics=metrics
    )
    return trained, output


def run_hybrid_simulation(
    config: ExperimentConfig,
    trained: TrainedClusterModel,
    hybrid: Optional[HybridConfig] = None,
    metrics=None,
    probe_period_s: Optional[float] = None,
    tracer=None,
) -> tuple[RunResult, HybridSimulation]:
    """Stage 3: the approximate simulation.

    The workload generator draws from the same seed and distributions
    as the full run; flows not touching the full-fidelity cluster are
    elided per the hybrid configuration.  With ``metrics``, the
    approximated clusters publish per-packet inference / latency /
    drop instruments and sim-time probes sample queue depths, macro
    states, and per-cluster drop rates every ``probe_period_s``.  With
    ``tracer`` (a :class:`~repro.obs.trace.FlightRecorder`), every flow
    gets admission/completion records and every model decision a span —
    RNG-free, so seeded outcomes stay byte-identical.
    """
    topology = build_clos(config.clos)
    sim = Simulator(seed=config.seed)
    if tracer is not None:
        tracer.bind_clock(lambda: sim.now)
    hybrid_sim = HybridSimulation(
        sim,
        topology,
        trained,
        net_config=config.net,
        config=hybrid,
        metrics=metrics,
        tracer=tracer,
        routing_config=config.routing,
        failures=config.failures,
    )
    generator = make_generator(
        sim,
        hybrid_sim.network,
        config,
        flow_filter=hybrid_sim.flow_filter,
        tracer=tracer,
    )
    if metrics is not None:
        from repro.obs import attach_hybrid_probes, default_period

        period = probe_period_s or default_period(config.duration_s)
        attach_hybrid_probes(metrics, sim, hybrid_sim, period)
    generator.start()
    sim.run(until=config.duration_s)
    # Drain any packets still inside the batching window so the result
    # accounts for every arrival (no-op when batching is off).
    hybrid_sim.flush_inference()

    result = RunResult(
        sim_seconds=config.duration_s,
        wallclock_seconds=sim.wallclock_elapsed,
        events_executed=sim.events_executed,
        flows_started=generator.flows_started,
        flows_completed=generator.flows_completed,
        flows_elided=generator.flows_elided,
        drops=hybrid_sim.network.total_drops + hybrid_sim.model_drops(),
        rtt_samples=hybrid_sim.observed_rtt_samples(),
        fcts=generator.completed_fcts(),
        model_packets=hybrid_sim.model_packets_handled(),
        model_drops=hybrid_sim.model_drops(),
        model_inference_seconds=hybrid_sim.inference_seconds(),
        failure_events=hybrid_sim.failure_injector.summary(),
        collective=(
            generator.collective.summary() if generator.collective else None
        ),
    )
    return result, hybrid_sim
