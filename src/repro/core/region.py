"""Approximation regions: which part of the network a model replaces.

The paper's prototype "uses clusters as the unit of approximation"
(Section 4), but Section 7 asks how much further this can go: "In the
limit, the rest of the network could be modeled as a single black box."
This module abstracts the region so both ends of that spectrum run
through the same machinery:

* :meth:`Region.cluster` — one cluster's ToR + Cluster switches (the
  paper's evaluation configuration);
* :meth:`Region.rest_of_network` — every switch except one cluster's,
  core layer included (the Section 7 limit case).

A region is a set of *switches*.  Hosts are never part of a region
(approximated clusters run full TCP stacks, Section 5).  The region's
``shadow_servers`` — servers whose ToR is inside the region — define
packet direction: a packet terminating at a shadow server travels
INGRESS (it ends inside the region's reach), anything else EGRESS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.topology.graph import NodeRole, Topology


@dataclass(frozen=True)
class Region:
    """A set of fabric switches replaced by one model.

    Attributes
    ----------
    name:
        Human-readable identifier (used in entity names and traces).
    switches:
        Names of the switches inside the region.
    shadow_servers:
        Servers attached behind region switches (their ToR is in the
        region).  Destination membership here defines INGRESS.
    """

    name: str
    switches: frozenset[str]
    shadow_servers: frozenset[str]

    def __post_init__(self) -> None:
        if not self.switches:
            raise ValueError(f"region {self.name!r} has no switches")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def cluster(cls, topology: Topology, cluster: int) -> "Region":
        """The paper's unit of approximation: one cluster's fabric."""
        switches = frozenset(
            node.name
            for node in topology.cluster_nodes(cluster)
            if node.role in (NodeRole.TOR, NodeRole.CLUSTER)
        )
        if not switches:
            raise ValueError(f"cluster {cluster} has no fabric switches")
        shadow = frozenset(
            node.name
            for node in topology.cluster_nodes(cluster)
            if node.role is NodeRole.SERVER
        )
        return cls(name=f"cluster-{cluster}", switches=switches, shadow_servers=shadow)

    @classmethod
    def rest_of_network(cls, topology: Topology, full_cluster: int) -> "Region":
        """The Section 7 limit: everything except one cluster's fabric.

        Region = the core layer plus every other cluster's ToR and
        Cluster switches; its shadow is every server outside the full
        cluster.
        """
        switches = set()
        shadow = set()
        for node in topology.nodes:
            if node.role is NodeRole.CORE:
                switches.add(node.name)
            elif node.cluster == full_cluster:
                continue
            elif node.role in (NodeRole.TOR, NodeRole.CLUSTER):
                switches.add(node.name)
            elif node.role is NodeRole.SERVER:
                shadow.add(node.name)
        if not switches:
            raise ValueError("rest-of-network region is empty")
        return cls(
            name=f"rest-of-network-except-{full_cluster}",
            switches=frozenset(switches),
            shadow_servers=frozenset(shadow),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains_switch(self, name: str) -> bool:
        """True if ``name`` is a region switch."""
        return name in self.switches

    def is_shadow_server(self, name: str) -> bool:
        """True if ``name`` is a server behind the region."""
        return name in self.shadow_servers

    def egress_node_on_path(self, path: list[str]) -> str:
        """Where a packet on ``path`` re-enters full fidelity.

        Finds the first contiguous run of region switches on the path
        and returns the node immediately after it.  Raises if the path
        never touches the region (such packets should not have been
        handed to the region's model).
        """
        entered_at = None
        for i, node in enumerate(path):
            if node in self.switches:
                entered_at = i
            elif entered_at is not None:
                return node
        if entered_at is not None:
            raise ValueError(f"path {path} ends inside region {self.name!r}")
        raise ValueError(f"path {path} never enters region {self.name!r}")
