"""Trace collection, dataset construction, and micro-model training.

This module implements the paper's training workflow (Figure 3, left):
"We first briefly simulate a small network in full packet-level
fidelity to generate training and testing sets for a machine learning
model that can take incoming packets as inputs and generate properly
timed outgoing packets."

Three stages:

1. :class:`RegionTraceCollector` instruments a full-fidelity network
   and records every packet that crosses the boundary of one cluster's
   fabric: entry time, exit time (or drop time), and direction.
2. :func:`build_training_data` replays the recorded crossings in time
   order to compute features exactly as the hybrid simulator will at
   inference time (same stateful extractor, same macro classifier fed
   by outcomes as they become known), then standardizes and windows
   them.
3. :func:`train_micro_model` runs SGD-with-momentum over the joint
   drop/latency loss — the paper's optimizer, loss, and batch size.

:class:`TrainedClusterModel` bundles the two directional models with
their normalization and macro calibration, and serializes to a
directory for reuse across simulations (the paper's models are "cheap
to run, reusable, and beneficial to asymptotic behavior").
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.core.features import Direction, FEATURE_COUNT, RegionFeatureExtractor
from repro.core.macro import (
    AutoRegressiveMacroClassifier,
    MacroCalibration,
    calibrate_macro,
)
from repro.core.micro import MicroModel, MicroModelConfig
from repro.core.region import Region
from repro.net.network import Network
from repro.net.packet import Packet
from repro.nn.data import BatchIterator, Standardizer, make_sequences
from repro.nn.infer import CompiledRecurrentModel, FusedInferenceEngine, compile_inference
from repro.nn.losses import JointDropLatencyLoss, JointLossParts
from repro.nn.optim import SGD, clip_gradients
from repro.nn.serialize import load_module_state, save_module_state


@dataclass
class PacketCrossing:
    """One packet's traversal of the instrumented region."""

    packet: Packet
    entry_time: float
    exit_time: Optional[float] = None
    drop_time: Optional[float] = None

    @property
    def dropped(self) -> bool:
        """True if the packet died inside the region."""
        return self.drop_time is not None

    @property
    def latency_s(self) -> Optional[float]:
        """Region latency for delivered packets, else None."""
        if self.exit_time is None:
            return None
        return self.exit_time - self.entry_time

    @property
    def outcome_time(self) -> Optional[float]:
        """When the outcome became observable (exit or drop instant)."""
        return self.drop_time if self.dropped else self.exit_time


class RegionTraceCollector:
    """Instruments one cluster's fabric boundary in a live network.

    Entry taps sit on ports delivering *into* the region (server NICs
    of the cluster, core-to-Cluster-switch ports); exit taps sit on
    region ports delivering *out* (ToR-to-server, Cluster-to-core);
    drop taps chain onto every region-owned port.  Region latency is
    therefore measured entry-delivery to exit-delivery — exactly the
    interval the hybrid simulator's model replaces.
    """

    def __init__(self, network: Network, region: Region | int) -> None:
        self.network = network
        if isinstance(region, int):
            region = Region.cluster(network.topology, region)
        self.region = region
        self.region_switches = set(region.switches)
        self._pending: dict[int, PacketCrossing] = {}
        self.records: list[PacketCrossing] = []
        self.incomplete = 0

        for (owner, peer), port in network.ports().items():
            owner_in = owner in self.region_switches
            peer_in = peer in self.region_switches
            if not owner_in and peer_in:
                port.on_deliver = self._chain_deliver(port.on_deliver, self._on_entry)
            elif owner_in and not peer_in:
                port.on_deliver = self._chain_deliver(port.on_deliver, self._on_exit)
            if owner_in:
                port.on_drop = self._chain_drop(port.on_drop, self._on_region_drop)

    @staticmethod
    def _chain_deliver(
        existing: Optional[Callable[[Packet, float], None]],
        handler: Callable[[Packet, float], None],
    ) -> Callable[[Packet, float], None]:
        if existing is None:
            return handler

        def chained(packet: Packet, time: float) -> None:
            existing(packet, time)
            handler(packet, time)

        return chained

    @staticmethod
    def _chain_drop(
        existing: Optional[Callable[[Packet], None]],
        handler: Callable[[Packet], None],
    ) -> Callable[[Packet], None]:
        if existing is None:
            return handler

        def chained(packet: Packet) -> None:
            existing(packet)
            handler(packet)

        return chained

    # ------------------------------------------------------------------
    def _on_entry(self, packet: Packet, time: float) -> None:
        crossing = PacketCrossing(packet=packet, entry_time=time)
        self._pending[packet.packet_id] = crossing

    def _on_exit(self, packet: Packet, time: float) -> None:
        crossing = self._pending.pop(packet.packet_id, None)
        if crossing is None:
            return  # e.g. instrumentation attached mid-flight
        crossing.exit_time = time
        self.records.append(crossing)

    def _on_region_drop(self, packet: Packet) -> None:
        crossing = self._pending.pop(packet.packet_id, None)
        if crossing is None:
            return
        crossing.drop_time = self.network.sim.now
        self.records.append(crossing)

    def finalize(self) -> list[PacketCrossing]:
        """Return completed records; in-flight packets are discarded."""
        self.incomplete = len(self._pending)
        self._pending.clear()
        return self.records


# ----------------------------------------------------------------------
# Dataset construction
# ----------------------------------------------------------------------
@dataclass
class DirectionDataset:
    """Feature/target arrays for one direction, pre-standardization."""

    features: np.ndarray  # (N, F)
    drop: np.ndarray  # (N,)
    latency_log: np.ndarray  # (N,) log-seconds; NaN where dropped
    macro_index: np.ndarray  # (N,) ints in [0, 4): macro state at entry


@dataclass
class TrainingData:
    """Standardized, windowed training tensors for one direction."""

    windows_x: np.ndarray  # (num_windows, T, F)
    windows_y: np.ndarray  # (num_windows, T, 3): [drop, latency_std, macro_index]
    feature_standardizer: Standardizer
    latency_mean: float
    latency_std: float
    sample_count: int
    drop_fraction: float


def build_direction_datasets(
    records: list[PacketCrossing],
    extractor: RegionFeatureExtractor,
    calibration: Optional[MacroCalibration] = None,
    macro_bucket_s: float = 0.001,
) -> tuple[dict[Direction, DirectionDataset], MacroCalibration]:
    """Replay crossings in time order and compute features.

    The replay interleaves entry events (feature extraction, using the
    macro state known *so far*) with outcome events (macro classifier
    updates) exactly as they interleave in a live run, so the macro
    feature never peeks at the future.
    """
    if not records:
        raise ValueError("no packet crossings recorded; nothing to train on")
    if calibration is None:
        latencies = [r.latency_s for r in records if r.latency_s is not None]
        drops = [1 if r.dropped else 0 for r in records]
        if not latencies:
            raise ValueError("trace contains no delivered packets; cannot calibrate")
        calibration = calibrate_macro(latencies, drops)
    macro = AutoRegressiveMacroClassifier(calibration, bucket_s=macro_bucket_s)

    events: list[tuple[float, int, str, PacketCrossing]] = []
    for record in records:
        events.append((record.entry_time, 0, "entry", record))
        outcome_time = record.outcome_time
        if outcome_time is not None:
            events.append((outcome_time, 1, "outcome", record))
    events.sort(key=lambda e: (e[0], e[1]))

    rows: dict[Direction, list[tuple[np.ndarray, float, float, int]]] = {
        Direction.INGRESS: [],
        Direction.EGRESS: [],
    }
    for time, _, kind, record in events:
        if kind == "entry":
            direction = extractor.direction_of(record.packet)
            features = extractor.extract(record.packet, time, macro.state)
            latency = record.latency_s
            latency_log = math.log(max(latency, 1e-9)) if latency is not None else math.nan
            rows[direction].append(
                (
                    features,
                    1.0 if record.dropped else 0.0,
                    latency_log,
                    macro.state.value - 1,
                )
            )
        else:
            macro.observe(
                time,
                latency_s=record.latency_s,
                dropped=record.dropped,
            )

    datasets: dict[Direction, DirectionDataset] = {}
    for direction, entries in rows.items():
        if not entries:
            continue
        features = np.stack([e[0] for e in entries])
        drop = np.array([e[1] for e in entries])
        latency_log = np.array([e[2] for e in entries])
        macro_index = np.array([e[3] for e in entries], dtype=np.intp)
        datasets[direction] = DirectionDataset(features, drop, latency_log, macro_index)
    return datasets, calibration


def standardize_and_window(dataset: DirectionDataset, window: int) -> TrainingData:
    """Fit normalizations and cut the stream into training windows."""
    standardizer = Standardizer().fit(dataset.features)
    x = standardizer.transform(dataset.features)
    delivered = ~np.isnan(dataset.latency_log)
    if delivered.any():
        latency_mean = float(dataset.latency_log[delivered].mean())
        latency_std = float(dataset.latency_log[delivered].std())
        if latency_std < 1e-9:
            latency_std = 1.0
    else:
        latency_mean, latency_std = 0.0, 1.0
    latency_norm = np.where(
        delivered, (dataset.latency_log - latency_mean) / latency_std, 0.0
    )
    targets = np.stack(
        [dataset.drop, latency_norm, dataset.macro_index.astype(np.float64)], axis=1
    )
    windows_x, windows_y = make_sequences(x, targets, window)
    return TrainingData(
        windows_x=windows_x,
        windows_y=windows_y,
        feature_standardizer=standardizer,
        latency_mean=latency_mean,
        latency_std=latency_std,
        sample_count=dataset.features.shape[0],
        drop_fraction=float(dataset.drop.mean()),
    )


# ----------------------------------------------------------------------
# Training loop
# ----------------------------------------------------------------------
def train_micro_model(
    data: TrainingData,
    config: MicroModelConfig,
    rng: Optional[np.random.Generator] = None,
    metrics=None,
    direction_label: str = "all",
) -> tuple[MicroModel, list[JointLossParts]]:
    """Train one directional micro model.

    Iterates reshuffled epochs over the window set until
    ``config.train_batches`` optimizer steps have been taken, exactly
    the paper's recipe (SGD, lr 1e-4, momentum 0.9, batch 64, joint
    loss with drop-masked latency term).

    When ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) is given,
    every optimizer step is timed under a ``train.batch`` span and the
    loss, pre-clip gradient norm, and examples/second land in labeled
    histograms — the training-side half of the observability layer.
    """
    if data.windows_x.shape[0] == 0:
        raise ValueError(
            f"no training windows (need >= {config.window} consecutive samples)"
        )
    rng = rng or np.random.default_rng(config.seed)
    model = MicroModel(config, rng)
    # Initialize the drop head's bias at the base-rate log-odds.  Drops
    # are rare (<1% in most regimes), and a head that starts at p=0.5
    # would need thousands of SGD steps just to stop mass-dropping;
    # base-rate initialization is the standard imbalanced-class fix and
    # lets the budgeted step counts refine rather than rescue.
    base_rate = min(max(data.drop_fraction, 1e-4), 0.5)
    model.drop_head.bias.value[...] = math.log(base_rate / (1.0 - base_rate))
    per_macro = config.heads == "per_macro"
    optimizer = SGD(
        model.parameters(), lr=config.learning_rate, momentum=config.momentum
    )
    loss_fn = JointDropLatencyLoss(alpha=config.alpha)
    history: list[JointLossParts] = []
    instrumented = metrics is not None and metrics.handles_enabled()
    if instrumented:
        batch_span = metrics.span("train.batch", direction=direction_label)
        m_loss = metrics.histogram("train.loss", direction=direction_label)
        m_grad = metrics.histogram("train.grad_norm", direction=direction_label)
        m_rate = metrics.histogram("train.examples_per_sec", direction=direction_label)
        prev_total = batch_span.total_s
    steps = 0
    while steps < config.train_batches:
        batches = BatchIterator(data.windows_x, data.windows_y, config.batch_size, rng)
        for xb, yb in batches:
            macro_idx = yb[..., 2].astype(np.intp) if per_macro else None
            if instrumented:
                with batch_span:
                    drop_logits, latency_pred = model.forward(xb, macro_index=macro_idx)
                    parts = loss_fn.forward(
                        drop_logits, latency_pred, yb[..., 0], yb[..., 1]
                    )
                    model.zero_grad()
                    grad_drop, grad_latency = loss_fn.backward()
                    model.backward(grad_drop, grad_latency)
                    grad_norm = clip_gradients(model.parameters(), config.grad_clip)
                    optimizer.step()
                m_loss.observe(parts.total)
                m_grad.observe(grad_norm)
                batch_s = batch_span.total_s - prev_total
                prev_total = batch_span.total_s
                if batch_s > 0:
                    m_rate.observe(xb.shape[0] * xb.shape[1] / batch_s)
            else:
                drop_logits, latency_pred = model.forward(xb, macro_index=macro_idx)
                parts = loss_fn.forward(
                    drop_logits, latency_pred, yb[..., 0], yb[..., 1]
                )
                model.zero_grad()
                grad_drop, grad_latency = loss_fn.backward()
                model.backward(grad_drop, grad_latency)
                clip_gradients(model.parameters(), config.grad_clip)
                optimizer.step()
            history.append(parts)
            steps += 1
            if steps >= config.train_batches:
                break
    return model, history


# ----------------------------------------------------------------------
# The trained bundle
# ----------------------------------------------------------------------
@dataclass
class DirectionModel:
    """One direction's model plus its normalization."""

    model: MicroModel
    feature_standardizer: Standardizer
    latency_mean: float
    latency_std: float

    def latency_from_norm(self, latency_norm: float) -> float:
        """Invert the standardized-log-latency transform (to seconds)."""
        return math.exp(latency_norm * self.latency_std + self.latency_mean)

    def compile(self, dtype: str | np.dtype = np.float64) -> CompiledRecurrentModel:
        """Lower this direction's model into fused inference weights.

        The feature standardizer is folded into layer 0, so compiled
        engines consume *raw* extractor features directly.
        """
        return compile_inference(
            self.model.lstm,
            self.model.drop_head,
            self.model.latency_head,
            feature_mean=self.feature_standardizer.mean,
            feature_std=self.feature_standardizer.std,
            dtype=dtype,
        )


@dataclass
class CompiledClusterModel:
    """Fused inference weights for both directions of a trained bundle.

    Produced by :meth:`TrainedClusterModel.compiled`; weights are
    shared read-only, so one compiled bundle serves every approximated
    cluster in a simulation — each cluster spawns its own per-direction
    :class:`~repro.nn.infer.FusedInferenceEngine` (which owns the
    hidden state) via :meth:`engine`.
    """

    directions: dict[Direction, CompiledRecurrentModel]

    def engine(self, direction: Direction) -> FusedInferenceEngine:
        """A fresh hot-path executor for one direction."""
        return self.directions[direction].engine()


@dataclass
class TrainedClusterModel:
    """Everything the hybrid simulator needs to replace a cluster.

    Trained once on a small full-fidelity simulation and reused for
    every approximated cluster of a large one — the symmetric structure
    of the Clos data center is what licenses the reuse (Section 3).
    """

    config: MicroModelConfig
    calibration: MacroCalibration
    directions: dict[Direction, DirectionModel]
    training_summary: dict[str, float] = field(default_factory=dict)
    _compiled: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def direction(self, direction: Direction) -> DirectionModel:
        """The model bundle for one direction."""
        return self.directions[direction]

    def compiled(self, dtype: str | np.dtype = np.float64) -> CompiledClusterModel:
        """Fused inference weights for the hybrid hot path.

        Compilation happens once per dtype and is cached on the bundle,
        so every approximated cluster of a simulation shares the same
        read-only weight arrays.  ``float64`` (default) matches the
        reference ``predict_step`` path to <= 1e-9; ``float32`` is the
        opt-in speed mode.
        """
        key = np.dtype(dtype).name
        cached = self._compiled.get(key)
        if cached is None:
            cached = CompiledClusterModel(
                directions={
                    direction: bundle.compile(dtype)
                    for direction, bundle in self.directions.items()
                }
            )
            self._compiled[key] = cached
        return cached

    # -- persistence ----------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Write the bundle to a directory (npz weights + json meta).

        Returns the directory; ``bundle.json`` records the per-direction
        weight files actually written, so registries and manifests can
        point at concrete artifacts.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        artifacts: dict[str, str] = {}
        for direction, bundle in self.directions.items():
            metadata = {
                "feature_mean": bundle.feature_standardizer.state_dict()["mean"],
                "feature_std": bundle.feature_standardizer.state_dict()["std"],
                "latency_mean": np.asarray(bundle.latency_mean),
                "latency_std": np.asarray(bundle.latency_std),
            }
            written = save_module_state(
                bundle.model, directory / f"{direction.value}.npz", metadata=metadata
            )
            artifacts[direction.value] = written.name
        meta = {
            "config": {
                "input_size": self.config.input_size,
                "hidden_size": self.config.hidden_size,
                "num_layers": self.config.num_layers,
                "cell": self.config.cell,
                "heads": self.config.heads,
                "alpha": self.config.alpha,
                "learning_rate": self.config.learning_rate,
                "momentum": self.config.momentum,
                "batch_size": self.config.batch_size,
                "window": self.config.window,
                "train_batches": self.config.train_batches,
                "grad_clip": self.config.grad_clip,
                "seed": self.config.seed,
            },
            "calibration": {
                "latency_low_s": self.calibration.latency_low_s,
                "drop_rate_high": self.calibration.drop_rate_high,
            },
            "directions": [d.value for d in self.directions],
            "artifacts": artifacts,
            "training_summary": self.training_summary,
        }
        (directory / "bundle.json").write_text(json.dumps(meta, indent=2))
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "TrainedClusterModel":
        """Inverse of :meth:`save`."""
        directory = Path(directory)
        meta = json.loads((directory / "bundle.json").read_text())
        config = MicroModelConfig(**meta["config"])
        calibration = MacroCalibration(**meta["calibration"])
        directions: dict[Direction, DirectionModel] = {}
        for value in meta["directions"]:
            direction = Direction(value)
            model = MicroModel(config, np.random.default_rng(0))
            metadata = load_module_state(model, directory / f"{value}.npz")
            standardizer = Standardizer.from_state_dict(
                {"mean": metadata["feature_mean"], "std": metadata["feature_std"]}
            )
            directions[direction] = DirectionModel(
                model=model,
                feature_standardizer=standardizer,
                latency_mean=float(metadata["latency_mean"]),
                latency_std=float(metadata["latency_std"]),
            )
        return cls(
            config=config,
            calibration=calibration,
            directions=directions,
            training_summary=meta.get("training_summary", {}),
        )


def train_cluster_model(
    records: list[PacketCrossing],
    extractor: RegionFeatureExtractor,
    config: Optional[MicroModelConfig] = None,
    macro_bucket_s: float = 0.001,
    metrics=None,
) -> TrainedClusterModel:
    """End-to-end: crossings -> datasets -> two trained directional models."""
    config = config or MicroModelConfig()
    datasets, calibration = build_direction_datasets(
        records, extractor, macro_bucket_s=macro_bucket_s
    )
    directions: dict[Direction, DirectionModel] = {}
    summary: dict[str, float] = {}
    for direction, dataset in datasets.items():
        data = standardize_and_window(dataset, config.window)
        seed_offset = 0 if direction is Direction.INGRESS else 1
        rng = np.random.default_rng(config.seed + seed_offset)
        model, history = train_micro_model(
            data, config, rng, metrics=metrics, direction_label=direction.value
        )
        directions[direction] = DirectionModel(
            model=model,
            feature_standardizer=data.feature_standardizer,
            latency_mean=data.latency_mean,
            latency_std=data.latency_std,
        )
        summary[f"{direction.value}_samples"] = float(data.sample_count)
        summary[f"{direction.value}_drop_fraction"] = data.drop_fraction
        if history:
            summary[f"{direction.value}_final_loss"] = history[-1].total
            summary[f"{direction.value}_initial_loss"] = history[0].total
    if not directions:
        raise ValueError("trace produced no usable training data")
    return TrainedClusterModel(
        config=config, calibration=calibration, directions=directions, training_summary=summary
    )
