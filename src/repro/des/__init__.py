"""Discrete event simulation (DES) kernel.

This package is the substrate that plays the role OMNeT++ plays in the
paper: a deterministic, single-threaded discrete event simulator.  Network
behaviour is represented as a series of events (packet arrivals, timer
expirations, application wake-ups) kept in a temporally ordered event
queue, exactly as described in Section 2.1 of the paper.

Public API
----------
``Simulator``
    The event loop.  Owns simulated time, the event queue, named random
    streams, and event accounting.
``Event``
    A scheduled callback; returned by :meth:`Simulator.schedule` and
    usable as a cancellation handle.
``Entity``
    Base class for simulation components (switches, hosts, links, ...).
``Monitor`` / ``TimeSeries`` / ``Counter``
    Lightweight statistics collection.
``SimulationError``, ``SchedulingError``
    Kernel error types.
"""

from repro.des.errors import SchedulingError, SimulationError
from repro.des.kernel import Event, EventQueue, Simulator
from repro.des.entities import Entity, Timer
from repro.des.process import Delay, Process, Signal
from repro.des.monitors import Counter, Monitor, TimeSeries
from repro.des.rng import RandomStreams
from repro.des.simlog import SimTimeAdapter, get_sim_logger

__all__ = [
    "Counter",
    "Delay",
    "Entity",
    "Event",
    "EventQueue",
    "Monitor",
    "Process",
    "RandomStreams",
    "SchedulingError",
    "Signal",
    "SimTimeAdapter",
    "SimulationError",
    "Simulator",
    "TimeSeries",
    "get_sim_logger",
    "Timer",
]
