"""Base class for simulation components.

An :class:`Entity` is anything with behaviour in the simulated world —
a switch, a host, a link, an approximated cluster.  Entities hold a
reference to their :class:`~repro.des.kernel.Simulator` and get small
conveniences for scheduling and logging.  The design mirrors OMNeT++'s
``cSimpleModule``: users change any piece of the system by changing the
implementation of event handlers (paper Section 2.1).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.des.kernel import Event, Simulator


class Entity:
    """A named participant in a simulation.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Unique human-readable identifier (e.g. ``"tor-3"``); used in
        traces, logs and error messages.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    def schedule(self, delay: float, fn: Callable[[], None], priority: int = 0) -> Event:
        """Schedule a callback ``delay`` seconds from now."""
        return self.sim.schedule(delay, fn, priority)

    def schedule_at(self, time: float, fn: Callable[[], None], priority: int = 0) -> Event:
        """Schedule a callback at an absolute simulated time."""
        return self.sim.schedule_at(time, fn, priority)


class Timer:
    """A restartable one-shot timer built on kernel events.

    TCP retransmission and delayed-ACK logic restart and cancel timers
    constantly; this wrapper gives them an arm/disarm interface instead
    of manual event-handle bookkeeping.
    """

    def __init__(self, sim: Simulator, fn: Callable[[], None]) -> None:
        self._sim = sim
        self._fn = fn
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """True if the timer is set and has not yet fired."""
        return self._event is not None and self._event.pending

    @property
    def expiry(self) -> Optional[float]:
        """Absolute time at which the timer will fire, or None."""
        if not self.armed:
            return None
        assert self._event is not None
        return self._event.time

    def arm(self, delay: float) -> None:
        """(Re)start the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._event is not None and self._event.pending:
            self._sim.cancel(self._event)
        self._event = None

    def _fire(self) -> None:
        self._event = None
        self._fn()
