"""Error types raised by the DES kernel."""


class SimulationError(Exception):
    """Base class for all simulation kernel errors."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled illegally.

    Typical causes: scheduling in the simulated past, scheduling with a
    non-finite timestamp, or re-scheduling a cancelled/executed event.
    """
