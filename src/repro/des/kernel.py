"""The discrete event simulation kernel.

The kernel is intentionally small: a binary-heap event queue keyed by
``(time, priority, sequence)`` and a run loop.  The sequence number makes
event ordering *total* and therefore deterministic: two events scheduled
for the same instant with the same priority execute in the order they
were scheduled, on every run, on every platform.

Determinism matters for this reproduction in two ways.  First, the
paper's training pipeline (Section 4) records packet traces from a full
simulation and replays the same workload against the hybrid simulator;
without a deterministic kernel the "same workload" would not be the same.
Second, the event *count* is itself a measured quantity (our ablation A1
counts the events elided by approximation), so the kernel keeps exact
accounting of scheduled, executed, and cancelled events.
"""

from __future__ import annotations

import heapq
import math
import time as _wallclock
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.des.errors import SchedulingError, SimulationError
from repro.des.rng import RandomStreams

#: Default priority for events; lower values execute first at equal times.
DEFAULT_PRIORITY = 0


@dataclass(slots=True)
class Event:
    """A scheduled callback.

    The queue orders events by ``(time, priority, seq)``; the seq is a
    kernel-assigned monotonic tie-breaker that makes ordering total
    (and lets the heap compare plain tuples in C — events themselves
    are never compared).

    Attributes
    ----------
    time:
        Simulated time at which the event fires.
    priority:
        Tie-breaker at equal times; lower fires first.
    seq:
        Kernel-assigned monotonic sequence number; makes ordering total.
    fn:
        The callback, invoked as ``fn()``.
    cancelled:
        True if :meth:`Simulator.cancel` was called; the kernel skips
        cancelled events lazily when they surface at the heap top.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[[], None]
    cancelled: bool = False
    executed: bool = False

    def cancel(self) -> None:
        """Mark this event so the kernel will skip it.

        Cancelling an already-executed event is a no-op rather than an
        error: timers frequently race with the messages that disarm them.
        """
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is neither executed nor cancelled."""
        return not (self.cancelled or self.executed)


class EventQueue:
    """A temporally ordered event queue (binary heap).

    Heap entries are plain ``(time, priority, seq, event)`` tuples:
    the unique seq guarantees comparisons never reach the event object,
    so heap maintenance runs entirely in C.  Exposed separately from
    :class:`Simulator` because the parallel DES engine (``repro.pdes``)
    runs one queue per partition.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, fn: Callable[[], None], priority: int = DEFAULT_PRIORITY) -> Event:
        """Insert a callback at ``time``; returns the :class:`Event` handle."""
        event = Event(time=time, priority=priority, seq=self._seq, fn=fn)
        heapq.heappush(self._heap, (time, priority, self._seq, event))
        self._seq += 1
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or None if empty.

        Lazily discards cancelled events found at the top.
        """
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest pending event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if not event.cancelled:
                return event
        return None


class Simulator:
    """The DES event loop.

    Parameters
    ----------
    seed:
        Master seed for the simulator's named random streams.  Every
        stochastic component draws from ``sim.rng.stream(name)`` so that
        adding a new source of randomness never perturbs existing ones.

    Examples
    --------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [2.5]
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rng = RandomStreams(seed)
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        # Event accounting (used by ablation A1 and the Figure 5 bench).
        self.events_scheduled = 0
        self.events_executed = 0
        self.events_cancelled = 0
        self._wallclock_start: Optional[float] = None
        self.wallclock_elapsed: float = 0.0
        #: Optional observability registry (``repro.obs``).  When set,
        #: each :meth:`run` is timed under a ``des.run`` span and event
        #: totals are published as gauges on exit.  Duck-typed (any
        #: object with ``span``/``gauge``) so the kernel stays free of
        #: upward imports; ``None`` costs one branch per run, not per
        #: event.
        self.metrics = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, fn: Callable[[], None], priority: int = DEFAULT_PRIORITY
    ) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now.

        Raises
        ------
        SchedulingError
            If ``delay`` is negative or not finite.
        """
        if not math.isfinite(delay):
            raise SchedulingError(f"event delay must be finite, got {delay!r}")
        if delay < 0:
            raise SchedulingError(f"cannot schedule into the past (delay={delay!r})")
        self.events_scheduled += 1
        return self._queue.push(self.now + delay, fn, priority)

    def schedule_at(
        self, time: float, fn: Callable[[], None], priority: int = DEFAULT_PRIORITY
    ) -> Event:
        """Schedule ``fn`` at absolute simulated time ``time``."""
        if not math.isfinite(time):
            raise SchedulingError(f"event time must be finite, got {time!r}")
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule into the past (time={time!r} < now={self.now!r})"
            )
        self.events_scheduled += 1
        return self._queue.push(time, fn, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if already executed)."""
        if event.pending:
            self.events_cancelled += 1
        event.cancel()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Execute events in time order.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            ``sim.now`` is advanced to ``until`` when the horizon is hit.
        max_events:
            Execute at most this many events (safety valve for tests).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        self._wallclock_start = _wallclock.perf_counter()
        executed_this_run = 0
        span = self.metrics.span("des.run") if self.metrics is not None else None
        if span is not None:
            span.__enter__()
        try:
            while not self._stopped:
                if max_events is not None and executed_this_run >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                event = self._queue.pop()
                assert event is not None  # peek said non-empty
                if event.time < self.now:
                    raise SimulationError(
                        f"event queue yielded past event at {event.time} (now={self.now})"
                    )
                self.now = event.time
                event.executed = True
                self.events_executed += 1
                executed_this_run += 1
                event.fn()
            if until is not None and not self._stopped and self._queue.peek_time() is None:
                # Ran dry before the horizon: advance to it anyway, so that
                # rate computations (bytes / elapsed) use the full window.
                self.now = max(self.now, until)
        finally:
            self.wallclock_elapsed += _wallclock.perf_counter() - self._wallclock_start
            self._wallclock_start = None
            self._running = False
            if span is not None:
                span.__exit__(None, None, None)
                metrics = self.metrics
                metrics.counter("des.events_executed_in_runs").inc(executed_this_run)
                metrics.gauge("des.events_executed").set(self.events_executed)
                metrics.gauge("des.events_scheduled").set(self.events_scheduled)
                metrics.gauge("des.events_cancelled").set(self.events_cancelled)
                metrics.gauge("des.sim_time_s").set(self.now)

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of events currently in the queue (including cancelled)."""
        return len(self._queue)

    def sim_seconds_per_second(self) -> float:
        """Simulated seconds processed per wall-clock second so far.

        This is exactly the y-axis of the paper's Figure 1.
        """
        if self.wallclock_elapsed <= 0:
            return float("inf") if self.now > 0 else 0.0
        return self.now / self.wallclock_elapsed
