"""Statistics collection for simulations.

The paper notes (Section 2.1) that the output of a DES is configurable:
users compute arbitrary statistics (flow completion time, throughput,
latency, drop rate) or dump raw traces.  These classes are the
building blocks for that: cheap append-only recorders that defer all
math to the end of the run.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np


class Monitor:
    """Records scalar observations (no timestamps).

    Examples
    --------
    >>> m = Monitor("rtt")
    >>> m.record(0.5); m.record(1.5)
    >>> m.mean()
    1.0
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []

    def record(self, value: float) -> None:
        """Append one observation."""
        self._values.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        """Append many observations."""
        self._values.extend(float(v) for v in values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        """All observations as an array (copy)."""
        return np.asarray(self._values, dtype=np.float64)

    def mean(self) -> float:
        """Arithmetic mean; NaN when empty."""
        return float(np.mean(self._values)) if self._values else float("nan")

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100); NaN when empty."""
        return float(np.percentile(self._values, q)) if self._values else float("nan")

    def max(self) -> float:
        """Largest observation; NaN when empty."""
        return float(np.max(self._values)) if self._values else float("nan")

    def min(self) -> float:
        """Smallest observation; NaN when empty."""
        return float(np.min(self._values)) if self._values else float("nan")


class TimeSeries:
    """Records (time, value) pairs.

    Used for queue lengths and latency-over-time traces (the macro
    model's training signal is derived from exactly such series).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Append an observation at ``time``."""
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Observation timestamps (copy)."""
        return np.asarray(self._times, dtype=np.float64)

    @property
    def values(self) -> np.ndarray:
        """Observation values (copy)."""
        return np.asarray(self._values, dtype=np.float64)

    def window(self, start: float, end: float) -> np.ndarray:
        """Values observed in ``[start, end)``."""
        t = self.times
        mask = (t >= start) & (t < end)
        return self.values[mask]

    def resample_mean(self, interval: float) -> tuple[np.ndarray, np.ndarray]:
        """Bucket observations into fixed intervals and average each.

        Returns ``(bucket_start_times, bucket_means)``; empty buckets are
        dropped.  This is how second-scale "macro" regime signals are
        extracted from microsecond-scale packet observations (Section 4).
        """
        if not self._times:
            return np.array([]), np.array([])
        t, v = self.times, self.values
        buckets = np.floor(t / interval).astype(np.int64)
        uniq, inverse = np.unique(buckets, return_inverse=True)
        sums = np.bincount(inverse, weights=v)
        counts = np.bincount(inverse)
        return uniq * interval, sums / counts


class Counter:
    """A named monotonically increasing counter (drops, bytes, events)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0

    def increment(self, by: int = 1) -> None:
        """Add ``by`` (must be non-negative) to the counter."""
        if by < 0:
            raise ValueError(f"counter increment must be non-negative, got {by}")
        self.count += by

    def __int__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.count})"
