"""Generator-based simulation processes (the SimPy-style API).

The raw kernel is callback-based; multi-step behaviours (an
application that sends, waits, retries, ...) read much better as
coroutines.  A :class:`Process` wraps a generator that *yields*
waiting instructions:

* ``yield Delay(seconds)`` — sleep in simulated time;
* ``yield signal`` (a :class:`Signal`) — park until it fires;
* ``return value`` — finish, waking any process waiting on this one
  (a process is itself awaitable via its ``completion`` signal).

Example
-------
>>> from repro.des import Simulator
>>> from repro.des.process import Delay, Process
>>> sim = Simulator()
>>> log = []
>>> def worker():
...     log.append(("start", sim.now))
...     yield Delay(2.0)
...     log.append(("done", sim.now))
...     return 42
>>> process = Process(sim, worker())
>>> sim.run()
>>> log
[('start', 0.0), ('done', 2.0)]
>>> process.result
42
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.des.kernel import Simulator


@dataclass(frozen=True)
class Delay:
    """Yield target: sleep for ``seconds`` of simulated time."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"delay must be non-negative, got {self.seconds}")


class Signal:
    """A one-shot wakeup that processes can wait on.

    ``fire(value)`` wakes every currently waiting process (the value is
    delivered as the result of their ``yield``).  Firing twice is an
    error; signals are one-shot by design — re-arm by creating a new
    one.  Processes that yield an already-fired signal continue
    immediately with the stored value.
    """

    def __init__(self, sim: Simulator, name: str = "signal") -> None:
        self.sim = sim
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list["Process"] = []

    def fire(self, value: Any = None) -> None:
        """Fire the signal, waking all waiters at the current time."""
        if self.fired:
            raise RuntimeError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim.schedule(0.0, lambda p=process: p._resume(self.value))

    def _subscribe(self, process: "Process") -> None:
        if self.fired:
            self.sim.schedule(0.0, lambda p=process: p._resume(self.value))
        else:
            self._waiters.append(process)


class Process:
    """Drives a generator through simulated time.

    Parameters
    ----------
    sim:
        The simulator.
    generator:
        The coroutine body.
    name:
        For error messages.

    Attributes
    ----------
    completion:
        A :class:`Signal` fired with the generator's return value when
        it finishes — yield it to join on the process.
    result:
        The return value (None until completion).
    """

    def __init__(self, sim: Simulator, generator: Generator, name: str = "process") -> None:
        self.sim = sim
        self.name = name
        self._generator = generator
        self.completion = Signal(sim, name=f"{name}.completion")
        self.result: Any = None
        self.failed: Optional[BaseException] = None
        # Start on the next kernel tick at the current time.
        sim.schedule(0.0, lambda: self._resume(None))

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.completion.fired and self.failed is None

    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self.result = stop.value
            self.completion.fire(stop.value)
            return
        except BaseException as error:  # surface, don't swallow
            self.failed = error
            raise
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Delay):
            self.sim.schedule(target.seconds, lambda: self._resume(None))
        elif isinstance(target, Signal):
            target._subscribe(self)
        elif isinstance(target, Process):
            target.completion._subscribe(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; expected Delay, "
                "Signal, or Process"
            )
