"""Named, independent random streams for reproducible simulation.

A simulation has many stochastic components: flow arrival times, flow
sizes, source/destination choice, ECMP hash salts, model weight
initialization.  If they all shared one generator, adding a single extra
draw anywhere would reshuffle everything downstream and silently change
every experiment.  Instead each component asks for a *named* stream; the
stream's seed is derived from the master seed and the name, so streams
are mutually independent and individually stable.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """Factory of named, independently seeded ``numpy`` generators.

    Examples
    --------
    >>> streams = RandomStreams(42)
    >>> a = streams.stream("arrivals")
    >>> b = streams.stream("sizes")
    >>> a is streams.stream("arrivals")  # cached per name
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (and cache) the generator for ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self.derive_seed(name))
        return self._streams[name]

    def derive_seed(self, name: str) -> int:
        """Derive a stable 64-bit seed from the master seed and a name.

        Uses SHA-256 rather than Python's ``hash`` because the latter is
        salted per-process and would destroy reproducibility.
        """
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child stream factory (e.g. one per PDES partition)."""
        return RandomStreams(self.derive_seed(f"spawn:{name}"))
