"""Simulation-time-aware logging.

Debugging a DES with wall-clock log timestamps is useless — what
matters is *simulated* time.  :func:`get_sim_logger` returns a standard
:mod:`logging` adapter that prefixes every record with the simulator's
current time (and the emitting component), so ordinary ``logger.debug``
calls inside entities produce readable event narratives:

    [t=0.001234567] tor-c0-0: forwarding seq=2920 to agg-c0-1

Logging is entirely opt-in and costs nothing when the level is off
(standard ``logging`` short-circuiting applies).
"""

from __future__ import annotations

import logging
from typing import Any, MutableMapping, Optional

from repro.des.kernel import Simulator


class SimTimeAdapter(logging.LoggerAdapter):
    """Prefixes records with ``[t=<sim time>]`` and a component name."""

    def __init__(
        self,
        logger: logging.Logger,
        sim: Simulator,
        component: Optional[str] = None,
    ) -> None:
        super().__init__(logger, extra={})
        self.sim = sim
        self.component = component

    def process(
        self, msg: Any, kwargs: MutableMapping[str, Any]
    ) -> tuple[str, MutableMapping[str, Any]]:
        prefix = f"[t={self.sim.now:.9f}]"
        if self.component:
            prefix = f"{prefix} {self.component}:"
        return f"{prefix} {msg}", kwargs

    def for_component(self, component: str) -> "SimTimeAdapter":
        """A child adapter tagged with a component name."""
        return SimTimeAdapter(self.logger, self.sim, component=component)


def get_sim_logger(
    sim: Simulator, name: str = "repro", component: Optional[str] = None
) -> SimTimeAdapter:
    """The standard way to obtain a simulation logger.

    Examples
    --------
    >>> from repro.des import Simulator
    >>> sim = Simulator()
    >>> log = get_sim_logger(sim, component="tor-0")
    >>> log.debug("queue length %d", 3)  # emits when level enabled
    """
    return SimTimeAdapter(logging.getLogger(name), sim, component=component)
