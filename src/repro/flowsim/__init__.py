"""Flow-level (fluid) simulation baseline.

Section 2.1 and the related work discuss flow-level simulators as the
classic way to trade granularity for speed: they "can provide insight
into the general behavior of the system, but miss out on many important
network effects, particularly in the presence of bursty traffic."

This package implements that baseline: flows are fluid streams on
fixed (ECMP-chosen) paths; bandwidth is shared max-min fairly; the
simulation is event-driven over flow arrivals and completions only.
It is used by ablation A3 to quantify the accuracy/speed trade the
paper positions itself against.
"""

from repro.flowsim.epoch import EpochFlowSimulator
from repro.flowsim.maxmin import max_min_fair_rates
from repro.flowsim.simulator import (
    FlowLevelSimulator,
    FlowResult,
    FlowSpec,
    validate_flow_spec,
    validate_flow_specs,
)

__all__ = [
    "EpochFlowSimulator",
    "FlowLevelSimulator",
    "FlowResult",
    "FlowSpec",
    "max_min_fair_rates",
    "validate_flow_spec",
    "validate_flow_specs",
]
