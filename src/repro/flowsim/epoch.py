"""Epoch-steppable fluid engine for the cascade's lowest tier.

:class:`EpochFlowSimulator` is the online form of
:class:`~repro.flowsim.simulator.FlowLevelSimulator`: instead of
consuming a complete workload in one ``run()`` call, flows are
``admit()``-ed as the enclosing DES generates them and the fluid state
is advanced to the DES clock with ``step_to()`` at every cascade epoch
boundary.  Completions are surfaced through the ``on_completion``
callback as they are discovered, so the cascade's sliding fidelity
windows see fluid FCTs with the same online discipline as packet FCTs.

``extract()`` is the tier-handoff primitive: it removes the in-flight
flows a promotion decision reassigns to the packet world and reports
their remaining bytes, so the receiving tier can resume them rather
than restart them.

Rates are recomputed lazily (only when the active set changed since the
last query) over the *used* links only — on a 128-cluster fabric the
background tier touches a few hundred of the tens of thousands of
directed links, and progressive filling cost scales with the dict it is
given.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.flowsim.maxmin import max_min_fair_rates
from repro.flowsim.simulator import (
    FlowResult,
    FlowSpec,
    _ActiveFlow,
    validate_flow_spec,
)
from repro.topology.graph import Topology
from repro.topology.routing import EcmpRouting, ecmp_hash, name_key


class EpochFlowSimulator:
    """Max-min fluid simulation driven by an external clock.

    Parameters
    ----------
    topology:
        The network; per-direction link capacities come from it.
    routing:
        ECMP tables (computed if omitted).  Pass the enclosing
        network's tables so fluid flows take exactly the path their
        packet incarnation would.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; publishes
        ``flowsim.flows_completed`` and ``flowsim.rate_recomputes``.
    validate:
        Validate every admitted spec (default).  Off for callers that
        already validated (``FlowLevelSimulator.run`` batch mode).
    """

    def __init__(
        self,
        topology: Topology,
        routing: Optional[EcmpRouting] = None,
        metrics=None,
        validate: bool = True,
    ) -> None:
        self.topology = topology
        self.routing = routing or EcmpRouting(topology)
        self._validate = validate
        self._capacities: dict[tuple[str, str], float] = {}
        for link in topology.links:
            self._capacities[(link.a, link.b)] = link.rate_bps
            self._capacities[(link.b, link.a)] = link.rate_bps
        self.now = 0.0
        self._active: dict[int, _ActiveFlow] = {}
        self._rates_dirty = True
        #: Called with each :class:`FlowResult` as its completion is
        #: discovered during ``step_to``/``run_to_completion``.
        self.on_completion: Optional[Callable[[FlowResult], None]] = None
        self.flows_admitted = 0
        self.flows_completed = 0
        self.bytes_admitted = 0
        self.rate_recomputations = 0
        registry = metrics
        self._completed_counter = (
            registry.counter("flowsim.flows_completed") if registry else None
        )
        self._recompute_counter = (
            registry.counter("flowsim.rate_recomputes") if registry else None
        )

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        """Flows admitted and not yet completed or extracted."""
        return len(self._active)

    def active_specs(self) -> list[FlowSpec]:
        """Specs of the in-flight flows (admission order)."""
        return [flow.spec for flow in self._active.values()]

    def _flow_links(self, spec: FlowSpec) -> list[tuple[str, str]]:
        """Directed links on the flow's policy-chosen path.

        The hash basis is the packet tier's ``Packet.flow_hash()``:
        (src, dst, src_port, dst_port).  Specs that carry their real
        port pair (tier handoffs do) therefore charge exactly the links
        the packet flow will traverse after a flowsim→hybrid handoff.
        Legacy specs without ports fall back to a synthetic
        ``10_000 + flow_id`` source port — deterministic, but only
        coincidentally aligned with :meth:`Host.allocate_port`.
        """
        src_port = spec.src_port if spec.src_port else 10_000 + spec.flow_id
        flow_hash = ecmp_hash(
            name_key(spec.src), name_key(spec.dst), src_port, spec.dst_port
        )
        path = self.routing.path(spec.src, spec.dst, flow_hash)
        return list(zip(path[:-1], path[1:]))

    # ------------------------------------------------------------------
    def admit(self, spec: FlowSpec) -> None:
        """Add a flow; fluid time first advances to its start time.

        Admissions must be non-decreasing in ``start_time`` relative to
        the engine clock (the DES generates arrivals in order), and
        flow ids must be unique among flows ever admitted live.
        """
        if self._validate:
            validate_flow_spec(spec, self.topology)
        if spec.flow_id in self._active:
            raise ValueError(f"duplicate flow id {spec.flow_id} admitted")
        if spec.start_time < self.now:
            raise ValueError(
                f"flow {spec.flow_id} starts at {spec.start_time} but fluid "
                f"time is already {self.now}; admissions must be in order"
            )
        self.step_to(spec.start_time)
        flow = _ActiveFlow(spec, self._flow_links(spec))
        if spec.size_bytes <= 0:
            # Reachable only with validate=False; refuse the silent
            # zero-duration completion either way.
            raise ValueError(f"flow {spec.flow_id} has non-positive size")
        self._active[spec.flow_id] = flow
        self.flows_admitted += 1
        self.bytes_admitted += spec.size_bytes
        self._rates_dirty = True

    def resume(self, spec: FlowSpec, remaining_bytes: float) -> None:
        """Admit a flow mid-transfer (demotion handoff): only
        ``remaining_bytes`` of it are still to be drained."""
        self.admit(spec)
        flow = self._active[spec.flow_id]
        flow.remaining_bits = max(float(remaining_bytes) * 8.0, 0.0)

    # ------------------------------------------------------------------
    def step_to(self, t: float) -> list[FlowResult]:
        """Advance fluid time to ``t``, draining completions on the way.

        Completions strictly before ``t`` are emitted (ties with an
        arrival at exactly ``t`` resolve arrival-first, matching the
        batch simulator's event order).  Returns the completions in
        occurrence order; each is also passed to ``on_completion``.
        """
        if t < self.now:
            raise ValueError(f"cannot step backwards: {t} < now={self.now}")
        drained: list[FlowResult] = []
        while True:
            self._refresh_rates()
            completion_time, completing = self._earliest_completion()
            if completion_time is None or completion_time >= t:
                self._advance(t - self.now)
                self.now = t
                break
            assert completing is not None
            self._advance(completion_time - self.now)
            self.now = completion_time
            flow = self._active.pop(completing)
            self._rates_dirty = True
            result = FlowResult(spec=flow.spec, completion_time=self.now)
            drained.append(result)
            self.flows_completed += 1
            if self._completed_counter is not None:
                self._completed_counter.inc()
            if self.on_completion is not None:
                self.on_completion(result)
        return drained

    def run_to_completion(self) -> list[FlowResult]:
        """Drain every remaining flow (no time bound)."""
        drained: list[FlowResult] = []
        while self._active:
            self._refresh_rates()
            completion_time, completing = self._earliest_completion()
            if completion_time is None:
                # All remaining flows are rate-starved; nothing can
                # ever complete — surface it instead of spinning.
                raise RuntimeError(
                    f"{len(self._active)} flows have zero rate and cannot complete"
                )
            assert completing is not None
            self._advance(completion_time - self.now)
            self.now = max(self.now, completion_time)
            flow = self._active.pop(completing)
            self._rates_dirty = True
            result = FlowResult(spec=flow.spec, completion_time=completion_time)
            drained.append(result)
            self.flows_completed += 1
            if self._completed_counter is not None:
                self._completed_counter.inc()
            if self.on_completion is not None:
                self.on_completion(result)
        return drained

    # ------------------------------------------------------------------
    def extract(
        self, predicate: Callable[[FlowSpec], bool]
    ) -> list[tuple[FlowSpec, float]]:
        """Remove matching in-flight flows for a tier handoff.

        Returns ``(spec, remaining_bytes)`` pairs in admission order.
        The flows are no longer simulated here; the caller owns them.
        """
        matched = [
            flow for flow in self._active.values() if predicate(flow.spec)
        ]
        for flow in matched:
            del self._active[flow.spec.flow_id]
        if matched:
            self._rates_dirty = True
        return [(flow.spec, flow.remaining_bits / 8.0) for flow in matched]

    # ------------------------------------------------------------------
    def _refresh_rates(self) -> None:
        if not self._rates_dirty or not self._active:
            self._rates_dirty = False
            return
        self._rates_dirty = False
        self.rate_recomputations += 1
        if self._recompute_counter is not None:
            self._recompute_counter.inc()
        flows = list(self._active.values())
        # Progressive filling over the links actually crossed: the
        # allocation is identical (untouched links never bind) but the
        # cost tracks the active working set, not the fabric size.
        used: dict[tuple[str, str], float] = {}
        for flow in flows:
            for link in flow.links:
                if link not in used:
                    used[link] = self._capacities[link]
        rates = max_min_fair_rates([f.links for f in flows], used)
        for flow, rate in zip(flows, rates):
            flow.rate = rate

    def _earliest_completion(self) -> tuple[Optional[float], Optional[int]]:
        best_time: Optional[float] = None
        best_id: Optional[int] = None
        now = self.now
        for flow_id, flow in self._active.items():
            if flow.rate <= 0:
                continue
            t = now + flow.remaining_bits / flow.rate
            if best_time is None or t < best_time:
                best_time = t
                best_id = flow_id
        return best_time, best_id

    def _advance(self, dt: float) -> None:
        if dt <= 0:
            return
        for flow in self._active.values():
            flow.remaining_bits = max(flow.remaining_bits - flow.rate * dt, 0.0)
