"""Max-min fair rate allocation by progressive filling.

Given flows with fixed paths over capacitated links, progressive
filling raises every unfrozen flow's rate uniformly until some link
saturates, freezes the flows crossing it at their fair share, removes
the link, and repeats.  The result is the unique max-min fair
allocation (Bertsekas & Gallager).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

LinkId = Hashable


def max_min_fair_rates(
    flow_links: Sequence[Sequence[LinkId]],
    capacities: Mapping[LinkId, float],
) -> list[float]:
    """Compute max-min fair rates.

    Parameters
    ----------
    flow_links:
        For each flow, the links it crosses (directed link ids).
    capacities:
        Capacity per link id (bits/s).

    Returns
    -------
    Per-flow rates in the same order as ``flow_links``.  Flows with an
    empty link list (e.g. same-host transfers) get ``inf``.
    """
    n = len(flow_links)
    rates = [0.0] * n
    unfrozen: set[int] = set()
    for i, links in enumerate(flow_links):
        if links:
            unfrozen.add(i)
        else:
            rates[i] = float("inf")
    remaining = {link: float(cap) for link, cap in capacities.items()}
    link_flows: dict[LinkId, set[int]] = {}
    for i in unfrozen:
        for link in flow_links[i]:
            if link not in remaining:
                raise KeyError(f"flow {i} crosses unknown link {link!r}")
            link_flows.setdefault(link, set()).add(i)

    while unfrozen:
        # The bottleneck is the link with the smallest fair share.
        bottleneck = None
        bottleneck_share = float("inf")
        for link, flows in link_flows.items():
            active = len(flows)
            if active == 0:
                continue
            share = remaining[link] / active
            if share < bottleneck_share:
                bottleneck_share = share
                bottleneck = link
        if bottleneck is None:
            # No capacity constraint binds the remaining flows.
            for i in unfrozen:
                rates[i] = float("inf")
            break
        frozen_now = list(link_flows[bottleneck])
        for i in frozen_now:
            rates[i] = bottleneck_share
            unfrozen.discard(i)
            for link in flow_links[i]:
                remaining[link] -= bottleneck_share
                link_flows[link].discard(i)
        # Guard against tiny negative residue from float subtraction.
        remaining[bottleneck] = max(remaining[bottleneck], 0.0)
    return rates
