"""Max-min fair rate allocation by progressive filling.

Given flows with fixed paths over capacitated links, progressive
filling raises every unfrozen flow's rate uniformly until some link
saturates, freezes the flows crossing it at their fair share, removes
the link, and repeats.  The result is the unique max-min fair
allocation (Bertsekas & Gallager).
"""

from __future__ import annotations

import heapq
from typing import Hashable, Mapping, Sequence

LinkId = Hashable


def max_min_fair_rates(
    flow_links: Sequence[Sequence[LinkId]],
    capacities: Mapping[LinkId, float],
) -> list[float]:
    """Compute max-min fair rates.

    Parameters
    ----------
    flow_links:
        For each flow, the links it crosses (directed link ids).
    capacities:
        Capacity per link id (bits/s).

    Returns
    -------
    Per-flow rates in the same order as ``flow_links``.  Flows with an
    empty link list (e.g. same-host transfers) get ``inf``.
    """
    n = len(flow_links)
    rates = [0.0] * n
    unfrozen: set[int] = set()
    for i, links in enumerate(flow_links):
        if links:
            unfrozen.add(i)
        else:
            rates[i] = float("inf")
    remaining = {link: float(cap) for link, cap in capacities.items()}
    link_flows: dict[LinkId, set[int]] = {}
    for i in unfrozen:
        for link in flow_links[i]:
            if link not in remaining:
                raise KeyError(f"flow {i} crosses unknown link {link!r}")
            link_flows.setdefault(link, set()).add(i)

    # Lazy min-heap over link fair shares: scanning every link per
    # freeze round is O(links^2) and dominates the fluid engine on
    # large fabrics.  Heap entries carry the share they were computed
    # at; a popped entry whose share no longer matches the link's
    # current value is stale (a fresh entry was pushed when the link
    # last changed) and is simply discarded.  The entry counter breaks
    # share ties by push order, keeping the bottleneck choice
    # deterministic without comparing link ids.
    counter = 0
    heap: list[tuple[float, int, LinkId]] = []
    for link, flows in link_flows.items():
        heap.append((remaining[link] / len(flows), counter, link))
        counter += 1
    heapq.heapify(heap)

    while unfrozen and heap:
        bottleneck_share, _, bottleneck = heapq.heappop(heap)
        flows = link_flows.get(bottleneck)
        if not flows or remaining[bottleneck] / len(flows) != bottleneck_share:
            continue  # stale entry
        frozen_now = list(flows)
        touched: set[LinkId] = set()
        for i in frozen_now:
            rates[i] = bottleneck_share
            unfrozen.discard(i)
            for link in flow_links[i]:
                remaining[link] -= bottleneck_share
                link_flows[link].discard(i)
                touched.add(link)
        # Guard against tiny negative residue from float subtraction.
        remaining[bottleneck] = max(remaining[bottleneck], 0.0)
        for link in touched:
            flows = link_flows[link]
            if flows:
                heapq.heappush(
                    heap, (remaining[link] / len(flows), counter, link)
                )
                counter += 1
            else:
                del link_flows[link]
    # Any flows left unfrozen cross only links that never bind.
    for i in unfrozen:
        rates[i] = float("inf")
    return rates
