"""Event-driven fluid flow-level simulator.

Events are flow arrivals and flow completions only — no packets, no
queues, no TCP.  Between consecutive events every active flow drains at
its max-min fair rate; rates are recomputed whenever the active set
changes.  Complexity is O(events x links), orders of magnitude below
packet DES — and correspondingly blind to queuing delay, drops, and
burst effects, which is the trade the paper criticizes.

Flows follow the same ECMP-hash-selected path the packet simulator
would pick, so the two simulators are directly comparable per flow.
"""

from __future__ import annotations

import math
import time as _wallclock
from dataclasses import dataclass
from typing import Optional

from repro.topology.graph import NodeRole, Topology
from repro.topology.routing import EcmpRouting


@dataclass(frozen=True)
class FlowSpec:
    """One flow to simulate: endpoints, size, arrival time, and ports.

    ``src_port``/``dst_port`` carry the flow's real transport ports so
    the fluid tier hashes onto the *same* path the packet tier would
    take after a handoff.  ``src_port=0`` (legacy specs) falls back to
    the synthetic ``10_000 + flow_id`` port, which only matches the
    per-host counter by accident — tier handoffs must populate it.
    """

    flow_id: int
    src: str
    dst: str
    size_bytes: int
    start_time: float
    src_port: int = 0
    dst_port: int = 80


@dataclass
class FlowResult:
    """Outcome of one simulated flow."""

    spec: FlowSpec
    completion_time: float

    @property
    def fct(self) -> float:
        """Flow completion time in seconds."""
        return self.completion_time - self.spec.start_time


def validate_flow_spec(
    spec: FlowSpec,
    topology: Topology,
    routing: Optional[EcmpRouting] = None,
) -> None:
    """Reject malformed flows before they reach the rate solver.

    Checks size, start time, and routability (both endpoints must be
    distinct servers of ``topology``; with ``routing`` given, a route
    must actually exist).  Raises ``ValueError`` with the offending
    field named — previously a zero-byte flow silently completed with
    a zero-duration FCT and an unknown endpoint surfaced as a
    ``KeyError`` deep inside the rate recomputation.
    """
    if spec.size_bytes <= 0:
        raise ValueError(
            f"flow {spec.flow_id}: size_bytes must be positive, got {spec.size_bytes}"
        )
    if not math.isfinite(spec.start_time) or spec.start_time < 0:
        raise ValueError(
            f"flow {spec.flow_id}: start_time must be finite and >= 0, "
            f"got {spec.start_time}"
        )
    for label, endpoint in (("src", spec.src), ("dst", spec.dst)):
        if endpoint not in topology:
            raise ValueError(
                f"flow {spec.flow_id}: {label} {endpoint!r} is not in the topology"
            )
        if topology.node(endpoint).role is not NodeRole.SERVER:
            raise ValueError(
                f"flow {spec.flow_id}: {label} {endpoint!r} is a "
                f"{topology.node(endpoint).role.value}, not a server — unroutable"
            )
    if spec.src == spec.dst:
        raise ValueError(
            f"flow {spec.flow_id}: src == dst ({spec.src!r}); same-host "
            "transfers have no network path"
        )
    if routing is not None:
        try:
            routing.distance(spec.src, spec.dst)
        except KeyError as error:
            raise ValueError(
                f"flow {spec.flow_id}: no route {spec.src!r} -> {spec.dst!r}"
            ) from error


def validate_flow_specs(
    flows: list[FlowSpec],
    topology: Topology,
    routing: Optional[EcmpRouting] = None,
) -> None:
    """Validate a whole workload: per-flow checks plus unique ids."""
    if len({f.flow_id for f in flows}) != len(flows):
        raise ValueError("duplicate flow ids in workload")
    for spec in flows:
        validate_flow_spec(spec, topology, routing)


class _ActiveFlow:
    """Mutable progress state of an in-flight fluid flow."""

    __slots__ = ("spec", "remaining_bits", "rate", "links")

    def __init__(self, spec: FlowSpec, links: list[tuple[str, str]]) -> None:
        self.spec = spec
        self.remaining_bits = spec.size_bytes * 8.0
        self.rate = 0.0
        self.links = links


class FlowLevelSimulator:
    """Max-min fluid simulation over a topology.

    Parameters
    ----------
    topology:
        The network; per-direction link capacities come from it.
    routing:
        ECMP tables (computed if omitted).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; runs publish
        ``flowsim.flows_completed`` and ``flowsim.rate_recomputes``.
    """

    def __init__(
        self,
        topology: Topology,
        routing: Optional[EcmpRouting] = None,
        metrics=None,
    ) -> None:
        self.topology = topology
        self.routing = routing or EcmpRouting(topology)
        self.metrics = metrics
        self.wallclock_elapsed = 0.0
        self.rate_recomputations = 0

    def run(self, flows: list[FlowSpec]) -> list[FlowResult]:
        """Simulate all flows to completion; returns results by flow.

        The whole workload is validated up front (unique ids, positive
        sizes, non-negative start times, routable server endpoints) —
        ``ValueError`` names the offending flow and field.

        Implemented as a batch drive of the epoch-steppable engine
        (:class:`~repro.flowsim.epoch.EpochFlowSimulator`), so batch
        and online runs of the same workload are event-identical by
        construction.
        """
        from repro.flowsim.epoch import EpochFlowSimulator

        started = _wallclock.perf_counter()
        validate_flow_specs(flows, self.topology, self.routing)
        engine = EpochFlowSimulator(
            self.topology, self.routing, metrics=self.metrics, validate=False
        )
        results: list[FlowResult] = []
        engine.on_completion = results.append
        for spec in sorted(flows, key=lambda f: (f.start_time, f.flow_id)):
            engine.admit(spec)
        engine.run_to_completion()
        self.rate_recomputations += engine.rate_recomputations
        self.wallclock_elapsed += _wallclock.perf_counter() - started
        return sorted(results, key=lambda r: r.spec.flow_id)
