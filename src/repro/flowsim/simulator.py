"""Event-driven fluid flow-level simulator.

Events are flow arrivals and flow completions only — no packets, no
queues, no TCP.  Between consecutive events every active flow drains at
its max-min fair rate; rates are recomputed whenever the active set
changes.  Complexity is O(events x links), orders of magnitude below
packet DES — and correspondingly blind to queuing delay, drops, and
burst effects, which is the trade the paper criticizes.

Flows follow the same ECMP-hash-selected path the packet simulator
would pick, so the two simulators are directly comparable per flow.
"""

from __future__ import annotations

import heapq
import time as _wallclock
from dataclasses import dataclass
from typing import Optional

from repro.topology.graph import Topology
from repro.topology.routing import EcmpRouting, ecmp_hash, name_key
from repro.flowsim.maxmin import max_min_fair_rates


@dataclass(frozen=True)
class FlowSpec:
    """One flow to simulate: endpoints, size, and arrival time."""

    flow_id: int
    src: str
    dst: str
    size_bytes: int
    start_time: float


@dataclass
class FlowResult:
    """Outcome of one simulated flow."""

    spec: FlowSpec
    completion_time: float

    @property
    def fct(self) -> float:
        """Flow completion time in seconds."""
        return self.completion_time - self.spec.start_time


class _ActiveFlow:
    """Mutable progress state of an in-flight fluid flow."""

    __slots__ = ("spec", "remaining_bits", "rate", "links")

    def __init__(self, spec: FlowSpec, links: list[tuple[str, str]]) -> None:
        self.spec = spec
        self.remaining_bits = spec.size_bytes * 8.0
        self.rate = 0.0
        self.links = links


class FlowLevelSimulator:
    """Max-min fluid simulation over a topology.

    Parameters
    ----------
    topology:
        The network; per-direction link capacities come from it.
    routing:
        ECMP tables (computed if omitted).
    """

    def __init__(self, topology: Topology, routing: Optional[EcmpRouting] = None) -> None:
        self.topology = topology
        self.routing = routing or EcmpRouting(topology)
        self._capacities: dict[tuple[str, str], float] = {}
        for link in topology.links:
            self._capacities[(link.a, link.b)] = link.rate_bps
            self._capacities[(link.b, link.a)] = link.rate_bps
        self.wallclock_elapsed = 0.0
        self.rate_recomputations = 0

    def _flow_links(self, spec: FlowSpec) -> list[tuple[str, str]]:
        """Directed links on the flow's ECMP path."""
        flow_hash = ecmp_hash(
            name_key(spec.src), name_key(spec.dst), 10_000 + spec.flow_id, 80
        )
        path = self.routing.path(spec.src, spec.dst, flow_hash)
        return list(zip(path[:-1], path[1:]))

    def run(self, flows: list[FlowSpec]) -> list[FlowResult]:
        """Simulate all flows to completion; returns results by flow.

        Raises ``ValueError`` on duplicate flow ids.
        """
        started = _wallclock.perf_counter()
        if len({f.flow_id for f in flows}) != len(flows):
            raise ValueError("duplicate flow ids in workload")
        arrivals = sorted(flows, key=lambda f: (f.start_time, f.flow_id))
        results: list[FlowResult] = []
        active: dict[int, _ActiveFlow] = {}
        now = 0.0
        next_arrival = 0

        while next_arrival < len(arrivals) or active:
            self._recompute_rates(active)
            completion_time, completing = self._earliest_completion(active, now)
            arrival_time = (
                arrivals[next_arrival].start_time if next_arrival < len(arrivals) else None
            )
            if arrival_time is not None and (
                completion_time is None or arrival_time <= completion_time
            ):
                # Drain everyone up to the arrival, then admit the flow.
                self._advance(active, arrival_time - now)
                now = arrival_time
                spec = arrivals[next_arrival]
                next_arrival += 1
                active[spec.flow_id] = _ActiveFlow(spec, self._flow_links(spec))
            else:
                assert completion_time is not None and completing is not None
                self._advance(active, completion_time - now)
                now = completion_time
                flow = active.pop(completing)
                results.append(FlowResult(spec=flow.spec, completion_time=now))
        self.wallclock_elapsed += _wallclock.perf_counter() - started
        return sorted(results, key=lambda r: r.spec.flow_id)

    # ------------------------------------------------------------------
    def _recompute_rates(self, active: dict[int, _ActiveFlow]) -> None:
        if not active:
            return
        self.rate_recomputations += 1
        flows = list(active.values())
        rates = max_min_fair_rates([f.links for f in flows], self._capacities)
        for flow, rate in zip(flows, rates):
            flow.rate = rate

    @staticmethod
    def _earliest_completion(
        active: dict[int, _ActiveFlow], now: float
    ) -> tuple[Optional[float], Optional[int]]:
        best_time: Optional[float] = None
        best_id: Optional[int] = None
        for flow_id, flow in active.items():
            if flow.rate <= 0:
                continue
            t = now + flow.remaining_bits / flow.rate
            if best_time is None or t < best_time:
                best_time = t
                best_id = flow_id
        return best_time, best_id

    @staticmethod
    def _advance(active: dict[int, _ActiveFlow], dt: float) -> None:
        if dt <= 0:
            return
        for flow in active.values():
            flow.remaining_bits = max(flow.remaining_bits - flow.rate * dt, 0.0)
