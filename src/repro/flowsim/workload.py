"""Workload pre-generation shared by flow-level, PDES, and packet runs.

The PDES engine needs the complete flow schedule up front (flows span
partitions and processes), and fair cross-simulator comparisons need
all simulators to see the *identical* workload.  This module samples a
deterministic flow list once, which any engine can then consume.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.des.rng import RandomStreams
from repro.flowsim.simulator import FlowSpec
from repro.topology.graph import Topology
from repro.traffic.arrivals import PoissonArrivals, arrival_rate_for_load
from repro.traffic.distributions import EmpiricalSizeDistribution
from repro.traffic.matrix import TrafficMatrix, UniformMatrix


def generate_workload(
    topology: Topology,
    duration_s: float,
    load: float,
    sizes: EmpiricalSizeDistribution,
    seed: int,
    link_rate_bps: float = 10e9,
    matrix: TrafficMatrix | None = None,
) -> list[FlowSpec]:
    """Sample a complete flow schedule.

    Uses the same named RNG streams as the live
    :class:`~repro.traffic.apps.TrafficGenerator` so a pre-generated
    schedule and a live generator with the same seed describe the same
    stochastic workload family (not packet-for-packet identical — the
    live generator interleaves draws with simulation — but identically
    distributed and internally deterministic).
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    streams = RandomStreams(seed)
    arrival_rng = streams.stream("traffic.arrivals")
    pair_rng = streams.stream("traffic.pairs")
    size_rng = streams.stream("traffic.sizes")
    matrix = matrix or UniformMatrix(topology)
    num_servers = len(topology.servers())
    rate = arrival_rate_for_load(load, num_servers, link_rate_bps, sizes.mean())
    arrivals = PoissonArrivals(rate)

    flows: list[FlowSpec] = []
    for flow_id, start in enumerate(arrivals.arrival_times(arrival_rng, duration_s)):
        src, dst = matrix.sample_pair(pair_rng)
        size = max(int(sizes.sample(size_rng)), 1)
        flows.append(
            FlowSpec(flow_id=flow_id, src=src, dst=dst, size_bytes=size, start_time=start)
        )
    return flows


def save_workload(flows: list[FlowSpec], path: str | Path) -> None:
    """Persist a flow schedule as JSON.

    A saved schedule pins an experiment's workload exactly — across
    simulators, machines, and future versions of the samplers — which
    is stronger than pinning the seed.
    """
    rows = [
        {
            "flow_id": f.flow_id,
            "src": f.src,
            "dst": f.dst,
            "size_bytes": f.size_bytes,
            "start_time": f.start_time,
        }
        for f in flows
    ]
    Path(path).write_text(json.dumps(rows, indent=1))


def load_workload(path: str | Path) -> list[FlowSpec]:
    """Inverse of :func:`save_workload`; validates flow-id uniqueness."""
    rows = json.loads(Path(path).read_text())
    flows = [FlowSpec(**row) for row in rows]
    ids = [f.flow_id for f in flows]
    if len(set(ids)) != len(ids):
        raise ValueError(f"workload file {path} contains duplicate flow ids")
    return flows
