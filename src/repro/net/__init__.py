"""Packet-level network substrate (the OMNeT++/INET substitute).

Builds DES entities out of a :class:`~repro.topology.Topology`:

* :class:`Packet` — TCP/IP segments with the header fields the
  simulator and the ML feature extractor need.
* :class:`Port` — output link with drop-tail queue, serialization at
  line rate, and propagation delay.
* :class:`Switch` — output-queued ECMP-forwarding switch with optional
  ECN marking.
* :class:`Host` — server endpoint that owns TCP connections.
* :class:`Network` — assembles all of the above from a topology and
  routing table, with packet-tap hooks used for trace capture.
"""

from repro.net.packet import Packet, TcpFlags
from repro.net.port import Port, PortStats
from repro.net.switch import Switch
from repro.net.host import Host
from repro.net.network import Network, NetworkConfig

__all__ = [
    "Host",
    "Network",
    "NetworkConfig",
    "Packet",
    "Port",
    "PortStats",
    "Switch",
    "TcpFlags",
]
