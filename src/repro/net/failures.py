"""Deterministic link-failure and recovery injection.

A scenario declares ``(time, link)`` events; the injector schedules
them on the simulator, flips the link state on the routing policy
(which rebuilds its tables), and records each applied event both as a
trace event (``link.fail`` / ``link.recover``) and in an ``applied``
list that run manifests surface.

Events are plain data — no randomness is involved — so same-seed runs
with the same failure spec replay identically, which is what lets the
determinism matrix test compare signatures across reruns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.des.kernel import Simulator
from repro.topology.routing import EcmpRouting

_ACTIONS = ("down", "up")


@dataclass(frozen=True)
class LinkFailure:
    """One scheduled link state change.

    ``action`` is ``"down"`` (fail) or ``"up"`` (recover).
    """

    time: float
    a: str
    b: str
    action: str = "down"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"failure time must be >= 0, got {self.time}")
        if self.action not in _ACTIONS:
            raise ValueError(f"failure action must be one of {_ACTIONS}, got {self.action!r}")


def normalize_failures(raw: object) -> tuple[LinkFailure, ...]:
    """Coerce spec-file failure entries into :class:`LinkFailure` tuples.

    Accepts ``LinkFailure`` instances, ``{"time": ..., "link": [a, b],
    "action": ...}`` dicts, or ``(time, a, b[, action])`` sequences,
    sorted by (time, endpoints, action) so the schedule is independent
    of spec-file ordering.
    """
    if raw is None:
        return ()
    if not isinstance(raw, (list, tuple)):
        raise TypeError(f"failures must be a list, got {type(raw).__name__}")
    events: list[LinkFailure] = []
    for entry in raw:
        if isinstance(entry, LinkFailure):
            events.append(entry)
        elif isinstance(entry, dict):
            unknown = set(entry) - {"time", "link", "action"}
            if unknown:
                raise ValueError(f"unknown failure keys: {sorted(unknown)}")
            link = entry.get("link")
            if not isinstance(link, (list, tuple)) or len(link) != 2:
                raise ValueError(f"failure 'link' must be a [a, b] pair, got {link!r}")
            events.append(
                LinkFailure(
                    time=float(entry["time"]),
                    a=str(link[0]),
                    b=str(link[1]),
                    action=str(entry.get("action", "down")),
                )
            )
        elif isinstance(entry, (list, tuple)) and len(entry) in (3, 4):
            time, a, b = entry[0], entry[1], entry[2]
            action = entry[3] if len(entry) == 4 else "down"
            events.append(LinkFailure(time=float(time), a=str(a), b=str(b), action=str(action)))
        else:
            raise ValueError(f"cannot parse failure entry {entry!r}")
    events.sort(key=lambda e: (e.time, e.a, e.b, e.action))
    return tuple(events)


class FailureInjector:
    """Schedules link failures against a simulator and routing policy.

    Validates every referenced link against the topology up front (a
    typo in a spec fails at construction, not mid-run) and schedules
    one event per entry.  ``applied`` accumulates the events that have
    fired, in order, as manifest-ready dicts.
    """

    def __init__(
        self,
        sim: Simulator,
        routing: EcmpRouting,
        failures: Sequence[LinkFailure],
        tracer=None,
    ) -> None:
        self.sim = sim
        self.routing = routing
        self.failures = normalize_failures(list(failures))
        self.tracer = tracer
        self.applied: list[dict] = []
        topology = routing.topology
        for event in self.failures:
            try:
                topology.link_between(event.a, event.b)
            except KeyError:
                raise ValueError(
                    f"failure spec references nonexistent link "
                    f"{event.a!r}-{event.b!r}"
                ) from None
        for event in self.failures:
            sim.schedule_at(event.time, self._make_apply(event), priority=-10)

    def _make_apply(self, event: LinkFailure):
        def apply() -> None:
            changed = self.routing.set_link_state(event.a, event.b, up=event.action == "up")
            record = {
                "time": event.time,
                "link": [event.a, event.b],
                "action": event.action,
                "changed": changed,
            }
            self.applied.append(record)
            if self.sim.metrics is not None:
                self.sim.metrics.counter(
                    "net.link_failure_events", action=event.action
                ).inc()
            if self.tracer is not None:
                self.tracer.event(
                    "link.fail" if event.action == "down" else "link.recover",
                    t=event.time,
                    link=[event.a, event.b],
                    changed=changed,
                )

        return apply

    def summary(self) -> list[dict]:
        """Applied events so far, manifest-ready."""
        return list(self.applied)
