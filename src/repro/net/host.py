"""Server endpoint.

A :class:`Host` owns one NIC port (to its ToR) and demultiplexes
arriving packets to TCP senders/receivers by connection key.  Flow
setup is simulation-level: :meth:`open_flow` creates the sender here
and the receiver on the destination host directly (no handshake — see
``repro.net.tcp``).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.des.entities import Entity
from repro.des.kernel import Simulator
from repro.des.monitors import Monitor
from repro.net.packet import Packet
from repro.net.port import Port
from repro.net.tcp.config import TcpConfig
from repro.net.tcp.receiver import TcpReceiver
from repro.net.tcp.sender import TcpSender

#: Connection demux key: (peer name, local port, remote port).
ConnKey = tuple[str, int, int]


class Host(Entity):
    """A server: one NIC, many TCP connections."""

    def __init__(self, sim: Simulator, name: str, tcp_config: TcpConfig) -> None:
        super().__init__(sim, name)
        self.tcp_config = tcp_config
        self.nic: Optional[Port] = None
        self._senders: dict[ConnKey, TcpSender] = {}
        self._receivers: dict[ConnKey, TcpReceiver] = {}
        self._port_counter = itertools.count(10_000)
        self.packets_received = 0
        self.unmatched_packets = 0
        #: RTT monitor shared by all senders on this host (assigned by
        #: the network assembler so experiments can scope it).
        self.rtt_monitor: Optional[Monitor] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_nic(self, port: Port) -> None:
        """Attach the single uplink port (to the ToR or cluster model)."""
        if self.nic is not None:
            raise ValueError(f"{self.name}: NIC already attached")
        self.nic = port

    def transmit(self, packet: Packet) -> None:
        """Send a packet out the NIC (called by TCP)."""
        if self.nic is None:
            raise RuntimeError(f"{self.name}: transmit before NIC attached")
        self.nic.enqueue(packet)

    def allocate_port(self) -> int:
        """A fresh ephemeral port number, unique per host."""
        return next(self._port_counter)

    # ------------------------------------------------------------------
    # Flows
    # ------------------------------------------------------------------
    def open_flow(
        self,
        dst_host: "Host",
        total_bytes: int,
        on_complete: Optional[Callable[[float], None]] = None,
        dst_port: int = 80,
        src_port: Optional[int] = None,
    ) -> TcpSender:
        """Create sender (here) and receiver (at ``dst_host``) for a flow.

        Returns the sender; call :meth:`TcpSender.start` to begin.
        ``src_port`` pins an already-reserved ephemeral port (tier
        handoffs allocate it at diversion time so the fluid and packet
        tiers hash the flow identically); by default a fresh one is
        drawn from the per-host counter.
        """
        if src_port is None:
            src_port = self.allocate_port()
        sender = TcpSender(
            host=self,
            dst=dst_host.name,
            src_port=src_port,
            dst_port=dst_port,
            total_bytes=total_bytes,
            config=self.tcp_config,
            on_complete=on_complete,
            rtt_monitor=self.rtt_monitor,
        )
        receiver = TcpReceiver(
            host=dst_host,
            peer=self.name,
            src_port=dst_port,
            dst_port=src_port,
            config=dst_host.tcp_config,
        )
        self._senders[(dst_host.name, src_port, dst_port)] = sender
        dst_host._receivers[(self.name, dst_port, src_port)] = receiver
        return sender

    def register_sender(self, sender: TcpSender) -> None:
        """Register an externally constructed sender for ACK demux.

        Used when the two endpoints of a flow are created independently
        (PDES workers own disjoint partitions and cannot call
        :meth:`open_flow` across processes).
        """
        self._senders[(sender.dst, sender.src_port, sender.dst_port)] = sender

    def register_receiver(self, receiver: TcpReceiver) -> None:
        """Register an externally constructed receiver for data demux."""
        self._receivers[(receiver.peer, receiver.src_port, receiver.dst_port)] = receiver

    def close_flow(self, sender: TcpSender) -> None:
        """Remove a completed flow's demux entries (memory hygiene)."""
        self._senders.pop((sender.dst, sender.src_port, sender.dst_port), None)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, from_node: str) -> None:
        """Demultiplex an arriving packet to its connection."""
        self.packets_received += 1
        key: ConnKey = (packet.src, packet.dst_port, packet.src_port)
        if packet.is_ack_only():
            sender = self._senders.get(key)
            if sender is not None:
                sender.on_ack(packet)
                return
        receiver = self._receivers.get(key)
        if receiver is not None:
            receiver.on_data(packet)
            return
        # Late packets for closed flows land here; count, don't crash.
        self.unmatched_packets += 1

    # ------------------------------------------------------------------
    @property
    def active_senders(self) -> list[TcpSender]:
        """Senders that have started and not completed."""
        return [s for s in self._senders.values() if s.started_at is not None and not s.completed]
