"""Network assembly: topology -> live DES entities.

:class:`Network` instantiates a :class:`~repro.net.host.Host` per
server and a :class:`~repro.net.switch.Switch` per switch node, then
creates one :class:`~repro.net.port.Port` per *direction* of every
link.

Two hooks exist for the hybrid simulator:

* ``excluded_nodes`` — node names that get no entity and no outgoing
  ports (the fabric switches of approximated clusters);
* ``receiver_overrides`` — a mapping from node name to a replacement
  receiver: any port whose peer is listed delivers to the override
  instead (this is how server NICs and core switches are spliced onto
  an approximated-cluster model without them noticing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.des.kernel import Simulator
from repro.des.monitors import Counter, Monitor
from repro.net.host import Host
from repro.net.packet import Packet
from repro.net.port import DEFAULT_QUEUE_BYTES, Port, Receiver
from repro.net.switch import Switch
from repro.net.tcp.config import TcpConfig
from repro.topology.graph import NodeRole, Topology
from repro.topology.routing import EcmpRouting


@dataclass(frozen=True)
class NetworkConfig:
    """Network-wide parameters.

    Attributes
    ----------
    tcp:
        Protocol configuration shared by all hosts.
    queue_capacity_bytes:
        Drop-tail capacity of every switch/NIC output queue.
    ecn_threshold_bytes:
        Optional ECN marking threshold (None disables marking).
    """

    tcp: TcpConfig = field(default_factory=TcpConfig)
    queue_capacity_bytes: int = DEFAULT_QUEUE_BYTES
    ecn_threshold_bytes: Optional[int] = None


class Network:
    """Live simulation objects for a topology.

    Parameters
    ----------
    sim:
        The simulator to attach everything to.
    topology:
        The graph to instantiate.
    config:
        Protocol and queue parameters.
    routing:
        Precomputed ECMP tables; computed here if omitted.  The hybrid
        simulator passes the *full* topology's tables even though some
        switches are excluded — routing knowledge of the replaced
        region is a model input (paper Section 4.2).
    excluded_nodes:
        Nodes to skip entirely (no entity, no outgoing ports).
    receiver_overrides:
        name -> receiver object substitutions for port peers.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        config: Optional[NetworkConfig] = None,
        routing: Optional[EcmpRouting] = None,
        excluded_nodes: frozenset[str] | set[str] = frozenset(),
        receiver_overrides: Optional[Mapping[str, Receiver]] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.config = config or NetworkConfig()
        self.routing = routing or EcmpRouting(topology)
        self.excluded_nodes = frozenset(excluded_nodes)
        overrides = dict(receiver_overrides or {})

        self.drop_counter = Counter("drops")
        self.hosts: dict[str, Host] = {}
        self.switches: dict[str, Switch] = {}
        self._ports: dict[tuple[str, str], Port] = {}
        #: One RTT monitor per cluster id (None key = core-attached).
        self.rtt_monitors: dict[Optional[int], Monitor] = {}

        for node in topology.nodes:
            if node.name in self.excluded_nodes:
                continue
            if node.role is NodeRole.SERVER:
                host = Host(sim, node.name, self.config.tcp)
                monitor = self.rtt_monitors.setdefault(
                    node.cluster, Monitor(f"rtt-cluster-{node.cluster}")
                )
                host.rtt_monitor = monitor
                self.hosts[node.name] = host
            else:
                self.switches[node.name] = Switch(sim, node.name, self.routing)

        entities: dict[str, Receiver] = {}
        entities.update(self.hosts)
        entities.update(self.switches)
        for link in topology.links:
            for owner, peer in ((link.a, link.b), (link.b, link.a)):
                if owner in self.excluded_nodes:
                    continue
                receiver = overrides.get(peer)
                if receiver is None:
                    receiver = entities.get(peer)
                if receiver is None:
                    raise ValueError(
                        f"link endpoint {peer!r} is excluded but has no receiver override"
                    )
                port = Port(
                    sim=sim,
                    owner_name=owner,
                    peer=receiver,
                    rate_bps=link.rate_bps,
                    delay_s=link.delay_s,
                    queue_capacity_bytes=self.config.queue_capacity_bytes,
                    ecn_threshold_bytes=self.config.ecn_threshold_bytes,
                    on_drop=self._on_drop,
                )
                self._ports[(owner, peer)] = port
                owner_entity = entities[owner]
                if isinstance(owner_entity, Host):
                    owner_entity.attach_nic(port)
                else:
                    assert isinstance(owner_entity, Switch)
                    owner_entity.attach_port(peer, port)

    # ------------------------------------------------------------------
    def _on_drop(self, packet: Packet) -> None:
        self.drop_counter.increment()

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def host(self, name: str) -> Host:
        """Host entity by node name."""
        return self.hosts[name]

    def switch(self, name: str) -> Switch:
        """Switch entity by node name."""
        return self.switches[name]

    def port(self, owner: str, peer: str) -> Port:
        """The directed port ``owner -> peer``."""
        return self._ports[(owner, peer)]

    def ports(self) -> dict[tuple[str, str], Port]:
        """All directed ports keyed by (owner, peer)."""
        return dict(self._ports)

    def rtt_monitor(self, cluster: Optional[int]) -> Monitor:
        """RTT samples observed by hosts of one cluster."""
        return self.rtt_monitors[cluster]

    def all_rtt_samples(self) -> list[float]:
        """RTT samples pooled across every cluster."""
        samples: list[float] = []
        for monitor in self.rtt_monitors.values():
            samples.extend(monitor.values.tolist())
        return samples

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    @property
    def total_drops(self) -> int:
        """Packets dropped anywhere in the network."""
        return self.drop_counter.count

    def total_queued_bytes(self) -> int:
        """Bytes sitting in queues right now (congestion snapshot)."""
        return sum(port.queued_bytes for port in self._ports.values())

    def total_packets_forwarded(self) -> int:
        """Sum of switch forwarding counts."""
        return sum(switch.packets_forwarded for switch in self.switches.values())
