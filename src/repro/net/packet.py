"""The packet model.

Packets carry exactly the header state the rest of the system needs:
endpoints and ports (flow identity, ECMP hashing), TCP sequence/ack
numbers and flags (the New Reno state machines), ECN bits (optional
marking), and creation/boundary timestamps (RTT and region-latency
measurement).  Section 4.2 of the paper notes all model features "can
be calculated directly from the packet header information, simulation
time, and knowledge of routing strategy" — this header is that
information.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import IntFlag

from repro.topology.routing import ecmp_hash, name_key

#: Combined IP + TCP header size in bytes (20 + 20, no options).
HEADER_BYTES = 40
#: Maximum segment size (payload bytes per packet) for 1500-byte MTU.
DEFAULT_MSS = 1460

_packet_ids = itertools.count()


class TcpFlags(IntFlag):
    """TCP flag bits used by the simulator."""

    NONE = 0
    SYN = 1
    ACK = 2
    FIN = 4


@dataclass(slots=True)
class Packet:
    """A simulated TCP/IP packet.

    Attributes
    ----------
    src, dst:
        Endpoint node names (node names double as addresses).
    src_port, dst_port:
        Transport ports; with the addresses they form the flow 5-tuple.
    seq:
        First payload byte's sequence number (sender byte stream).
    ack:
        Cumulative acknowledgment number (next byte expected).
    flags:
        TCP flags.
    payload_bytes:
        Application payload length (0 for pure ACKs).
    created_at:
        Simulated time the packet was handed to the sender's NIC queue.
    ecn_capable / ecn_marked:
        ECN transport capability and congestion-experienced mark.
    retransmission:
        True if this segment is a retransmit (Karn's algorithm skips
        RTT samples from these, and it is a model feature candidate).
    """

    src: str
    dst: str
    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: TcpFlags = TcpFlags.NONE
    payload_bytes: int = 0
    created_at: float = 0.0
    ecn_capable: bool = False
    ecn_marked: bool = False
    retransmission: bool = False
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size_bytes(self) -> int:
        """Total wire size (headers + payload)."""
        return HEADER_BYTES + self.payload_bytes

    @property
    def flow_tuple(self) -> tuple[str, str, int, int]:
        """The flow identity (src, dst, sport, dport)."""
        return (self.src, self.dst, self.src_port, self.dst_port)

    def flow_hash(self) -> int:
        """Deterministic ECMP hash of the flow 5-tuple.

        Uses a *symmetric-free* encoding: the hash of the reverse
        direction differs, matching real ECMP (each direction may take
        a different path).
        """
        return ecmp_hash(
            name_key(self.src), name_key(self.dst), self.src_port, self.dst_port
        )

    def is_ack_only(self) -> bool:
        """True for packets that carry no payload (pure control)."""
        return self.payload_bytes == 0
