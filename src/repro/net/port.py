"""Output port: drop-tail queue + serialization + propagation.

Every directed link direction is a :class:`Port` owned by the sending
node.  A port models the three delays a store-and-forward hop imposes:

* queuing — FIFO in bytes behind the packets ahead;
* serialization — ``size * 8 / rate`` seconds of transmitter time;
* propagation — a fixed one-way delay before the receiver sees it.

Drop-tail: a packet arriving to a full queue (byte-capacity) is
dropped and counted.  Optional ECN marks instead of dropping nothing —
marking happens when the queue exceeds a threshold, DCTCP-style, and is
off by default because the paper's evaluation runs plain New Reno.

Ports deliver to any object with a ``receive(packet, from_node)``
method, which is how the hybrid simulator splices an approximated
cluster in place of a switch without the port noticing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.des.kernel import Simulator
from repro.net.packet import Packet

#: Default queue capacity in bytes — about 100 x 1500B packets,
#: a typical shallow-buffer ToR per-port budget.
DEFAULT_QUEUE_BYTES = 150_000


class Receiver(Protocol):
    """Anything that can accept a delivered packet."""

    name: str

    def receive(self, packet: Packet, from_node: str) -> None:
        """Handle a packet arriving from ``from_node``."""
        ...  # pragma: no cover - protocol definition


@dataclass
class PortStats:
    """Per-port accounting."""

    enqueued: int = 0
    transmitted: int = 0
    dropped: int = 0
    marked: int = 0
    bytes_transmitted: int = 0
    bytes_dropped: int = 0
    peak_queued_bytes: int = 0


class Port:
    """A transmit port with a drop-tail byte-capacity FIFO.

    Parameters
    ----------
    sim:
        Owning simulator.
    owner_name:
        Name of the sending node (used as ``from_node`` on delivery).
    peer:
        Receiving object (switch, host, or cluster model).
    rate_bps:
        Line rate in bits per second.
    delay_s:
        Propagation delay in seconds.
    queue_capacity_bytes:
        Drop-tail threshold; packets that would push the queued byte
        count past this are dropped.
    ecn_threshold_bytes:
        If set, packets enqueued while the queue holds at least this
        many bytes get ``ecn_marked`` (only if ``ecn_capable``).
    on_drop:
        Optional callback ``(packet) -> None`` fired on every drop;
        trace capture uses it to label training targets.
    """

    def __init__(
        self,
        sim: Simulator,
        owner_name: str,
        peer: Receiver,
        rate_bps: float,
        delay_s: float,
        queue_capacity_bytes: int = DEFAULT_QUEUE_BYTES,
        ecn_threshold_bytes: Optional[int] = None,
        on_drop: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive, got {rate_bps}")
        if delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {delay_s}")
        self.sim = sim
        self.owner_name = owner_name
        self.peer = peer
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.queue_capacity_bytes = queue_capacity_bytes
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.on_drop = on_drop
        self.stats = PortStats()
        #: Optional hook ``(packet, time) -> None`` invoked at the moment
        #: of delivery to the peer (after propagation).  Trace capture
        #: instruments boundary ports with it; None costs one branch.
        self.on_deliver: Optional[Callable[[Packet, float], None]] = None
        self._queue: deque[Packet] = deque()
        self._queued_bytes = 0
        self._busy = False

    # ------------------------------------------------------------------
    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting (excludes the packet being serialized)."""
        return self._queued_bytes

    @property
    def queue_length(self) -> int:
        """Packets currently waiting."""
        return len(self._queue)

    def serialization_delay(self, packet: Packet) -> float:
        """Transmitter time for one packet at line rate."""
        return packet.size_bytes * 8.0 / self.rate_bps

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Accept a packet for transmission; returns False on drop."""
        self.stats.enqueued += 1
        if self._busy:
            if self._queued_bytes + packet.size_bytes > self.queue_capacity_bytes:
                self._drop(packet)
                return False
            if (
                self.ecn_threshold_bytes is not None
                and packet.ecn_capable
                and self._queued_bytes >= self.ecn_threshold_bytes
            ):
                packet.ecn_marked = True
                self.stats.marked += 1
            self._queue.append(packet)
            self._queued_bytes += packet.size_bytes
            if self._queued_bytes > self.stats.peak_queued_bytes:
                self.stats.peak_queued_bytes = self._queued_bytes
            return True
        self._begin_transmission(packet)
        return True

    def _begin_transmission(self, packet: Packet) -> None:
        self._busy = True
        tx_time = self.serialization_delay(packet)
        self.sim.schedule(tx_time, lambda: self._finish_transmission(packet))

    def _finish_transmission(self, packet: Packet) -> None:
        self.stats.transmitted += 1
        self.stats.bytes_transmitted += packet.size_bytes
        # Propagation: receiver sees the packet delay_s after the last bit.
        self.sim.schedule(self.delay_s, lambda: self._deliver(packet))
        if self._queue:
            next_packet = self._queue.popleft()
            self._queued_bytes -= next_packet.size_bytes
            self._begin_transmission(next_packet)
        else:
            self._busy = False

    def _deliver(self, packet: Packet) -> None:
        if self.on_deliver is not None:
            self.on_deliver(packet, self.sim.now)
        self.peer.receive(packet, self.owner_name)

    def _drop(self, packet: Packet) -> None:
        self.stats.dropped += 1
        self.stats.bytes_dropped += packet.size_bytes
        if self.on_drop is not None:
            self.on_drop(packet)
