"""Output-queued ECMP switch.

A switch receives a packet, looks up the ECMP next hop for the packet's
flow, and enqueues it on the corresponding output port.  Forwarding is
destination-based (no per-input state), so the switch does not care
whether a packet physically arrived from a neighbor or was injected by
an approximated-cluster model.

Per the paper's elision list (Section 5), these queuing / routing /
packet processing procedures are exactly what the approximation removes
for replaced clusters.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.des.entities import Entity
from repro.des.errors import SimulationError
from repro.des.kernel import Simulator
from repro.net.packet import Packet
from repro.net.port import Port
from repro.topology.routing import EcmpRouting, NoRouteError


class UnroutablePacketError(SimulationError, RuntimeError):
    """A switch could not forward a packet toward its destination.

    Reachable mid-run once link failures are injected (a partition can
    strand in-flight packets), so it carries structured context —
    ``(switch, dst, policy)`` plus the sim time and failed links — that
    the invariant checker and failed run manifests surface instead of a
    bare stack trace.
    """

    def __init__(
        self,
        switch: str,
        packet: Packet,
        policy: str,
        time: float,
        reason: str,
        failed_links: Optional[list[tuple[str, str]]] = None,
    ) -> None:
        super().__init__(
            f"{switch}: cannot route packet {packet.src!r}->{packet.dst!r} "
            f"under policy {policy!r} at t={time:.6f}: {reason}"
        )
        self.switch = switch
        self.src = packet.src
        self.dst = packet.dst
        self.policy = policy
        self.time = time
        self.reason = reason
        self.failed_links = list(failed_links or [])

    def details(self) -> dict:
        """Manifest-ready structured context."""
        return {
            "switch": self.switch,
            "src": self.src,
            "dst": self.dst,
            "policy": self.policy,
            "time": self.time,
            "reason": self.reason,
            "failed_links": [list(pair) for pair in self.failed_links],
        }


class Switch(Entity):
    """An output-queued switch forwarding via a routing policy.

    Ports are attached after construction via :meth:`attach_port` (the
    network assembler wires both directions of every link).  Forwarding
    consults :meth:`EcmpRouting.select_next_hop` — the ``RoutingPolicy``
    seam — passing the current sim time (flowlet gap detection) and a
    per-neighbor queued-bytes probe (adaptive load balancing); plain
    ECMP ignores both.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        routing: EcmpRouting,
        on_forward: Optional[Callable[["Switch", Packet, str], None]] = None,
    ) -> None:
        super().__init__(sim, name)
        self.routing = routing
        self.ports: dict[str, Port] = {}
        self.packets_forwarded = 0
        self.packets_received = 0
        #: Optional hook called as ``on_forward(switch, packet,
        #: next_hop)`` before enqueueing — trace capture uses it.
        self.on_forward = on_forward
        #: Optional hook called as ``on_unroutable(error, packet)``
        #: before the structured error propagates — the invariant
        #: checker records a routability violation through it.
        self.on_unroutable: Optional[
            Callable[[UnroutablePacketError, Packet], None]
        ] = None

    def attach_port(self, neighbor: str, port: Port) -> None:
        """Register the output port toward ``neighbor``."""
        if neighbor in self.ports:
            raise ValueError(f"{self.name}: duplicate port toward {neighbor!r}")
        self.ports[neighbor] = port

    def _port_load(self, neighbor: str) -> int:
        """Queued bytes toward ``neighbor`` — adaptive routing's signal."""
        port = self.ports.get(neighbor)
        return port.queued_bytes if port is not None else 0

    def _unroutable(self, packet: Packet, reason: str) -> UnroutablePacketError:
        error = UnroutablePacketError(
            switch=self.name,
            packet=packet,
            policy=self.routing.policy,
            time=self.now,
            reason=reason,
            failed_links=self.routing.failed_links,
        )
        if self.on_unroutable is not None:
            self.on_unroutable(error, packet)
        return error

    def receive(self, packet: Packet, from_node: str) -> None:
        """Forward a packet toward its destination."""
        self.packets_received += 1
        try:
            next_hop = self.routing.select_next_hop(
                self.name,
                packet.dst,
                packet.flow_hash(),
                now=self.now,
                port_load=self._port_load,
            )
        except NoRouteError as exc:
            raise self._unroutable(packet, str(exc)) from None
        try:
            port = self.ports[next_hop]
        except KeyError:
            raise self._unroutable(
                packet, f"routing chose {next_hop!r} but no port is attached"
            ) from None
        if self.on_forward is not None:
            self.on_forward(self, packet, next_hop)
        self.packets_forwarded += 1
        port.enqueue(packet)

    def total_dropped(self) -> int:
        """Packets dropped across all output queues of this switch."""
        return sum(port.stats.dropped for port in self.ports.values())

    def total_queued_bytes(self) -> int:
        """Bytes currently queued across all output ports."""
        return sum(port.queued_bytes for port in self.ports.values())
