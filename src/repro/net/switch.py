"""Output-queued ECMP switch.

A switch receives a packet, looks up the ECMP next hop for the packet's
flow, and enqueues it on the corresponding output port.  Forwarding is
destination-based (no per-input state), so the switch does not care
whether a packet physically arrived from a neighbor or was injected by
an approximated-cluster model.

Per the paper's elision list (Section 5), these queuing / routing /
packet processing procedures are exactly what the approximation removes
for replaced clusters.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.des.entities import Entity
from repro.des.kernel import Simulator
from repro.net.packet import Packet
from repro.net.port import Port
from repro.topology.routing import EcmpRouting


class Switch(Entity):
    """An output-queued switch with ECMP forwarding.

    Ports are attached after construction via :meth:`attach_port` (the
    network assembler wires both directions of every link).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        routing: EcmpRouting,
        on_forward: Optional[Callable[["Switch", Packet, str], None]] = None,
    ) -> None:
        super().__init__(sim, name)
        self.routing = routing
        self.ports: dict[str, Port] = {}
        self.packets_forwarded = 0
        self.packets_received = 0
        #: Optional hook called as ``on_forward(switch, packet,
        #: next_hop)`` before enqueueing — trace capture uses it.
        self.on_forward = on_forward

    def attach_port(self, neighbor: str, port: Port) -> None:
        """Register the output port toward ``neighbor``."""
        if neighbor in self.ports:
            raise ValueError(f"{self.name}: duplicate port toward {neighbor!r}")
        self.ports[neighbor] = port

    def receive(self, packet: Packet, from_node: str) -> None:
        """Forward a packet toward its destination."""
        self.packets_received += 1
        next_hop = self.routing.next_hop(self.name, packet.dst, packet.flow_hash())
        try:
            port = self.ports[next_hop]
        except KeyError:
            raise RuntimeError(
                f"{self.name}: routing chose {next_hop!r} but no port is attached"
            ) from None
        if self.on_forward is not None:
            self.on_forward(self, packet, next_hop)
        self.packets_forwarded += 1
        port.enqueue(packet)

    def total_dropped(self) -> int:
        """Packets dropped across all output queues of this switch."""
        return sum(port.stats.dropped for port in self.ports.values())

    def total_queued_bytes(self) -> int:
        """Bytes currently queued across all output ports."""
        return sum(port.queued_bytes for port in self.ports.values())
