"""TCP New Reno implementation.

The paper's evaluation runs "TCP New Reno and ECMP implemented on
OMNeT++/INET" (Section 6).  This package is the INET-equivalent TCP:

* :class:`TcpSender` — slow start, congestion avoidance, 3-dupACK fast
  retransmit, New Reno partial-ACK fast recovery (RFC 6582),
  Jacobson/Karn RTO estimation with exponential backoff.
* :class:`TcpReceiver` — cumulative ACKs with out-of-order reassembly,
  optional delayed ACKs, ECN echo.
* :class:`TcpConfig` — all protocol knobs in one place.

Connections are simulation-level objects: a flow is set up by creating
the sender at the source host and the receiver at the destination host
(no three-way handshake is simulated — connection establishment is not
part of any measured quantity in the paper, and INET-based DC studies
routinely pre-establish connections for the same reason).
"""

from repro.net.tcp.config import TcpConfig
from repro.net.tcp.rtt import RttEstimator
from repro.net.tcp.receiver import TcpReceiver
from repro.net.tcp.sender import SenderState, TcpSender

__all__ = ["RttEstimator", "SenderState", "TcpConfig", "TcpReceiver", "TcpSender"]
