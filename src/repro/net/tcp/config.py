"""TCP protocol configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import DEFAULT_MSS


@dataclass(frozen=True)
class TcpConfig:
    """Knobs for the New Reno implementation.

    Attributes
    ----------
    mss:
        Maximum segment size (payload bytes).
    initial_cwnd_segments:
        Initial congestion window (RFC 6928's 10 segments by default).
    initial_ssthresh_bytes:
        Initial slow-start threshold (effectively unbounded).
    min_rto_s:
        Lower bound on the retransmission timeout.  Data center
        operators tune this far below the WAN-era 200 ms-1 s; 10 ms
        keeps timeout dynamics visible in short simulated windows
        while preserving the pathology the paper describes (flows
        stalling on RTO under extreme congestion).
    max_rto_s:
        Upper bound after exponential backoff.
    initial_rto_s:
        RTO before any RTT sample exists.
    dupack_threshold:
        Duplicate ACKs that trigger fast retransmit.
    delayed_ack:
        If True, receiver ACKs every second segment or after
        ``delayed_ack_timeout_s``.
    delayed_ack_timeout_s:
        Delayed-ACK flush timer.
    ecn:
        If True, senders negotiate ECN and halve cwnd on echoed marks
        instead of relying purely on loss.
    dctcp:
        If True, run DCTCP congestion control (Alizadeh et al. 2010 —
        the paper's workload reference): the sender tracks the fraction
        of ECN-marked bytes per window in an EMA ``alpha`` and scales
        cwnd by ``1 - alpha/2`` once per window, reacting to the
        *extent* of congestion rather than its presence.  Implies ECN
        transport; requires a marking threshold on the queues.
    dctcp_g:
        EMA gain for the DCTCP alpha estimator (the paper's g = 1/16).
    receive_window_bytes:
        Advertised receive window (flow-control cap on in-flight data).
    """

    mss: int = DEFAULT_MSS
    initial_cwnd_segments: int = 10
    initial_ssthresh_bytes: int = 1 << 30
    min_rto_s: float = 0.01
    max_rto_s: float = 5.0
    initial_rto_s: float = 0.03
    dupack_threshold: int = 3
    delayed_ack: bool = False
    delayed_ack_timeout_s: float = 0.001
    ecn: bool = False
    dctcp: bool = False
    dctcp_g: float = 1.0 / 16.0
    receive_window_bytes: int = 1 << 24

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError(f"mss must be positive, got {self.mss}")
        if self.initial_cwnd_segments < 1:
            raise ValueError("initial_cwnd_segments must be >= 1")
        if self.min_rto_s <= 0 or self.max_rto_s < self.min_rto_s:
            raise ValueError("require 0 < min_rto_s <= max_rto_s")
        if self.dupack_threshold < 1:
            raise ValueError("dupack_threshold must be >= 1")
        if not 0.0 < self.dctcp_g <= 1.0:
            raise ValueError(f"dctcp_g must be in (0, 1], got {self.dctcp_g}")

    @property
    def ecn_enabled(self) -> bool:
        """True if packets should be sent ECN-capable."""
        return self.ecn or self.dctcp

    @property
    def initial_cwnd_bytes(self) -> int:
        """Initial congestion window in bytes."""
        return self.initial_cwnd_segments * self.mss
