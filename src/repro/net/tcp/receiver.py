"""TCP receiver: cumulative ACK generation with reassembly.

The receiver tracks ``rcv_nxt``, buffers out-of-order segments as
merged ``(start, end)`` intervals, and generates cumulative ACKs.  Out
of order arrivals always trigger an immediate duplicate ACK (that is
what drives the sender's fast retransmit); in-order arrivals ACK
immediately or on the delayed-ACK policy.  ECN marks seen on data are
echoed on the next ACK (a simplified ECE that suffices for the
one-reduction-per-window sender rule).
"""

from __future__ import annotations

import bisect
from typing import Callable, Optional, Protocol

from repro.des.entities import Timer
from repro.des.kernel import Simulator
from repro.net.packet import Packet, TcpFlags
from repro.net.tcp.config import TcpConfig


class ReceiverHost(Protocol):
    """What a receiver needs from its host."""

    name: str
    sim: Simulator

    def transmit(self, packet: Packet) -> None:
        """Hand a packet to the NIC."""
        ...  # pragma: no cover - protocol definition


class TcpReceiver:
    """The receiving side of one unidirectional transfer.

    Parameters
    ----------
    host:
        The endpoint that owns this connection.
    peer:
        The sender's node name (destination for ACKs).
    src_port, dst_port:
        *This side's* ports: ACKs go out with ``src_port`` as their
        source and ``dst_port`` as destination (mirroring the data
        packets' ports).
    config:
        Protocol knobs (delayed-ACK policy lives here).
    on_deliver:
        Optional callback ``(new_in_order_bytes) -> None`` whenever the
        reassembly point advances — applications count goodput with it.
    """

    def __init__(
        self,
        host: ReceiverHost,
        peer: str,
        src_port: int,
        dst_port: int,
        config: TcpConfig,
        on_deliver: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.host = host
        self.peer = peer
        self.src_port = src_port
        self.dst_port = dst_port
        self.config = config
        self.on_deliver = on_deliver

        self.rcv_nxt = 0
        self.bytes_delivered = 0
        self.acks_sent = 0
        self.duplicate_segments = 0
        self._ooo: list[tuple[int, int]] = []  # sorted, disjoint
        self._ecn_echo = False
        self._unacked_segments = 0
        self._delack_timer = Timer(host.sim, self._flush_delayed_ack)

    # ------------------------------------------------------------------
    def on_data(self, packet: Packet) -> None:
        """Process an arriving data segment."""
        if packet.ecn_marked:
            self._ecn_echo = True
        start = packet.seq
        end = packet.seq + packet.payload_bytes
        if end <= self.rcv_nxt:
            # Entirely old data (spurious retransmission).
            self.duplicate_segments += 1
            self._send_ack()
            return
        if start > self.rcv_nxt:
            # A hole precedes this segment: buffer + immediate dup ACK.
            self._insert_ooo(start, end)
            self._send_ack()
            return
        # In-order (possibly overlapping) data: advance and merge.
        advanced_from = self.rcv_nxt
        self.rcv_nxt = max(self.rcv_nxt, end)
        self._drain_ooo()
        delivered = self.rcv_nxt - advanced_from
        self.bytes_delivered += delivered
        if self.on_deliver is not None:
            self.on_deliver(delivered)
        if self.config.delayed_ack and not self._ooo:
            self._unacked_segments += 1
            if self._unacked_segments >= 2:
                self._flush_delayed_ack()
            elif not self._delack_timer.armed:
                self._delack_timer.arm(self.config.delayed_ack_timeout_s)
        else:
            self._send_ack()

    # ------------------------------------------------------------------
    def _insert_ooo(self, start: int, end: int) -> None:
        """Insert an interval, merging overlaps, keeping the list sorted."""
        starts = [seg[0] for seg in self._ooo]
        idx = bisect.bisect_left(starts, start)
        self._ooo.insert(idx, (start, end))
        merged: list[tuple[int, int]] = []
        for seg_start, seg_end in self._ooo:
            if merged and seg_start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], seg_end))
            else:
                merged.append((seg_start, seg_end))
        self._ooo = merged

    def _drain_ooo(self) -> None:
        """Consume buffered intervals now contiguous with ``rcv_nxt``."""
        while self._ooo and self._ooo[0][0] <= self.rcv_nxt:
            _, seg_end = self._ooo.pop(0)
            self.rcv_nxt = max(self.rcv_nxt, seg_end)

    def _flush_delayed_ack(self) -> None:
        self._delack_timer.cancel()
        self._unacked_segments = 0
        self._send_ack()

    def _send_ack(self) -> None:
        ack = Packet(
            src=self.host.name,
            dst=self.peer,
            src_port=self.src_port,
            dst_port=self.dst_port,
            ack=self.rcv_nxt,
            flags=TcpFlags.ACK,
            payload_bytes=0,
            created_at=self.host.sim.now,
            ecn_capable=self.config.ecn,
            ecn_marked=self._ecn_echo,
        )
        self._ecn_echo = False
        self.acks_sent += 1
        self.host.transmit(ack)

    @property
    def ooo_intervals(self) -> list[tuple[int, int]]:
        """Buffered out-of-order intervals (copy, for tests)."""
        return list(self._ooo)
