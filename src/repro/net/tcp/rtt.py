"""Jacobson/Karels RTT estimation and RTO computation (RFC 6298)."""

from __future__ import annotations

from typing import Optional


class RttEstimator:
    """Smoothed RTT / RTT variance estimator.

    Standard gains: ``srtt += (sample - srtt)/8``;
    ``rttvar += (|sample - srtt| - rttvar)/4``; ``rto = srtt + 4*rttvar``
    clamped to ``[min_rto, max_rto]``.  Exponential backoff doubles the
    effective RTO per consecutive timeout (Karn's algorithm: samples
    from retransmitted segments are never fed in — enforced by the
    caller, which only times first transmissions).
    """

    def __init__(self, min_rto_s: float, max_rto_s: float, initial_rto_s: float) -> None:
        self.min_rto_s = min_rto_s
        self.max_rto_s = max_rto_s
        self.initial_rto_s = initial_rto_s
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._backoff = 1.0

    def observe(self, sample_s: float) -> None:
        """Feed one RTT sample (first-transmission segments only)."""
        if sample_s < 0:
            raise ValueError(f"RTT sample must be non-negative, got {sample_s}")
        if self.srtt is None:
            self.srtt = sample_s
            self.rttvar = sample_s / 2.0
        else:
            assert self.rttvar is not None
            err = sample_s - self.srtt
            self.srtt += err / 8.0
            self.rttvar += (abs(err) - self.rttvar) / 4.0
        self._backoff = 1.0  # a valid sample ends backoff

    def backoff(self) -> None:
        """Double the effective RTO after a retransmission timeout."""
        self._backoff = min(self._backoff * 2.0, 64.0)

    @property
    def rto_s(self) -> float:
        """Current retransmission timeout."""
        if self.srtt is None:
            base = self.initial_rto_s
        else:
            assert self.rttvar is not None
            base = self.srtt + 4.0 * self.rttvar
        return min(max(base * self._backoff, self.min_rto_s), self.max_rto_s)
