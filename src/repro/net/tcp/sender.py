"""TCP New Reno sender.

Implements the congestion control the paper's evaluation uses: slow
start, congestion avoidance, fast retransmit on three duplicate ACKs,
and New Reno fast recovery with partial-ACK retransmission (RFC 6582),
over a go-back-N retransmission timeout.

The sender is deliberately event-driven and allocation-light: one DES
timer (the RTO), no per-segment timers, a single-segment RTT timer
(the classic approach, which also gives Karn's algorithm for free —
only first transmissions are ever timed).
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Optional, Protocol

from repro.des.entities import Timer
from repro.des.kernel import Simulator
from repro.des.monitors import Monitor
from repro.net.packet import Packet, TcpFlags
from repro.net.tcp.config import TcpConfig
from repro.net.tcp.rtt import RttEstimator


class SenderHost(Protocol):
    """What a sender needs from its host."""

    name: str
    sim: Simulator

    def transmit(self, packet: Packet) -> None:
        """Hand a packet to the NIC."""
        ...  # pragma: no cover - protocol definition


class SenderState(Enum):
    """Congestion control phase."""

    SLOW_START = "slow_start"
    CONGESTION_AVOIDANCE = "congestion_avoidance"
    FAST_RECOVERY = "fast_recovery"


class TcpSender:
    """One unidirectional New Reno data transfer.

    Parameters
    ----------
    host:
        The endpoint that owns this connection.
    dst:
        Destination node name.
    src_port, dst_port:
        Transport ports (must be unique per host pair per flow).
    total_bytes:
        Flow size; the sender stops and reports completion once the
        final byte is cumulatively acknowledged.
    config:
        Protocol knobs.
    on_complete:
        Callback ``(flow_completion_time_s) -> None``.
    rtt_monitor:
        Optional monitor that receives every valid RTT sample — this
        feeds the paper's Figure 4 CDFs ("RTTs observed by hosts").
    """

    def __init__(
        self,
        host: SenderHost,
        dst: str,
        src_port: int,
        dst_port: int,
        total_bytes: int,
        config: TcpConfig,
        on_complete: Optional[Callable[[float], None]] = None,
        rtt_monitor: Optional[Monitor] = None,
    ) -> None:
        if total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {total_bytes}")
        self.host = host
        self.dst = dst
        self.src_port = src_port
        self.dst_port = dst_port
        self.total_bytes = total_bytes
        self.config = config
        self.on_complete = on_complete
        self.rtt_monitor = rtt_monitor

        self.snd_una = 0
        self.snd_nxt = 0
        self.highest_sent = 0
        self.cwnd = float(config.initial_cwnd_bytes)
        self.ssthresh = float(config.initial_ssthresh_bytes)
        self.state = SenderState.SLOW_START
        self.dup_acks = 0
        self.recover = 0  # New Reno recovery point
        self.completed = False
        self.started_at: Optional[float] = None

        self.rtt = RttEstimator(config.min_rto_s, config.max_rto_s, config.initial_rto_s)
        self._rto_timer = Timer(host.sim, self._on_rto)
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0
        self._ecn_recover = 0  # one cwnd reduction per window of ECN echoes
        # DCTCP state (config.dctcp): alpha estimates the fraction of
        # marked bytes; counters accumulate over one observation window.
        self.dctcp_alpha = 0.0
        self._dctcp_acked = 0
        self._dctcp_marked = 0
        self._dctcp_window_end = 0

        # Statistics.
        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0

    # ------------------------------------------------------------------
    @property
    def flight_size(self) -> int:
        """Bytes sent but not yet cumulatively acknowledged."""
        return self.snd_nxt - self.snd_una

    @property
    def effective_window(self) -> int:
        """min(cwnd, receiver window), in whole bytes."""
        return int(min(self.cwnd, self.config.receive_window_bytes))

    def start(self) -> None:
        """Begin transmitting (idempotent)."""
        if self.started_at is None:
            self.started_at = self.host.sim.now
            self._send_segments()

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _send_segments(self) -> None:
        """Send as much new data as the window allows."""
        while not self.completed:
            window_limit = self.snd_una + self.effective_window
            if self.snd_nxt >= window_limit or self.snd_nxt >= self.total_bytes:
                break
            payload = min(self.config.mss, self.total_bytes - self.snd_nxt, window_limit - self.snd_nxt)
            if payload <= 0:
                break
            self._transmit_segment(self.snd_nxt, payload)
            self.snd_nxt += payload
            self.highest_sent = max(self.highest_sent, self.snd_nxt)
        if self.flight_size > 0 and not self._rto_timer.armed:
            self._rto_timer.arm(self.rtt.rto_s)

    def _transmit_segment(self, seq: int, payload: int) -> None:
        """Emit one data segment starting at ``seq``."""
        is_retx = seq < self.highest_sent
        packet = Packet(
            src=self.host.name,
            dst=self.dst,
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=seq,
            flags=TcpFlags.NONE,
            payload_bytes=payload,
            created_at=self.host.sim.now,
            ecn_capable=self.config.ecn_enabled,
            retransmission=is_retx,
        )
        self.segments_sent += 1
        if is_retx:
            self.retransmissions += 1
            # Karn: a retransmission overlapping the timed segment
            # invalidates the RTT measurement in progress.
            if self._timed_seq is not None and seq <= self._timed_seq < seq + payload:
                self._timed_seq = None
        elif self._timed_seq is None:
            self._timed_seq = seq
            self._timed_at = self.host.sim.now
        self.host.transmit(packet)

    def _retransmit_first_unacked(self) -> None:
        """Retransmit the segment at ``snd_una``."""
        payload = min(self.config.mss, self.total_bytes - self.snd_una)
        if payload > 0:
            self._transmit_segment(self.snd_una, payload)

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_ack(self, packet: Packet) -> None:
        """Process an incoming (possibly duplicate) cumulative ACK."""
        if self.completed:
            return
        if self.config.dctcp:
            self._dctcp_observe(packet)
        elif self.config.ecn and packet.ecn_marked:
            self._on_ecn_echo()
        ackno = packet.ack
        if ackno > self.snd_una:
            self._on_new_ack(ackno)
        elif ackno == self.snd_una and self.flight_size > 0 and packet.is_ack_only():
            self._on_dup_ack()
        self._send_segments()

    def _on_new_ack(self, ackno: int) -> None:
        acked = ackno - self.snd_una
        self._maybe_sample_rtt(ackno)
        if self.state is SenderState.FAST_RECOVERY:
            if ackno >= self.recover:
                # Full ACK: leave recovery, deflate to ssthresh.
                self.cwnd = self.ssthresh
                self.state = SenderState.CONGESTION_AVOIDANCE
                self.dup_acks = 0
                self.snd_una = ackno
            else:
                # Partial ACK (RFC 6582): retransmit the next hole,
                # deflate by the amount acked, stay in recovery.
                self.snd_una = ackno
                self._retransmit_first_unacked()
                self.cwnd = max(self.cwnd - acked + self.config.mss, float(self.config.mss))
                self._rto_timer.arm(self.rtt.rto_s)
        else:
            self.dup_acks = 0
            self.snd_una = ackno
            self._grow_cwnd(acked)
        if self.snd_nxt < self.snd_una:
            self.snd_nxt = self.snd_una
        if self.snd_una >= self.total_bytes:
            self._complete()
            return
        if self.flight_size > 0:
            self._rto_timer.arm(self.rtt.rto_s)
        else:
            self._rto_timer.cancel()

    def _grow_cwnd(self, acked_bytes: int) -> None:
        """Slow start / congestion avoidance window growth."""
        mss = self.config.mss
        if self.state is SenderState.SLOW_START:
            self.cwnd += min(acked_bytes, mss)
            if self.cwnd >= self.ssthresh:
                self.state = SenderState.CONGESTION_AVOIDANCE
        else:
            # Standard per-ACK additive increase: MSS^2 / cwnd.
            self.cwnd += mss * mss / self.cwnd

    def _on_dup_ack(self) -> None:
        if self.state is SenderState.FAST_RECOVERY:
            # Window inflation: each dupACK signals a departed packet.
            self.cwnd += self.config.mss
            return
        self.dup_acks += 1
        if self.dup_acks == self.config.dupack_threshold:
            self._enter_fast_recovery()

    def _enter_fast_recovery(self) -> None:
        mss = self.config.mss
        self.ssthresh = max(self.flight_size / 2.0, 2.0 * mss)
        self.recover = self.snd_nxt
        self.state = SenderState.FAST_RECOVERY
        self.fast_retransmits += 1
        self._retransmit_first_unacked()
        self.cwnd = self.ssthresh + self.config.dupack_threshold * mss
        self._rto_timer.arm(self.rtt.rto_s)

    def _dctcp_observe(self, packet: Packet) -> None:
        """DCTCP alpha estimation and per-window cwnd scaling.

        Every new cumulative ACK contributes its acked bytes to the
        window counters (marked bytes when the ACK echoes CE).  Once a
        window's worth of data (one cwnd at window start) is acked,
        ``alpha <- (1-g) alpha + g F`` and, if anything was marked,
        ``cwnd <- cwnd (1 - alpha/2)`` — reduction proportional to the
        *extent* of congestion, DCTCP's defining property.
        """
        ackno = packet.ack
        if ackno <= self.snd_una:
            return
        acked = ackno - self.snd_una
        self._dctcp_acked += acked
        if packet.ecn_marked:
            self._dctcp_marked += acked
        if ackno < self._dctcp_window_end:
            return
        if self._dctcp_acked > 0:
            fraction = self._dctcp_marked / self._dctcp_acked
            g = self.config.dctcp_g
            self.dctcp_alpha = (1.0 - g) * self.dctcp_alpha + g * fraction
            if self._dctcp_marked > 0 and self.state is not SenderState.FAST_RECOVERY:
                self.cwnd = max(
                    self.cwnd * (1.0 - self.dctcp_alpha / 2.0), float(self.config.mss)
                )
                # RFC 8257: the reduction also sets ssthresh, ending
                # slow start — otherwise exponential growth outruns the
                # proportional decrease and the queue never stabilizes.
                self.ssthresh = self.cwnd
                if self.state is SenderState.SLOW_START:
                    self.state = SenderState.CONGESTION_AVOIDANCE
        self._dctcp_acked = 0
        self._dctcp_marked = 0
        self._dctcp_window_end = self.snd_nxt

    def _on_ecn_echo(self) -> None:
        """Halve cwnd at most once per window of ECN echoes."""
        if self.snd_una >= self._ecn_recover and self.state is not SenderState.FAST_RECOVERY:
            self.cwnd = max(self.cwnd / 2.0, float(self.config.mss))
            self.ssthresh = self.cwnd
            self.state = SenderState.CONGESTION_AVOIDANCE
            self._ecn_recover = self.snd_nxt

    def _maybe_sample_rtt(self, ackno: int) -> None:
        if self._timed_seq is not None and ackno > self._timed_seq:
            sample = self.host.sim.now - self._timed_at
            self.rtt.observe(sample)
            if self.rtt_monitor is not None:
                self.rtt_monitor.record(sample)
            self._timed_seq = None

    # ------------------------------------------------------------------
    # Timeout
    # ------------------------------------------------------------------
    def _on_rto(self) -> None:
        """Retransmission timeout: go-back-N restart in slow start."""
        if self.completed:
            return
        self.timeouts += 1
        self.ssthresh = max(self.flight_size / 2.0, 2.0 * self.config.mss)
        self.cwnd = float(self.config.mss)
        self.snd_nxt = self.snd_una
        self.state = SenderState.SLOW_START
        self.dup_acks = 0
        self.rtt.backoff()
        self._timed_seq = None
        self._send_segments()
        self._rto_timer.arm(self.rtt.rto_s)

    def _complete(self) -> None:
        self.completed = True
        self._rto_timer.cancel()
        if self.on_complete is not None:
            assert self.started_at is not None
            self.on_complete(self.host.sim.now - self.started_at)
