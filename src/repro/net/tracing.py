"""Raw packet/event trace capture.

Section 2.1: "The eventual output of the simulation is also
configurable; users can compute arbitrary statistics ... or can print
raw packet/event traces."  :class:`PacketTracer` is that facility: it
chains onto the delivery and drop hooks of every (or a chosen subset
of) ports and records one row per event, exportable as dicts or CSV —
the same role pcap/vector files play for OMNeT++ users.

Tracing costs one callback per recorded event, so attach it only to
the links you care about for long runs.
"""

from __future__ import annotations

import csv
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.net.network import Network
from repro.net.packet import Packet

#: Event kinds recorded by the tracer.
KIND_DELIVER = "deliver"
KIND_DROP = "drop"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded packet event.

    ``link_from``/``link_to`` identify the directed port; ``time`` is
    the delivery instant for delivers and the enqueue-rejection instant
    for drops.
    """

    time: float
    kind: str
    link_from: str
    link_to: str
    src: str
    dst: str
    src_port: int
    dst_port: int
    seq: int
    ack: int
    payload_bytes: int
    size_bytes: int
    ecn_marked: bool
    retransmission: bool
    packet_id: int


class PacketTracer:
    """Records per-packet events on a live network.

    Parameters
    ----------
    network:
        The network whose ports to instrument.
    nodes:
        If given, only ports *owned by* these nodes are traced;
        otherwise every port is.
    include_drops:
        Also record queue drops (chained after the network's drop
        accounting).
    """

    def __init__(
        self,
        network: Network,
        nodes: Optional[Iterable[str]] = None,
        include_drops: bool = True,
    ) -> None:
        self.network = network
        self.events: list[TraceEvent] = []
        node_filter = set(nodes) if nodes is not None else None
        self._ports_instrumented = 0
        for (owner, peer), port in network.ports().items():
            if node_filter is not None and owner not in node_filter:
                continue
            self._ports_instrumented += 1
            port.on_deliver = self._chain_deliver(
                port.on_deliver, self._make_deliver_handler(owner, peer)
            )
            if include_drops:
                port.on_drop = self._chain_drop(
                    port.on_drop, self._make_drop_handler(owner, peer)
                )
        if self._ports_instrumented == 0:
            raise ValueError("tracer matched no ports; check the node filter")

    # ------------------------------------------------------------------
    @staticmethod
    def _chain_deliver(existing, handler):
        if existing is None:
            return handler

        def chained(packet: Packet, time: float) -> None:
            existing(packet, time)
            handler(packet, time)

        return chained

    @staticmethod
    def _chain_drop(existing, handler):
        if existing is None:
            return handler

        def chained(packet: Packet) -> None:
            existing(packet)
            handler(packet)

        return chained

    def _make_deliver_handler(self, owner: str, peer: str) -> Callable[[Packet, float], None]:
        def handler(packet: Packet, time: float) -> None:
            self.events.append(self._event(time, KIND_DELIVER, owner, peer, packet))

        return handler

    def _make_drop_handler(self, owner: str, peer: str) -> Callable[[Packet], None]:
        def handler(packet: Packet) -> None:
            self.events.append(
                self._event(self.network.sim.now, KIND_DROP, owner, peer, packet)
            )

        return handler

    @staticmethod
    def _event(time: float, kind: str, owner: str, peer: str, packet: Packet) -> TraceEvent:
        return TraceEvent(
            time=time,
            kind=kind,
            link_from=owner,
            link_to=peer,
            src=packet.src,
            dst=packet.dst,
            src_port=packet.src_port,
            dst_port=packet.dst_port,
            seq=packet.seq,
            ack=packet.ack,
            payload_bytes=packet.payload_bytes,
            size_bytes=packet.size_bytes,
            ecn_marked=packet.ecn_marked,
            retransmission=packet.retransmission,
            packet_id=packet.packet_id,
        )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def rows(self) -> list[dict]:
        """All events as plain dicts (analysis-friendly)."""
        return [asdict(event) for event in self.events]

    def write_csv(self, path: str | Path) -> int:
        """Dump the trace as CSV; returns the row count."""
        rows = self.rows()
        path = Path(path)
        with path.open("w", newline="") as handle:
            if not rows:
                handle.write("")
                return 0
            writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
            writer.writeheader()
            writer.writerows(rows)
        return len(rows)

    def flow_events(self, src: str, dst: str) -> list[TraceEvent]:
        """Events belonging to packets of one (src, dst) host pair."""
        return [e for e in self.events if e.src == src and e.dst == dst]

    def drops(self) -> list[TraceEvent]:
        """Only the drop events."""
        return [e for e in self.events if e.kind == KIND_DROP]
