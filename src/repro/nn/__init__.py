"""From-scratch neural network substrate (the PyTorch 0.4 substitute).

The paper trains its micro models with PyTorch and calls them from C++
via ATEN.  This environment has neither, so this package implements the
required machinery directly on numpy:

* :class:`Linear` — fully connected layers (the paper's two heads).
* :class:`LSTM` — multi-layer LSTM with full backpropagation through
  time, plus a stateful single-step mode used during simulation.
* Losses — :class:`BCEWithLogitsLoss`, :class:`MSELoss`, and the
  paper's joint loss ``L = L_drop + alpha * L_latency`` with the rule
  that dropped packets propagate no latency error
  (:class:`JointDropLatencyLoss`).
* Optimizers — :class:`SGD` (with momentum, the paper's choice) and
  :class:`Adam` (used by ablations), with gradient clipping.
* Utilities — parameter containers, serialization, batching,
  standardization, and numerical gradient checking.

Every array convention in this package: sequences are shaped
``(T, B, F)`` — time steps, batch, features; single steps are ``(B, F)``.
"""

from repro.nn.module import Module, Parameter
from repro.nn.activations import relu, relu_grad, sigmoid, sigmoid_grad, tanh_grad
from repro.nn.linear import Linear
from repro.nn.gru import GRU, GRUCell, GRUState
from repro.nn.lstm import LSTM, LSTMCell, LSTMState
from repro.nn.losses import BCEWithLogitsLoss, JointDropLatencyLoss, MSELoss
from repro.nn.optim import SGD, Adam, clip_gradients
from repro.nn.data import BatchIterator, Standardizer, make_sequences
from repro.nn.selective import SelectiveLinear
from repro.nn.serialize import load_module_state, save_module_state

__all__ = [
    "Adam",
    "BCEWithLogitsLoss",
    "BatchIterator",
    "GRU",
    "GRUCell",
    "GRUState",
    "JointDropLatencyLoss",
    "LSTM",
    "LSTMCell",
    "LSTMState",
    "Linear",
    "MSELoss",
    "Module",
    "Parameter",
    "SGD",
    "SelectiveLinear",
    "Standardizer",
    "clip_gradients",
    "load_module_state",
    "make_sequences",
    "relu",
    "relu_grad",
    "save_module_state",
    "sigmoid",
    "sigmoid_grad",
    "tanh_grad",
]
