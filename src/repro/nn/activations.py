"""Activation functions and their derivatives.

All functions are elementwise over numpy arrays.  Derivatives are
expressed in terms of the *outputs* where that is cheaper (sigmoid,
tanh), matching how the LSTM backward pass caches activations.
"""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid.

    Computed via the complementary forms on positive/negative halves to
    avoid overflow in ``exp`` for large |x|.
    """
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_grad(y: np.ndarray) -> np.ndarray:
    """Derivative of sigmoid given its output ``y``: ``y * (1 - y)``."""
    return y * (1.0 - y)


def tanh_grad(y: np.ndarray) -> np.ndarray:
    """Derivative of tanh given its output ``y``: ``1 - y**2``."""
    return 1.0 - y * y


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU given its *input* ``x``."""
    return (x > 0).astype(np.float64)
