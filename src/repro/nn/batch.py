"""Batched fused inference: one stacked GEMM per layer across lanes.

The fused engines of :mod:`repro.nn.infer` made a single packet cheap;
this module makes *many concurrent packets* cheap.  Every approximated
cluster sharing one compiled model keeps its per-direction recurrent
state as a **lane** — one row of shared ``(n_lanes, hidden)`` state
matrices — so a :meth:`BatchedFusedEngine.predict_batch` call advances
all pending lanes with one stacked matrix product per layer instead of
one GEMV chain per packet.  The weight matrices are then read once per
*batch* rather than once per *packet*, which is exactly where the
scalar engine's time goes (at 128 hidden units the weights are ~800 KB
per packet — memory bandwidth, not FLOPs).

Numerics contract (mirrors the scalar engines):

* **float64 is bit-exact** with the scalar path.  On this BLAS a true
  GEMM is *not* row-wise bit-identical to the equivalent GEMVs (dot
  products are reassociated by blocking), so the float64 mode runs one
  GEMV per row into a shared 2D scratch block and vectorizes only the
  elementwise work (exp/tanh/adds *are* bit-identical across shapes).
  Event-identity of batched hybrid runs rests on this.
* **float32 uses real GEMMs** — the speed mode.  Within-tolerance, not
  bit-identical, same as the scalar float32 engine's contract.

Layered on top is a steady-state **memoization cache** (see
``PAPERS.md``: memoization and fast-forwarding for packet-level
simulation).  Keys are quantized ``(macro_index, features, state)``
triples; by default a hit additionally requires *exact* equality of
the stored feature/state arrays, so a hit returns byte-identical
results and memoized runs stay event-identical with unmemoized ones.
(In practice recurrent float orbits almost never repeat *exactly* —
exact mode is the safe default, not the fast one; the speed comes from
``exact=False``, where a quantized-key match alone is accepted.)  On a
hit the cache **fast-forwards**: the lane's state becomes a pointer
into a successor chain of cache entries and each packet costs one
feature quantization and a dict probe — no state touch, no GEMM at
all — until the first miss restores the real matrices and resumes
computing.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.nn.infer import (
    _GATE_CLIP,
    _LOGIT_FLOOR,
    CompiledRecurrentModel,
)

__all__ = ["BatchedFusedEngine", "MemoConfig", "make_batched_engine"]


class MemoConfig:
    """Steady-state memoization options (see module docstring).

    Parameters
    ----------
    feature_decimals, state_decimals:
        Quantization used to build hash keys: values are rounded to
        this many decimals before hashing.  Coarser keys mean more
        candidate hits; with ``exact`` on, a key collision is resolved
        by array comparison and only costs a miss.
    max_entries:
        FIFO capacity of the global key table.  Entries referenced by
        live successor chains stay reachable after eviction (the chain
        holds them directly); eviction only stops *new* lookups from
        finding them.
    exact:
        Require exact array equality on top of the quantized key
        (default).  Guarantees memoized results are bit-identical to
        recomputation.  Off trades that guarantee for a higher hit
        rate under near-periodic (not exactly converged) traffic; the
        fidelity gate (``repro validate``) is the guard rail then.
    """

    __slots__ = ("feature_decimals", "state_decimals", "max_entries", "exact")

    def __init__(
        self,
        feature_decimals: int = 6,
        state_decimals: int = 4,
        max_entries: int = 8192,
        exact: bool = True,
    ) -> None:
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.feature_decimals = feature_decimals
        self.state_decimals = state_decimals
        self.max_entries = max_entries
        self.exact = exact


class _MemoEntry:
    """One cached transition: (state, features, macro) -> outcome.

    ``prev_state`` / ``state`` are exact flat copies of the lane state
    before and after the step; ``successors`` maps
    ``(macro_index, feature_key)`` to the entry reached next — the
    fast-forward chain.
    """

    __slots__ = (
        "features",
        "prev_state",
        "state",
        "drop_prob",
        "latency_norm",
        "successors",
    )

    def __init__(self, features, prev_state, state, drop_prob, latency_norm) -> None:
        self.features = features
        self.prev_state = prev_state
        self.state = state
        self.drop_prob = drop_prob
        self.latency_norm = latency_norm
        self.successors: dict = {}


class BatchedFusedEngine:
    """Base of the lane-batched hot-path executors.

    Parameters
    ----------
    compiled:
        Shared read-only weights (one direction of one trained model).
    n_lanes:
        Number of independent recurrent streams (one per approximated
        cluster sharing these weights).  Also the maximum batch width.
    memo:
        Optional :class:`MemoConfig` enabling the steady-state cache.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; hit/miss counters
        (``infer.memo_hits`` / ``infer.memo_misses``) resolve once here.
    direction_label:
        Label for those counters.

    The public surface is three calls:

    * :meth:`predict_batch` — the raw stacked step over distinct lanes;
    * :meth:`predict_one` — single-lane step (the causality fallback),
      bit-identical to a width-1 batch;
    * :meth:`predict_rows` — what the batcher uses: memoization (when
      enabled) wrapped around the two above.
    """

    def __init__(
        self,
        compiled: CompiledRecurrentModel,
        n_lanes: int,
        memo: Optional[MemoConfig] = None,
        metrics=None,
        direction_label: str = "all",
    ) -> None:
        if n_lanes <= 0:
            raise ValueError(f"n_lanes must be positive, got {n_lanes}")
        self.compiled = compiled
        self.n_lanes = n_lanes
        self.steps = 0
        dtype = compiled.dtype
        self._exact = dtype == np.dtype(np.float64)
        self._head_out = np.empty((n_lanes, 2), dtype=dtype)
        self._all_rows = list(range(n_lanes))
        if compiled.per_macro:
            self._head_w = tuple(
                compiled.head_weight[k] for k in range(compiled.head_weight.shape[0])
            )
            if not self._exact:
                # float32 head fast path: one (B, H+1) @ (H+1, 2K) GEMM
                # computing every macro's heads, then a flat gather of
                # each row's pair — K is tiny (4), the 4x extra FLOPs
                # are far cheaper than B BLAS dispatches.
                k, hp1, _ = compiled.head_weight.shape
                self._head_w_flat = np.ascontiguousarray(
                    compiled.head_weight.transpose(1, 0, 2).reshape(hp1, 2 * k)
                )
                self._head_flat = np.empty((n_lanes, 2 * k), dtype=dtype)
                self._head_stride = 2 * k
        else:
            self._head_w = None
        # Feature packing buffer for predict_rows/predict_one (raw
        # float64 extractor output; the dtype cast happens on copy into
        # the work arena, same as the scalar engine).
        self._fpack = np.empty((n_lanes, compiled.input_size), dtype=np.float64)

        # -- memoization state ------------------------------------------
        self.memo_hits = 0
        self.memo_misses = 0
        self._memo_config = memo
        self._memo: dict = {}
        self._lane_entry: list = [None] * n_lanes
        self._lane_virtual = [False] * n_lanes
        self._m_hits = None
        self._m_misses = None
        if memo is not None:
            self._fscale = 10.0 ** memo.feature_decimals
            self._sscale = 10.0 ** memo.state_decimals
            self._qfeat = np.empty((n_lanes, compiled.input_size), dtype=np.float64)
            self._qstate = np.empty(self._state_size(), dtype=np.float64)
            self._sbuf = np.empty(self._state_size(), dtype=dtype)
        if metrics is not None and metrics.handles_enabled() and memo is not None:
            self._m_hits = metrics.counter(
                "infer.memo_hits", direction=direction_label
            )
            self._m_misses = metrics.counter(
                "infer.memo_misses", direction=direction_label
            )

    # -- abstract lane-state plumbing (subclass responsibilities) -------
    def _state_size(self) -> int:
        raise NotImplementedError

    def _capture_state(self, row: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Exact flat copy of lane ``row``'s full recurrent state."""
        raise NotImplementedError

    def _restore_state(self, row: int, flat: np.ndarray) -> None:
        """Write a captured state back into lane ``row``."""
        raise NotImplementedError

    def predict_batch(
        self,
        features,
        macro_indices: Sequence[int],
        rows: Sequence[int],
    ) -> list:
        """Advance each listed lane one step; one stacked product per layer.

        ``features`` is ``(B, F)`` raw (unstandardized) features,
        ``macro_indices`` and ``rows`` are length-B sequences; **rows
        must be distinct** (the batcher's one-packet-per-lane rounds
        guarantee this).  Returns ``[(drop_prob, latency_norm), ...]``
        in input order; float64 results are bit-identical to B scalar
        ``predict`` calls on independent engines.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Zero every lane (fresh packet streams) and drop the cache."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def predict_one(self, features: np.ndarray, macro_index: int, row: int):
        """Single-lane step — the width-1 causality fallback."""
        pack = self._fpack[:1]
        pack[0] = features
        return self.predict_batch(pack, (macro_index,), (row,))[0]

    def _reset_memo(self) -> None:
        self._memo.clear()
        self._lane_entry = [None] * self.n_lanes
        self._lane_virtual = [False] * self.n_lanes

    # ------------------------------------------------------------------
    # Heads (shared by both cells; bit-identical to the scalar _heads)
    # ------------------------------------------------------------------
    def _read_heads(self, top: np.ndarray, macro_indices, batch: int) -> list:
        """Stacked-head readout for the batch.

        float64 mirrors the scalar ``_heads`` exactly: one tiny GEMV
        per row plus the ``math.exp`` sigmoid with its logit floor.
        float32 batches the readout — one GEMM for the whole batch and
        a vectorized sigmoid (within-tolerance mode, so reassociation
        is fine and B BLAS dispatches collapse to one).
        """
        head_w = self._head_w
        if self._exact:
            out = self._head_out[:batch]
            if head_w is not None:
                for i in range(batch):
                    np.dot(top[i], head_w[macro_indices[i]], out=out[i])
            else:
                shared = self.compiled.head_weight
                for i in range(batch):
                    np.dot(top[i], shared, out=out[i])
            results = []
            exp = math.exp
            for i in range(batch):
                logit = float(out[i, 0])
                drop = 1.0 / (1.0 + exp(-logit)) if logit > _LOGIT_FLOOR else 0.0
                results.append((drop, float(out[i, 1])))
            return results
        if head_w is not None:
            flat = self._head_flat[:batch]
            np.dot(top, self._head_w_flat, out=flat)
            base = np.asarray(macro_indices, dtype=np.intp) * 2
            base += np.arange(batch, dtype=np.intp) * self._head_stride
            view = flat.reshape(-1)
            logits = view[base].astype(np.float64)
            latencies = view[base + 1].astype(np.float64)
        else:
            out = self._head_out[:batch]
            np.dot(top, self.compiled.head_weight, out=out)
            logits = out[:, 0].astype(np.float64)
            latencies = out[:, 1].astype(np.float64)
        # Vectorized 1/(1+exp(-z)) with the reference logit floor; the
        # inner minimum keeps exp() out of overflow for floored rows.
        z = np.minimum(-logits, 709.0)
        np.exp(z, out=z)
        np.add(z, 1.0, out=z)
        np.reciprocal(z, out=z)
        z[logits <= _LOGIT_FLOOR] = 0.0
        return list(zip(z.tolist(), latencies.tolist()))

    # ------------------------------------------------------------------
    # Memoization
    # ------------------------------------------------------------------
    def _quantize(self, values: np.ndarray, scale: float, buf: np.ndarray) -> bytes:
        np.multiply(values, scale, out=buf)
        np.rint(buf, out=buf)
        return buf.tobytes()

    def predict_rows(
        self,
        features_list: Sequence[np.ndarray],
        macro_indices: Sequence[int],
        rows: Sequence[int],
    ) -> list:
        """Memo-aware batch step over distinct lanes.

        Without a cache this is just feature packing + the raw batch
        (or the width-1 fallback).  With one, each lane first tries the
        fast-forward chain, then the global key table; only misses
        reach :meth:`predict_batch`, and every miss installs a new
        entry linked into its predecessor's chain.
        """
        batch = len(rows)
        if self._memo_config is None:
            if batch == 1:
                return [self.predict_one(features_list[0], macro_indices[0], rows[0])]
            pack = self._fpack[:batch]
            for i in range(batch):
                pack[i] = features_list[i]
            return self.predict_batch(pack, macro_indices, rows)
        return self._predict_rows_memo(features_list, macro_indices, rows)

    def _predict_rows_memo(self, features_list, macro_indices, rows) -> list:
        exact = self._memo_config.exact
        batch = len(rows)
        # Feature quantization is the whole cost of a fast-forward hit,
        # so it runs vectorized over the packed block — three numpy
        # calls per *batch*, then one ``tobytes`` per lane — instead of
        # three calls per packet.
        pack = self._fpack[:batch]
        for i in range(batch):
            pack[i] = features_list[i]
        qblock = self._qfeat[:batch]
        np.multiply(pack, self._fscale, out=qblock)
        np.rint(qblock, out=qblock)
        results: list = [None] * batch
        pending: list = []  # (i, row, fkey, prev_entry)
        lane_entry = self._lane_entry
        lane_virtual = self._lane_virtual
        hits = 0
        for i, row in enumerate(rows):
            features = features_list[i]
            fkey = (macro_indices[i], qblock[i].tobytes())
            entry = lane_entry[row]
            if entry is not None:
                nxt = entry.successors.get(fkey)
                if nxt is not None and (
                    not exact or np.array_equal(nxt.features, features)
                ):
                    # Fast-forward: stay virtual, never touch matrices.
                    results[i] = (nxt.drop_prob, nxt.latency_norm)
                    lane_entry[row] = nxt
                    lane_virtual[row] = True
                    hits += 1
                    continue
                if lane_virtual[row]:
                    self._restore_state(row, entry.state)
                    lane_virtual[row] = False
            skey = self._quantize(
                self._capture_state(row, out=self._sbuf), self._sscale, self._qstate
            )
            key = (fkey, skey)
            cand = self._memo.get(key)
            if cand is not None and (
                not exact
                or (
                    np.array_equal(cand.features, features)
                    and np.array_equal(cand.prev_state, self._sbuf)
                )
            ):
                results[i] = (cand.drop_prob, cand.latency_norm)
                if entry is not None:
                    # Close the chain: the lane state at ``entry`` is
                    # (verifiably, in exact mode) ``cand.prev_state``,
                    # so future walks fast-forward straight through
                    # instead of re-paying restore + quantize + lookup
                    # every time a cycle wraps past this transition.
                    entry.successors[fkey] = cand
                lane_entry[row] = cand
                lane_virtual[row] = True
                hits += 1
                continue
            # Miss: keep the predecessor entry (for chain linking) or,
            # cold, an exact copy of the pre-step state for the new
            # entry.  _sbuf already holds the live state.
            prev_entry = entry
            prev_state = entry.state if entry is not None else self._sbuf.copy()
            pending.append((i, row, fkey, key, prev_entry, prev_state, features))
        if hits:
            self.memo_hits += hits
            if self._m_hits is not None:
                self._m_hits.inc(hits)
        if pending:
            self.memo_misses += len(pending)
            if self._m_misses is not None:
                self._m_misses.inc(len(pending))
            if len(pending) == 1:
                i, row, *_ , features = pending[0]
                computed = [self.predict_one(features, macro_indices[i], row)]
            else:
                pack = self._fpack[: len(pending)]
                for j, job in enumerate(pending):
                    pack[j] = job[6]
                computed = self.predict_batch(
                    pack,
                    [macro_indices[job[0]] for job in pending],
                    [job[1] for job in pending],
                )
            memo = self._memo
            cap = self._memo_config.max_entries
            for job, outcome in zip(pending, computed):
                i, row, fkey, key, prev_entry, prev_state, features = job
                results[i] = outcome
                new = _MemoEntry(
                    features, prev_state, self._capture_state(row), *outcome
                )
                if len(memo) >= cap:
                    # FIFO eviction; break the evictee's chain so dead
                    # entries cannot keep arbitrarily long tails alive.
                    evicted = memo.pop(next(iter(memo)))
                    evicted.successors.clear()
                memo[key] = new
                if prev_entry is not None:
                    prev_entry.successors[fkey] = new
                self._lane_entry[row] = new
                self._lane_virtual[row] = False
        return results


class _BatchedLstmEngine(BatchedFusedEngine):
    """Lane-batched LSTM.

    Persistent state is a ``(n_lanes, width)`` arena (same row layout
    ``[features | h_0 | ... | 1.0]`` as the scalar engine's 1D arena)
    plus one ``(n_lanes, H)`` cell matrix per layer.  A step gathers
    the batch's rows into C-contiguous work blocks, runs the layer
    stack on 2D views, and scatters the rows back — gather/scatter is
    ~2 KB per packet against ~800 KB of weights saved per packet at
    batch width 64.
    """

    def __init__(self, compiled, n_lanes, **kwargs) -> None:
        if compiled.cell != "lstm":
            raise ValueError(f"expected an lstm model, got {compiled.cell!r}")
        dtype = compiled.dtype
        n0 = compiled.input_size
        hidden = compiled.hidden_size
        width = n0 + compiled.num_layers * hidden + 1
        self._n0 = n0
        self._arena = np.zeros((n_lanes, width), dtype=dtype)
        self._arena[:, -1] = 1.0
        self._work = np.empty((n_lanes, width), dtype=dtype)
        self._top_off = n0 + (compiled.num_layers - 1) * hidden
        exact = dtype == np.dtype(np.float64)
        self._layers = []
        offset = 0
        for layer in compiled.layers:
            n, h = layer.input_size, layer.hidden_size
            z = np.empty((n_lanes, 4 * h), dtype=dtype)
            if exact:
                # float64 runs per-row GEMVs on contiguous arena row
                # slices directly; no packing, bias added separately
                # (both required for bit-parity with the scalar engine).
                packed = None
                wb = None
            else:
                # float32: GEMM from a packed contiguous block with a
                # trailing 1.0 column and the bias as a final weight
                # row — the strided arena view costs ~40% GEMM time on
                # this BLAS, and the fold drops the bias-add pass.
                packed = np.empty((n_lanes, n + h + 1), dtype=dtype)
                packed[:, -1] = 1.0
                wb = np.ascontiguousarray(np.vstack([layer.weight, layer.bias]))
            self._layers.append(
                (
                    layer.weight,
                    layer.bias,
                    offset,  # xh block starts here, spans n + h
                    n + h,
                    offset + n,  # this layer's h block
                    z,
                    np.empty((n_lanes, h), dtype=dtype),  # g / tanh(c) scratch
                    np.empty((n_lanes, h), dtype=dtype),  # gathered cell work
                    np.zeros((n_lanes, h), dtype=dtype),  # persistent cells
                    h,
                    packed,
                    wb,
                )
            )
            offset += n
        super().__init__(compiled, n_lanes, **kwargs)

    def _state_size(self) -> int:
        hidden = self.compiled.hidden_size
        return 2 * self.compiled.num_layers * hidden

    def _capture_state(self, row, out=None):
        hidden = self.compiled.hidden_size
        flat = (
            out
            if out is not None
            else np.empty(self._state_size(), dtype=self.compiled.dtype)
        )
        cursor = 0
        for record in self._layers:
            h_off, cells, h = record[4], record[8], record[9]
            flat[cursor : cursor + h] = self._arena[row, h_off : h_off + h]
            flat[cursor + h : cursor + 2 * h] = cells[row]
            cursor += 2 * h
        assert cursor == flat.shape[0]
        return flat

    def _restore_state(self, row, flat):
        cursor = 0
        for record in self._layers:
            h_off, cells, h = record[4], record[8], record[9]
            self._arena[row, h_off : h_off + h] = flat[cursor : cursor + h]
            cells[row] = flat[cursor + h : cursor + 2 * h]
            cursor += 2 * h

    def reset(self) -> None:
        self._arena.fill(0.0)
        self._arena[:, -1] = 1.0
        for record in self._layers:
            record[8].fill(0.0)
        self.steps = 0
        self._reset_memo()

    def predict_batch(self, features, macro_indices, rows):
        batch = len(rows)
        if batch == self.n_lanes and list(rows) == self._all_rows:
            # Full-batch fast path: every lane steps, so the layer
            # stack runs directly on the persistent matrices — no
            # gather/scatter copies at all.
            row_index = None
            work = self._arena
        else:
            row_index = np.asarray(rows, dtype=np.intp)
            work = self._work[:batch]
            np.take(self._arena, row_index, axis=0, out=work)
        exact = self._exact
        work[:, : self._n0] = features
        for (w, b, off, span, h_off, zbuf, gbuf, cwork, cells, h, packed, wb) in self._layers:
            if row_index is None:
                cw = cells
            else:
                cw = cwork[:batch]
                np.take(cells, row_index, axis=0, out=cw)
            xh = work[:, off : off + span]
            z = zbuf[:batch]
            if exact:
                # One GEMV per row: bit-identical to the scalar engine
                # (this BLAS's GEMM reassociates row dot products).
                for i in range(batch):
                    np.dot(xh[i], w, out=z[i])
                np.add(z, b, out=z)
            else:
                pack = packed[:batch]
                pack[:, :span] = xh
                np.dot(pack, wb, out=z)
            zi = z[:, :h]
            zf = z[:, h : 2 * h]
            zo = z[:, 2 * h : 3 * h]
            zs = z[:, : 3 * h]
            zg = z[:, 3 * h :]
            if exact:
                np.minimum(z, _GATE_CLIP, out=z)
                np.maximum(z, -_GATE_CLIP, out=z)
            else:
                np.minimum(zs, _GATE_CLIP, out=zs)
            g = gbuf[:batch]
            np.tanh(zg, out=g)
            np.exp(zs, out=zs)
            np.add(zs, 1.0, out=zs)
            np.reciprocal(zs, out=zs)
            np.multiply(zf, cw, out=cw)
            np.multiply(zi, g, out=g)
            np.add(cw, g, out=cw)
            if row_index is not None:
                cells[row_index] = cw
            np.tanh(cw, out=g)
            np.multiply(zo, g, out=work[:, h_off : h_off + h])
        if row_index is not None:
            self._arena[row_index] = work
        self.steps += batch
        return self._read_heads(work[:, self._top_off :], macro_indices, batch)


class _BatchedGruEngine(BatchedFusedEngine):
    """Lane-batched GRU: two stacked products per layer, like the
    scalar engine's two GEMVs.  Per layer the persistent state is a
    ``(n_lanes, H + 1)`` matrix whose trailing column is the constant
    1.0 that rides the folded-bias GEMV; the input work block carries
    the same trailing 1.0 for layer 0.
    """

    def __init__(self, compiled, n_lanes, **kwargs) -> None:
        if compiled.cell != "gru":
            raise ValueError(f"expected a gru model, got {compiled.cell!r}")
        dtype = compiled.dtype
        self._xwork = np.empty((n_lanes, compiled.input_size + 1), dtype=dtype)
        self._xwork[:, -1] = 1.0
        self._layers = []
        for layer in compiled.layers:
            h = layer.hidden_size
            state = np.zeros((n_lanes, h + 1), dtype=dtype)
            state[:, -1] = 1.0
            self._layers.append(
                (
                    layer.w_input,
                    layer.w_recurrent,
                    state,
                    np.empty((n_lanes, h + 1), dtype=dtype),  # gathered state
                    np.empty((n_lanes, 3 * h), dtype=dtype),  # pre
                    np.empty((n_lanes, 3 * h), dtype=dtype),  # hu
                    np.empty((n_lanes, h), dtype=dtype),  # z*h scratch
                    h,
                )
            )
        super().__init__(compiled, n_lanes, **kwargs)

    def _state_size(self) -> int:
        return sum(record[7] for record in self._layers)

    def _capture_state(self, row, out=None):
        flat = (
            out
            if out is not None
            else np.empty(self._state_size(), dtype=self.compiled.dtype)
        )
        cursor = 0
        for record in self._layers:
            state, h = record[2], record[7]
            flat[cursor : cursor + h] = state[row, :h]
            cursor += h
        return flat

    def _restore_state(self, row, flat):
        cursor = 0
        for record in self._layers:
            state, h = record[2], record[7]
            state[row, :h] = flat[cursor : cursor + h]
            cursor += h

    def reset(self) -> None:
        for record in self._layers:
            record[2][:, :-1] = 0.0
        self.steps = 0
        self._reset_memo()

    def predict_batch(self, features, macro_indices, rows):
        batch = len(rows)
        if batch == self.n_lanes and list(rows) == self._all_rows:
            row_index = None  # full batch: run on the persistent state
        else:
            row_index = np.asarray(rows, dtype=np.intp)
        exact = self._exact
        xv = self._xwork[:batch]
        xv[:, :-1] = features
        top = None
        for (w, u, state, swork, prebuf, hubuf, sbuf, h) in self._layers:
            if row_index is None:
                sw = state
            else:
                sw = swork[:batch]
                np.take(state, row_index, axis=0, out=sw)
            hview = sw[:, :h]
            pre = prebuf[:batch]
            hu = hubuf[:batch]
            if exact:
                for i in range(batch):
                    np.dot(xv[i], w, out=pre[i])
                    np.dot(hview[i], u, out=hu[i])
            else:
                np.dot(xv, w, out=pre)
                np.dot(hview, u, out=hu)
            gates = pre[:, : 2 * h]
            pz = pre[:, :h]
            pr = pre[:, h : 2 * h]
            pn = pre[:, 2 * h :]
            hu_gates = hu[:, : 2 * h]
            hu_n = hu[:, 2 * h :]
            np.add(gates, hu_gates, out=gates)
            np.minimum(gates, _GATE_CLIP, out=gates)
            if exact:
                np.maximum(gates, -_GATE_CLIP, out=gates)
            np.exp(gates, out=gates)
            np.add(gates, 1.0, out=gates)
            np.reciprocal(gates, out=gates)
            s = sbuf[:batch]
            np.multiply(pr, hu_n, out=hu_n)
            np.add(pn, hu_n, out=pn)
            np.tanh(pn, out=pn)
            np.multiply(pz, hview, out=s)
            np.subtract(1.0, pz, out=pz)
            np.multiply(pz, pn, out=pn)
            np.add(pn, s, out=hview)
            if row_index is not None:
                state[row_index] = sw
            xv = sw  # next layer's input [h | 1]
            top = sw
        self.steps += batch
        return self._read_heads(top, macro_indices, batch)


def make_batched_engine(
    compiled: CompiledRecurrentModel,
    n_lanes: int,
    memo: Optional[MemoConfig] = None,
    metrics=None,
    direction_label: str = "all",
) -> BatchedFusedEngine:
    """Build the lane-batched executor for one compiled model."""
    cls = _BatchedLstmEngine if compiled.cell == "lstm" else _BatchedGruEngine
    return cls(
        compiled,
        n_lanes,
        memo=memo,
        metrics=metrics,
        direction_label=direction_label,
    )
