"""Dataset utilities: standardization, windowing, batching.

The micro model is trained on windows of consecutive packets ("batches
of size 64", Section 4.2).  These helpers turn flat per-packet feature
and target arrays into ``(T, B, F)`` training windows, standardize
features to zero mean / unit variance, and iterate shuffled minibatches
reproducibly.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np


class Standardizer:
    """Per-feature affine normalization fitted on training data.

    Features with (near-)zero variance are left unscaled rather than
    divided by ~0; one-hot and constant features survive unchanged.
    """

    def __init__(self) -> None:
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "Standardizer":
        """Fit on ``x`` shaped ``(N, F)``; returns self for chaining."""
        self.mean = x.mean(axis=0)
        std = x.std(axis=0)
        std[std < 1e-12] = 1.0
        self.std = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Standardize ``x`` (any leading shape, trailing F)."""
        if self.mean is None or self.std is None:
            raise RuntimeError("Standardizer used before fit()")
        return (x - self.mean) / self.std

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        if self.mean is None or self.std is None:
            raise RuntimeError("Standardizer used before fit()")
        return x * self.std + self.mean

    def state_dict(self) -> dict[str, np.ndarray]:
        """Arrays needed to reconstruct the fitted transform."""
        if self.mean is None or self.std is None:
            raise RuntimeError("Standardizer used before fit()")
        return {"mean": self.mean, "std": self.std}

    @classmethod
    def from_state_dict(cls, state: dict[str, np.ndarray]) -> "Standardizer":
        """Rebuild from :meth:`state_dict` output."""
        out = cls()
        out.mean = np.asarray(state["mean"], dtype=np.float64)
        out.std = np.asarray(state["std"], dtype=np.float64)
        return out


def make_sequences(
    features: np.ndarray, targets: np.ndarray, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """Cut flat per-packet arrays into non-overlapping training windows.

    Parameters
    ----------
    features:
        ``(N, F)`` per-packet features in arrival order.
    targets:
        ``(N, K)`` per-packet targets aligned with features.
    window:
        Window length T.

    Returns
    -------
    ``(X, Y)`` where ``X`` is ``(num_windows, T, F)`` and ``Y`` is
    ``(num_windows, T, K)``.  The trailing remainder shorter than one
    window is discarded.
    """
    if features.shape[0] != targets.shape[0]:
        raise ValueError(
            f"features and targets disagree on N: {features.shape[0]} != {targets.shape[0]}"
        )
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    n = (features.shape[0] // window) * window
    if n == 0:
        return (
            np.empty((0, window, features.shape[1])),
            np.empty((0, window, targets.shape[1])),
        )
    x = features[:n].reshape(-1, window, features.shape[1])
    y = targets[:n].reshape(-1, window, targets.shape[1])
    return x, y


class BatchIterator:
    """Reproducibly shuffled minibatch iterator over window arrays.

    Yields ``(xb, yb)`` with shapes ``(T, B, F)`` / ``(T, B, K)`` —
    note the transpose to time-major, which is what the LSTM consumes.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int,
        rng: np.random.Generator,
        drop_last: bool = False,
    ) -> None:
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y disagree on the number of windows")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.x = x
        self.y = y
        self.batch_size = batch_size
        self.rng = rng
        self.drop_last = drop_last

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = self.rng.permutation(self.x.shape[0])
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            xb = self.x[idx].transpose(1, 0, 2)
            yb = self.y[idx].transpose(1, 0, 2)
            yield xb, yb

    def __len__(self) -> int:
        full, rem = divmod(self.x.shape[0], self.batch_size)
        return full if (self.drop_last or rem == 0) else full + 1
