"""Numerical gradient checking.

Because this substrate has no autograd, analytic backward passes are
hand-derived; gradient checking against central finite differences is
the safety net that keeps them honest.  The test suite runs these
checks on every layer type.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.module import Module


def numerical_gradient(
    loss_fn: Callable[[], float], array: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``loss_fn`` w.r.t. ``array``.

    ``loss_fn`` must recompute the loss from scratch using the current
    contents of ``array`` (which this function perturbs in place and
    restores).
    """
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = loss_fn()
        flat[i] = original - eps
        minus = loss_fn()
        flat[i] = original
        gflat[i] = (plus - minus) / (2.0 * eps)
    return grad


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """Max elementwise relative error, guarded against division by ~0."""
    scale = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
    return float(np.max(np.abs(analytic - numeric) / scale))


def check_module_gradients(
    module: Module, loss_fn: Callable[[], float], backward_fn: Callable[[], None],
    eps: float = 1e-6,
) -> float:
    """Compare analytic and numerical gradients for every parameter.

    ``loss_fn`` computes the scalar loss (pure, repeatable);
    ``backward_fn`` runs forward+backward once, leaving gradients in the
    parameters.  Returns the worst relative error across parameters.
    """
    module.zero_grad()
    backward_fn()
    worst = 0.0
    for _, param in module.named_parameters():
        numeric = numerical_gradient(loss_fn, param.value, eps=eps)
        worst = max(worst, max_relative_error(param.grad, numeric))
    return worst
