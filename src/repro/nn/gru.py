"""Gated recurrent unit (GRU) — the Section 7 "new LSTM variant".

The paper's future-work section proposes "testing new LSTM variants"
for the micro model.  The GRU (Cho et al., 2014) is the canonical one:
two gates instead of three, no separate cell state, ~25% fewer
parameters per hidden unit — cheaper per packet at simulation time,
the trade-off the capacity ablation (A5) quantifies.

Gate layout of the fused projections: ``[z | r | n]`` (update, reset,
candidate).  The candidate's recurrent term is reset-gated:
``n = tanh(x W_n + r * (h U_n) + b_n)``; ``h' = (1-z) n + z h``.

API mirrors :class:`~repro.nn.lstm.LSTM`: batched ``forward`` with
cached activations + full BPTT ``backward``, and a stateful
``step``/``step_inference`` pair for per-packet simulation use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.activations import sigmoid
from repro.nn.init import orthogonal, xavier_uniform
from repro.nn.module import Module, Parameter


@dataclass
class GRUState:
    """Hidden state of a multi-layer GRU: one ``(B, H)`` array per layer."""

    h: list[np.ndarray]

    def copy(self) -> "GRUState":
        """Deep copy."""
        return GRUState(h=[a.copy() for a in self.h])


@dataclass
class _GruStepCache:
    """Per-timestep activations cached for BPTT."""

    x: np.ndarray
    h_prev: np.ndarray
    z: np.ndarray
    r: np.ndarray
    n: np.ndarray
    hu_n: np.ndarray  # h_prev @ U_n (pre reset gating)


class GRUCell(Module):
    """A single GRU layer operating one timestep at a time."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        name: str = "gru_cell",
    ) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.w_input = Parameter(
            xavier_uniform(rng, input_size, 3 * h, (input_size, 3 * h)),
            name=f"{name}.w_input",
        )
        recurrent = np.concatenate([orthogonal(rng, (h, h)) for _ in range(3)], axis=1)
        self.w_recurrent = Parameter(recurrent, name=f"{name}.w_recurrent")
        self.bias = Parameter(np.zeros(3 * h), name=f"{name}.bias")

    def step(
        self, x: np.ndarray, h_prev: np.ndarray
    ) -> tuple[np.ndarray, _GruStepCache]:
        """One timestep with activation caching (training path)."""
        h_size = self.hidden_size
        xw = x @ self.w_input.value + self.bias.value
        hu = h_prev @ self.w_recurrent.value
        z = sigmoid(xw[:, :h_size] + hu[:, :h_size])
        r = sigmoid(xw[:, h_size : 2 * h_size] + hu[:, h_size : 2 * h_size])
        hu_n = hu[:, 2 * h_size :]
        n = np.tanh(xw[:, 2 * h_size :] + r * hu_n)
        h = (1.0 - z) * n + z * h_prev
        return h, _GruStepCache(x=x, h_prev=h_prev, z=z, r=r, n=n, hu_n=hu_n)

    def step_inference(self, x: np.ndarray, h_prev: np.ndarray) -> np.ndarray:
        """One timestep without caching (hot path)."""
        h_size = self.hidden_size
        pre = x @ self.w_input.value + self.bias.value
        hu = h_prev @ self.w_recurrent.value
        gates = pre[:, : 2 * h_size] + hu[:, : 2 * h_size]
        np.clip(gates, -60.0, 60.0, out=gates)
        gates = 1.0 / (1.0 + np.exp(-gates))
        z = gates[:, :h_size]
        r = gates[:, h_size:]
        n = np.tanh(pre[:, 2 * h_size :] + r * hu[:, 2 * h_size :])
        return (1.0 - z) * n + z * h_prev

    def backward_step(
        self, grad_h: np.ndarray, cache: _GruStepCache
    ) -> tuple[np.ndarray, np.ndarray]:
        """Backward through one timestep.

        Returns ``(grad_x, grad_h_prev)``; parameter gradients are
        accumulated in place.
        """
        h_size = self.hidden_size
        z, r, n = cache.z, cache.r, cache.n
        h_prev = cache.h_prev

        grad_z = grad_h * (h_prev - n)
        grad_n = grad_h * (1.0 - z)
        grad_h_prev = grad_h * z

        grad_n_pre = grad_n * (1.0 - n**2)
        grad_r = grad_n_pre * cache.hu_n
        grad_hu_n = grad_n_pre * r
        grad_z_pre = grad_z * z * (1.0 - z)
        grad_r_pre = grad_r * r * (1.0 - r)

        grad_pre = np.concatenate([grad_z_pre, grad_r_pre, grad_n_pre], axis=1)
        grad_hu = np.concatenate([grad_z_pre, grad_r_pre, grad_hu_n], axis=1)

        self.w_input.grad += cache.x.T @ grad_pre
        self.bias.grad += grad_pre.sum(axis=0)
        self.w_recurrent.grad += h_prev.T @ grad_hu

        grad_x = grad_pre @ self.w_input.value.T
        grad_h_prev = grad_h_prev + grad_hu @ self.w_recurrent.value.T
        return grad_x, grad_h_prev


class GRU(Module):
    """Stack of :class:`GRUCell` layers with the LSTM-compatible API."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int,
        rng: np.random.Generator,
        name: str = "gru",
    ) -> None:
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.layers = [
            GRUCell(
                input_size if k == 0 else hidden_size,
                hidden_size,
                rng,
                name=f"{name}.layer{k}",
            )
            for k in range(num_layers)
        ]
        self._caches: Optional[list[list[_GruStepCache]]] = None

    def initial_state(self, batch_size: int) -> GRUState:
        """Zero state for a batch of the given size."""
        shape = (batch_size, self.hidden_size)
        return GRUState(h=[np.zeros(shape) for _ in range(self.num_layers)])

    def forward(
        self, x: np.ndarray, state: Optional[GRUState] = None
    ) -> tuple[np.ndarray, GRUState]:
        """Run a full sequence ``(T, B, F)``; caches for BPTT."""
        steps, batch, _ = x.shape
        if state is None:
            state = self.initial_state(batch)
        h = [a.copy() for a in state.h]
        self._caches = [[] for _ in range(self.num_layers)]
        outputs = np.empty((steps, batch, self.hidden_size))
        for t in range(steps):
            layer_in = x[t]
            for k, cell in enumerate(self.layers):
                h[k], cache = cell.step(layer_in, h[k])
                self._caches[k].append(cache)
                layer_in = h[k]
            outputs[t] = h[-1]
        return outputs, GRUState(h=h)

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        """Full BPTT over the cached window; returns dL/dx."""
        if self._caches is None:
            raise RuntimeError("backward() called before forward()")
        steps = len(self._caches[0])
        batch = grad_outputs.shape[1]
        grad_h = [np.zeros((batch, self.hidden_size)) for _ in range(self.num_layers)]
        grad_x = np.empty((steps, batch, self.input_size))
        for t in range(steps - 1, -1, -1):
            down = grad_outputs[t]
            for k in range(self.num_layers - 1, -1, -1):
                gx, gh = self.layers[k].backward_step(grad_h[k] + down, self._caches[k][t])
                grad_h[k] = gh
                down = gx
            grad_x[t] = down
        self._caches = None
        return grad_x

    def step(self, x: np.ndarray, state: GRUState) -> tuple[np.ndarray, GRUState]:
        """Stateful single-step inference."""
        h = list(state.h)
        layer_in = x
        for k, cell in enumerate(self.layers):
            h[k] = cell.step_inference(layer_in, h[k])
            layer_in = h[k]
        return h[-1], GRUState(h=h)
