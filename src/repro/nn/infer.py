"""Fused, allocation-free inference engine for the hybrid hot path.

The paper's speedup claim rests on the approximated cluster being cheap
per packet: "prediction only involves a few matrix multiplications and
non-linear transformations" (Section 4.2).  The reference path
(:meth:`~repro.core.micro.MicroModel.predict_step`) is mathematically
that, but operationally far from it — every packet pays batch-of-one
2D matmul overhead twice per layer, a separate standardization pass,
fresh state objects, two separate head matmuls, and a dozen temporary
arrays.  This module lowers a trained model into the shape the paper
describes, once, at hybrid-simulation startup:

* each layer's ``[W_x; W_h]`` is fused into a single weight matrix so
  one GEMV per layer replaces two (LSTM; the GRU candidate gate needs
  the recurrent term un-summed, so GRU keeps two GEMVs but loses every
  allocation);
* the feature standardizer's ``(mu, sigma)`` is folded into layer 0's
  input weights and bias, so standardization disappears as a pass;
* the drop and latency heads are stacked into one ``(H, 2)`` matmul
  (per macro state for ``per_macro`` selective heads);
* all scratch and hidden-state buffers are preallocated and updated in
  place with ``out=`` ufuncs — zero per-packet allocation in steady
  state.

Weights are compiled once per :class:`CompiledRecurrentModel` and
shared (read-only) between any number of :class:`FusedInferenceEngine`
instances, each of which owns its scratch and hidden state — one
engine per (approximated cluster, direction).

Numerics: float64 is the default so fused outputs stay deterministic
and bit-comparable (to <= 1e-9) with the reference path; an opt-in
float32 mode halves the memory traffic for speed at reduced precision.
The reference ``predict_step`` stays as the oracle the fused path is
property-tested against.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.nn.gru import GRU
from repro.nn.linear import Linear
from repro.nn.lstm import LSTM
from repro.nn.selective import SelectiveLinear

#: Pre-activation clip used by the reference inference path
#: (``step_inference``); replicated exactly so outputs match.
_GATE_CLIP = 60.0

#: Logit floor below which the reference path short-circuits the
#: sigmoid to exactly 0.0; replicated for bit-compatibility.
_LOGIT_FLOOR = -500.0


def _frozen(array: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Contiguous read-only copy in the engine dtype."""
    out = np.array(array, dtype=dtype, order="C", copy=True)
    out.flags.writeable = False
    return out


class _FusedLstmLayer:
    """One LSTM layer's weights fused for single-GEMV stepping.

    ``weight`` is ``[W_x; W_h]`` stacked to ``(input + H, 4H)`` so the
    step computes ``z = [x | h] @ weight + bias``.  For layer 0 the
    feature standardizer is folded in: ``W_x' = W_x / sigma[:, None]``
    and ``bias' = bias - (mu / sigma) @ W_x``, which makes
    ``x_raw @ W_x' + bias'`` equal ``((x_raw - mu) / sigma) @ W_x + bias``.

    The gate columns are permuted from the training layout
    ``[i|f|g|o]`` to ``[i|f|o|g]`` so the three sigmoid gates form one
    contiguous block (the in-place sigmoid then skips the candidate
    block instead of wastefully covering it), and the sigmoid columns
    are *negated* so the engine computes ``sigmoid(z) = 1/(1+exp(z'))``
    straight from the GEMV output with no separate negation pass.
    Both transforms are numerically exact: a column permutation leaves
    every output element's dot product untouched, and IEEE-754
    negation distributes exactly over sums and products
    (``fl(-a + -b) == -fl(a + b)``).
    """

    __slots__ = ("weight", "bias", "input_size", "hidden_size")

    def __init__(
        self,
        w_input: np.ndarray,
        w_recurrent: np.ndarray,
        bias: np.ndarray,
        dtype: np.dtype,
    ) -> None:
        self.input_size = w_input.shape[0]
        h = self.hidden_size = w_recurrent.shape[0]
        order = np.r_[0:2 * h, 3 * h:4 * h, 2 * h:3 * h]  # [i|f|g|o] -> [i|f|o|g]
        weight = np.vstack([w_input, w_recurrent])[:, order]
        bias = bias[order].copy()
        weight[:, : 3 * h] *= -1.0  # negate sigmoid gates: z' = -z, exactly
        bias[: 3 * h] *= -1.0
        self.weight = _frozen(weight, dtype)
        self.bias = _frozen(bias, dtype)


class _FusedGruLayer:
    """One GRU layer's weights, standardizer/bias pre-folded.

    The candidate gate needs ``h @ U`` *before* the reset gating, so
    input and recurrent projections stay separate GEMVs; the layer
    still drops all temporaries (see :class:`_GruEngine`).  As in the
    LSTM layer, the sigmoid (``z``/``r``) columns of both projections
    and the bias are negated at compile time — exactly — so the engine
    skips the per-packet negation pass.  The bias is folded into
    ``w_input`` as a final row (the engine's input buffers carry a
    constant trailing 1.0), so no separate bias add runs per packet.
    """

    __slots__ = ("w_input", "w_recurrent", "input_size", "hidden_size")

    def __init__(
        self,
        w_input: np.ndarray,
        w_recurrent: np.ndarray,
        bias: np.ndarray,
        dtype: np.dtype,
    ) -> None:
        self.input_size = w_input.shape[0]
        h = self.hidden_size = w_recurrent.shape[0]
        w_input = w_input.copy()
        w_recurrent = w_recurrent.copy()
        bias = bias.copy()
        w_input[:, : 2 * h] *= -1.0  # negate z|r gates: z' = -z, exactly
        w_recurrent[:, : 2 * h] *= -1.0
        bias[: 2 * h] *= -1.0
        self.w_input = _frozen(np.vstack([w_input, bias]), dtype)
        self.w_recurrent = _frozen(w_recurrent, dtype)


def _fold_standardizer(
    w_input: np.ndarray,
    bias: np.ndarray,
    mean: np.ndarray | None,
    std: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold ``(x - mean) / std`` into layer 0's input weights and bias."""
    if mean is None or std is None:
        return w_input, bias
    mean = np.asarray(mean, dtype=np.float64)
    std = np.asarray(std, dtype=np.float64)
    folded_w = w_input / std[:, None]
    folded_b = bias - (mean / std) @ w_input
    return folded_w, folded_b


class CompiledRecurrentModel:
    """Immutable fused weights for one directional micro model.

    Built once via :func:`compile_inference`; spawn per-simulation
    hot-path executors with :meth:`engine` (each engine owns its
    hidden state and scratch, the weights are shared read-only).
    """

    def __init__(
        self,
        cell: str,
        layers: list,
        head_weight: np.ndarray,
        head_bias: np.ndarray,
        per_macro: bool,
        dtype: np.dtype,
    ) -> None:
        self.cell = cell
        self.layers = layers
        self.head_weight = head_weight
        self.head_bias = head_bias
        self.per_macro = per_macro
        self.dtype = dtype
        self.input_size = layers[0].input_size
        self.hidden_size = layers[0].hidden_size
        self.num_layers = len(layers)

    def engine(self) -> "FusedInferenceEngine":
        """A fresh hot-path executor (zeroed hidden state, own scratch)."""
        if self.cell == "lstm":
            return _LstmEngine(self)
        return _GruEngine(self)


def compile_inference(
    trunk: Union[LSTM, GRU],
    drop_head: Union[Linear, SelectiveLinear],
    latency_head: Union[Linear, SelectiveLinear],
    feature_mean: np.ndarray | None = None,
    feature_std: np.ndarray | None = None,
    dtype: Union[str, np.dtype] = np.float64,
) -> CompiledRecurrentModel:
    """Lower trained nn modules into a :class:`CompiledRecurrentModel`.

    Parameters
    ----------
    trunk:
        The recurrent trunk (:class:`~repro.nn.lstm.LSTM` or
        :class:`~repro.nn.gru.GRU`).
    drop_head, latency_head:
        The two prediction heads; both :class:`~repro.nn.linear.Linear`
        (shared heads) or both
        :class:`~repro.nn.selective.SelectiveLinear` (``per_macro``).
    feature_mean, feature_std:
        Standardizer statistics to fold into layer 0 (pass ``None`` for
        already-standardized inputs).
    dtype:
        ``float64`` (default, reference-exact) or ``float32`` (opt-in
        speed mode).
    """
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
        raise ValueError(f"dtype must be float64 or float32, got {dtype}")
    if isinstance(trunk, LSTM):
        cell, layer_cls = "lstm", _FusedLstmLayer
    elif isinstance(trunk, GRU):
        cell, layer_cls = "gru", _FusedGruLayer
    else:
        raise TypeError(f"unsupported trunk type {type(trunk).__name__}")

    layers = []
    for k, raw in enumerate(trunk.layers):
        w_input = raw.w_input.value
        bias = raw.bias.value
        if k == 0:
            w_input, bias = _fold_standardizer(
                w_input, bias, feature_mean, feature_std
            )
        layers.append(layer_cls(w_input, raw.w_recurrent.value, bias, dtype))

    per_macro = isinstance(drop_head, SelectiveLinear)
    if per_macro != isinstance(latency_head, SelectiveLinear):
        raise TypeError("drop and latency heads must be the same kind")
    if per_macro:
        # (K, H) per-head rows -> (K, H+1, 2) stacked [drop | latency],
        # bias folded in as the last weight row (the engines feed the
        # heads a hidden vector with a constant trailing 1.0).
        head_weight = np.stack(
            [drop_head.weight.value, latency_head.weight.value], axis=2
        )
        head_bias = np.stack([drop_head.bias.value, latency_head.bias.value], axis=1)
        head_weight = np.concatenate([head_weight, head_bias[:, None, :]], axis=1)
    else:
        # (H, 1) columns -> (H+1, 2) stacked [drop | latency] + bias row.
        head_weight = np.concatenate(
            [drop_head.weight.value, latency_head.weight.value], axis=1
        )
        head_bias = np.concatenate([drop_head.bias.value, latency_head.bias.value])
        head_weight = np.vstack([head_weight, head_bias])
    return CompiledRecurrentModel(
        cell=cell,
        layers=layers,
        head_weight=_frozen(head_weight, dtype),
        head_bias=_frozen(head_bias, dtype),
        per_macro=per_macro,
        dtype=dtype,
    )


class FusedInferenceEngine:
    """Base of the per-simulation hot-path executors.

    Subclasses preallocate every buffer in ``__init__`` and implement
    :meth:`predict` with in-place ``out=`` ufuncs only — after
    construction, a steady-state ``predict`` call allocates nothing.
    """

    __slots__ = ("compiled", "steps", "_head_out", "_head_w")

    def __init__(self, compiled: CompiledRecurrentModel) -> None:
        self.compiled = compiled
        self.steps = 0
        self._head_out = np.empty(2, dtype=compiled.dtype)
        if compiled.per_macro:
            # Pre-split the per-macro head stack into a tuple of 2D
            # views: tuple indexing replaces a fresh ndarray view
            # allocation per packet in _heads.
            self._head_w = tuple(
                compiled.head_weight[k] for k in range(compiled.head_weight.shape[0])
            )
        else:
            self._head_w = None

    def predict(self, features: np.ndarray, macro_index: int = 0) -> tuple[float, float]:
        """One packet: raw (unstandardized) features in, state advanced
        in place, ``(drop_probability, latency_norm)`` out."""
        raise NotImplementedError

    def reset(self) -> None:
        """Zero the hidden state (fresh packet stream)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _heads(self, hidden: np.ndarray, macro_index: int) -> tuple[float, float]:
        """Stacked-head readout: one GEMV for both predictions.

        ``hidden`` is the top layer's state with a constant trailing
        1.0, so the bias row folded into ``head_weight`` is added by
        the same GEMV — no separate bias pass.
        """
        out = self._head_out
        head_w = self._head_w
        if head_w is not None:
            np.dot(hidden, head_w[macro_index], out=out)
        else:
            np.dot(hidden, self.compiled.head_weight, out=out)
        logit = float(out[0])
        drop_prob = 1.0 / (1.0 + math.exp(-logit)) if logit > _LOGIT_FLOOR else 0.0
        return drop_prob, float(out[1])


class _LstmEngine(FusedInferenceEngine):
    """LSTM hot path: one GEMV per layer over ``[x | h]``.

    All hidden states live in one contiguous *arena* laid out
    ``[features | h_0 | h_1 | ... | 1.0]`` so that layer ``k``'s GEMV
    input ``[h_{k-1} | h_k]`` is a zero-copy slice of it — nothing is
    copied between layers, and writing ``h_k`` in place simultaneously
    updates the recurrent input of layer ``k`` and the feed-forward
    input of layer ``k+1``.  The constant trailing 1.0 extends the top
    hidden state so the head GEMV adds its folded bias row for free.
    Per-layer scratch (pre-activations ``z`` with persistent gate
    views, one ``(H,)`` candidate buffer reused for ``tanh(c)``, and
    the cell state ``c``) is allocated once.
    """

    __slots__ = ("_arena", "_xin", "_top", "_layers", "_exact")

    def __init__(self, compiled: CompiledRecurrentModel) -> None:
        super().__init__(compiled)
        dtype = compiled.dtype
        self._exact = dtype == np.dtype(np.float64)
        n0 = compiled.input_size
        hidden = compiled.hidden_size
        arena = np.zeros(n0 + compiled.num_layers * hidden + 1, dtype=dtype)
        arena[-1] = 1.0
        self._arena = arena
        self._xin = arena[:n0]
        self._top = arena[n0 + (compiled.num_layers - 1) * hidden :]  # [h_top | 1]
        self._layers = []
        offset = 0
        for k, layer in enumerate(compiled.layers):
            n, h = layer.input_size, layer.hidden_size
            z = np.empty(4 * h, dtype=dtype)
            self._layers.append(
                (
                    layer.weight,
                    layer.bias,
                    arena[offset : offset + n + h],  # GEMV input [x | h]
                    arena[offset + n : offset + n + h],  # this layer's h
                    z,
                    z[:h],  # i gate view
                    z[h : 2 * h],  # f gate view
                    z[2 * h : 3 * h],  # o gate view (compiled layout [i|f|o|g])
                    z[: 3 * h],  # sigmoid block
                    z[3 * h :],  # g pre-activation view
                    np.empty(h, dtype=dtype),  # g / tanh(c) scratch
                    np.zeros(h, dtype=dtype),  # cell state c
                )
            )
            offset += n
        assert offset + hidden + 1 == arena.shape[0]

    def reset(self) -> None:
        self._arena.fill(0.0)
        self._arena[-1] = 1.0
        for record in self._layers:
            record[-1].fill(0.0)
        self.steps = 0

    def predict(self, features: np.ndarray, macro_index: int = 0) -> tuple[float, float]:
        dot, add, mul = np.dot, np.add, np.multiply
        exact = self._exact
        self._xin[...] = features  # raw features; the standardizer is in w
        for (w, b, xh, h, z, zi, zf, zo, zs, zg, g, c) in self._layers:
            dot(xh, w, out=z)
            add(z, b, out=z)
            if exact:
                # Reproduce the reference path's +-60 clip bit-exactly
                # (the sigmoid block holds *negated* pre-activations,
                # and symmetric clipping commutes with negation).
                np.minimum(z, _GATE_CLIP, out=z)
                np.maximum(z, -_GATE_CLIP, out=z)
            else:
                # float32 speed mode: exp overflows at ~88, so only the
                # sigmoid block's upper side needs guarding; everywhere
                # else saturation lands on the correct limit (sigmoid
                # -> 0/1, tanh -> +-1) without a clip.
                np.minimum(zs, _GATE_CLIP, out=zs)
            np.tanh(zg, out=g)  # candidate, from the clipped pre-activation
            # In-place sigmoid over the contiguous [i|f|o] block; the
            # GEMV already produced the *negated* pre-activations.
            np.exp(zs, out=zs)
            add(zs, 1.0, out=zs)
            np.reciprocal(zs, out=zs)
            mul(zf, c, out=c)  # f * c_prev
            mul(zi, g, out=g)  # i * g
            add(c, g, out=c)  # c = f * c_prev + i * g
            np.tanh(c, out=g)
            mul(zo, g, out=h)  # h = o * tanh(c), in place in the arena
        self.steps += 1
        return self._heads(self._top, macro_index)


class _GruEngine(FusedInferenceEngine):
    """GRU hot path: two GEMVs per layer (candidate gate needs the raw
    recurrent projection), everything else in place.

    Every input buffer (features and each layer's state) carries a
    constant trailing 1.0, so the bias row folded into ``w_input`` and
    the head bias both ride their GEMVs for free.  Buffer roles per
    layer: ``pre`` holds ``[x | 1] @ [W; b]`` then morphs in place into
    the ``z``/``r`` gates and candidate ``n``; ``hu`` holds ``h @ U``;
    ``s`` is the single extra scratch for ``z * h``.
    """

    __slots__ = ("_layers", "_xin", "_x0", "_top", "_exact")

    def __init__(self, compiled: CompiledRecurrentModel) -> None:
        super().__init__(compiled)
        dtype = compiled.dtype
        self._exact = dtype == np.dtype(np.float64)
        self._xin = np.zeros(compiled.input_size + 1, dtype=dtype)
        self._xin[-1] = 1.0
        self._x0 = self._xin[:-1]
        self._layers = []
        previous = self._xin
        for layer in compiled.layers:
            h = layer.hidden_size
            pre = np.empty(3 * h, dtype=dtype)
            hu = np.empty(3 * h, dtype=dtype)
            state = np.zeros(h + 1, dtype=dtype)
            state[-1] = 1.0
            self._layers.append(
                (
                    layer.w_input,
                    layer.w_recurrent,
                    previous,  # GEMV input [x | 1], the prior state buffer
                    pre,
                    pre[: 2 * h],  # z|r gate block
                    pre[:h],  # z gate view
                    pre[h : 2 * h],  # r gate view
                    pre[2 * h :],  # candidate block -> n
                    hu,
                    hu[: 2 * h],
                    hu[2 * h :],
                    np.empty(h, dtype=dtype),  # z * h scratch
                    state[:h],  # hidden state h
                )
            )
            previous = state
        self._top = previous

    def reset(self) -> None:
        for record in self._layers:
            record[-1].fill(0.0)
        self.steps = 0

    def predict(self, features: np.ndarray, macro_index: int = 0) -> tuple[float, float]:
        dot, add, mul = np.dot, np.add, np.multiply
        exact = self._exact
        self._x0[...] = features
        for (w, u, xv, pre, gates, pz, pr, pn, hu, hu_gates, hu_n, s, h) in self._layers:
            dot(xv, w, out=pre)  # [x | 1] @ [W; b]
            dot(h, u, out=hu)
            add(gates, hu_gates, out=gates)  # negated pre-activations
            np.minimum(gates, _GATE_CLIP, out=gates)  # exp overflow guard
            if exact:
                # Lower side only matters for bit-parity with the
                # reference clip; float32 lets exp underflow to 0
                # (sigmoid -> 1, the correct limit).
                np.maximum(gates, -_GATE_CLIP, out=gates)
            np.exp(gates, out=gates)
            add(gates, 1.0, out=gates)
            np.reciprocal(gates, out=gates)
            mul(pr, hu_n, out=hu_n)  # r * (h @ U_n)
            add(pn, hu_n, out=pn)
            np.tanh(pn, out=pn)  # candidate n
            mul(pz, h, out=s)  # z * h
            np.subtract(1.0, pz, out=pz)  # 1 - z
            mul(pz, pn, out=pn)  # (1 - z) * n
            add(pn, s, out=h)  # h' = (1 - z) * n + z * h
        self.steps += 1
        return self._heads(self._top, macro_index)
