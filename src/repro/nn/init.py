"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int, shape: tuple[int, ...]
) -> np.ndarray:
    """Glorot/Xavier uniform initialization.

    Samples from ``U(-a, a)`` with ``a = sqrt(6 / (fan_in + fan_out))``;
    the standard choice for tanh/sigmoid gated layers like LSTMs.
    """
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def orthogonal(rng: np.random.Generator, shape: tuple[int, int]) -> np.ndarray:
    """Orthogonal initialization for recurrent weight matrices.

    Orthogonal recurrent weights keep gradient norms close to constant
    through time, which noticeably stabilizes BPTT on long packet
    sequences.
    """
    rows, cols = shape
    a = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q = q * np.sign(np.diag(r))  # make deterministic up to rng
    if rows < cols:
        q = q.T
    return q[:rows, :cols]
