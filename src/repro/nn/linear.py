"""Fully connected layer.

The paper's micro model feeds the LSTM hidden state to "one fully
connected layer to predict the latency and another fully connected
layer to predict packet drop" (Section 4.2); this is that layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.init import xavier_uniform
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    rng:
        Generator for weight initialization.
    name:
        Prefix for parameter names.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        name: str = "linear",
    ) -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            xavier_uniform(rng, in_features, out_features, (in_features, out_features)),
            name=f"{name}.weight",
        )
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias")
        self._last_input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the layer to ``x`` of shape ``(..., in_features)``.

        Caches the input for :meth:`backward`.
        """
        self._last_input = x
        return x @ self.weight.value + self.bias.value

    def forward_inference(self, x: np.ndarray) -> np.ndarray:
        """Apply the layer without caching for backprop.

        The inference hot path calls this: :meth:`forward` would pin
        every packet's hidden-state array in ``_last_input`` (keeping
        it alive until the next call) and do bookkeeping no one reads.
        """
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients; return gradient w.r.t. input.

        ``grad_out`` has the forward output's shape.  Leading dimensions
        (batch, time) are flattened for the weight gradient.
        """
        if self._last_input is None:
            raise RuntimeError("backward() called before forward()")
        x = self._last_input
        x2 = x.reshape(-1, self.in_features)
        g2 = grad_out.reshape(-1, self.out_features)
        self.weight.grad += x2.T @ g2
        self.bias.grad += g2.sum(axis=0)
        return grad_out @ self.weight.value.T

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)
