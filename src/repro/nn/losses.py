"""Loss functions, including the paper's joint drop/latency loss.

Section 4.2: "the loss function for training has two components: binary
cross entropy loss for the drop decision per packet and mean squared
error for the latency values.  A hyper-parameter alpha balances the
relative contribution ... L = L_drop + alpha * L_latency.  However, if
there is a packet drop then no latency error can be back-propagated."
:class:`JointDropLatencyLoss` implements exactly that, including the
drop masking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.activations import sigmoid


class MSELoss:
    """Mean squared error, optionally masked.

    ``forward`` returns the scalar loss; ``backward`` returns
    dL/d(pred) with the same shape as the prediction.
    """

    def forward(
        self, pred: np.ndarray, target: np.ndarray, mask: np.ndarray | None = None
    ) -> float:
        """Mean of squared errors over unmasked elements."""
        diff = pred - target
        if mask is not None:
            diff = diff * mask
            n = max(float(mask.sum()), 1.0)
        else:
            n = float(diff.size)
        self._diff, self._n = diff, n
        return float((diff**2).sum() / n)

    def backward(self) -> np.ndarray:
        """Gradient of the last ``forward``: ``2 * diff / n``."""
        return 2.0 * self._diff / self._n


class BCEWithLogitsLoss:
    """Binary cross entropy on raw logits (numerically stable).

    Uses ``max(z,0) - z*y + log(1+exp(-|z|))``, the standard stable
    form, so large-magnitude logits never overflow.
    """

    def forward(self, logits: np.ndarray, target: np.ndarray) -> float:
        """Mean BCE over all elements."""
        z, y = logits, target
        loss = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
        self._logits, self._target = z, y
        self._n = float(z.size)
        return float(loss.sum() / self._n)

    def backward(self) -> np.ndarray:
        """Gradient of the last ``forward``: ``(sigmoid(z) - y) / n``."""
        return (sigmoid(self._logits) - self._target) / self._n


@dataclass
class JointLossParts:
    """Breakdown of the joint loss (useful for training logs)."""

    total: float
    drop: float
    latency: float


class JointDropLatencyLoss:
    """The paper's micro-model loss ``L = L_drop + alpha * L_latency``.

    Parameters
    ----------
    alpha:
        Latency-term weight; the paper sets ``0 < alpha <= 1`` because
        "the contribution of drops in determining future behavior is
        more significant than latency".

    Notes
    -----
    Latency error is masked wherever the *ground truth* says the packet
    was dropped — a dropped packet has no observable latency, so no
    latency gradient may flow for it (Section 4.2).
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._bce = BCEWithLogitsLoss()
        self._mse = MSELoss()

    def forward(
        self,
        drop_logits: np.ndarray,
        latency_pred: np.ndarray,
        drop_target: np.ndarray,
        latency_target: np.ndarray,
    ) -> JointLossParts:
        """Compute the joint loss.

        All arrays share a leading shape; ``drop_target`` is 0/1 and the
        latency arrays are in (possibly normalized) latency units.
        """
        survive_mask = 1.0 - drop_target
        drop_loss = self._bce.forward(drop_logits, drop_target)
        latency_loss = self._mse.forward(latency_pred, latency_target, mask=survive_mask)
        total = drop_loss + self.alpha * latency_loss
        return JointLossParts(total=total, drop=drop_loss, latency=latency_loss)

    def backward(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(dL/d drop_logits, dL/d latency_pred)``."""
        return self._bce.backward(), self.alpha * self._mse.backward()
