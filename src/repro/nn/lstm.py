"""Multi-layer LSTM with explicit backpropagation through time.

This is the core of the paper's "micro model" (Section 4.2): a
two-layer LSTM with 128 hidden nodes whose hidden state feeds two fully
connected prediction heads.  The implementation supports:

* batched sequence training — ``forward`` over ``(T, B, F)`` inputs with
  cached activations, then ``backward`` over the same window (full BPTT);
* stateful single-step inference — ``step`` carries ``(h, c)`` across
  calls, which is how the hybrid simulator feeds packets to the model
  one at a time in simulated-time order.

Gate layout follows the usual convention: the fused projection produces
``[i | f | g | o]`` blocks (input, forget, cell-candidate, output).
The forget gate bias is initialized to 1.0, the standard trick that
prevents early training from forgetting everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.activations import sigmoid
from repro.nn.init import orthogonal, xavier_uniform
from repro.nn.module import Module, Parameter


@dataclass
class LSTMState:
    """Hidden state of a (possibly multi-layer) LSTM.

    ``h[k]`` and ``c[k]`` are the hidden/cell arrays of layer ``k``,
    each shaped ``(B, H)``.
    """

    h: list[np.ndarray]
    c: list[np.ndarray]

    def copy(self) -> "LSTMState":
        """Deep copy (used to snapshot state around what-if predictions)."""
        return LSTMState(h=[a.copy() for a in self.h], c=[a.copy() for a in self.c])


@dataclass
class _StepCache:
    """Per-timestep activations cached by the forward pass for BPTT."""

    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    i: np.ndarray
    f: np.ndarray
    g: np.ndarray
    o: np.ndarray
    c: np.ndarray
    tanh_c: np.ndarray


class LSTMCell(Module):
    """A single LSTM layer operating one timestep at a time."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        name: str = "lstm_cell",
    ) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.w_input = Parameter(
            xavier_uniform(rng, input_size, 4 * h, (input_size, 4 * h)),
            name=f"{name}.w_input",
        )
        recurrent = np.concatenate([orthogonal(rng, (h, h)) for _ in range(4)], axis=1)
        self.w_recurrent = Parameter(recurrent, name=f"{name}.w_recurrent")
        bias = np.zeros(4 * h)
        bias[h : 2 * h] = 1.0  # forget-gate bias
        self.bias = Parameter(bias, name=f"{name}.bias")

    def step(
        self, x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, _StepCache]:
        """One timestep: returns ``(h, c, cache)``.

        ``x`` is ``(B, input_size)``; ``h_prev``/``c_prev`` are ``(B, H)``.
        """
        h_size = self.hidden_size
        z = x @ self.w_input.value + h_prev @ self.w_recurrent.value + self.bias.value
        i = sigmoid(z[:, :h_size])
        f = sigmoid(z[:, h_size : 2 * h_size])
        g = np.tanh(z[:, 2 * h_size : 3 * h_size])
        o = sigmoid(z[:, 3 * h_size :])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        cache = _StepCache(x=x, h_prev=h_prev, c_prev=c_prev, i=i, f=f, g=g, o=o, c=c, tanh_c=tanh_c)
        return h, c, cache

    def step_inference(
        self, x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One timestep without gradient caching — the hot path.

        The hybrid simulator calls this once per packet, so it avoids
        everything :meth:`step` does for training's sake: no cache
        object, no branch-masked stable sigmoid (a clip to [-60, 60]
        keeps ``exp`` exact-in-float64 and overflow-free at a fraction
        of the cost).
        """
        h_size = self.hidden_size
        z = x @ self.w_input.value + h_prev @ self.w_recurrent.value + self.bias.value
        np.clip(z, -60.0, 60.0, out=z)
        gates = 1.0 / (1.0 + np.exp(-z))
        i = gates[:, :h_size]
        f = gates[:, h_size : 2 * h_size]
        o = gates[:, 3 * h_size :]
        g = np.tanh(z[:, 2 * h_size : 3 * h_size])
        c = f * c_prev + i * g
        h = o * np.tanh(c)
        return h, c

    def backward_step(
        self, grad_h: np.ndarray, grad_c: np.ndarray, cache: _StepCache
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through one timestep.

        Parameters
        ----------
        grad_h:
            dL/dh for this step (sum of output-head gradient and the
            recurrent gradient flowing back from step t+1).
        grad_c:
            dL/dc flowing back from step t+1.
        cache:
            Activations saved by :meth:`step`.

        Returns
        -------
        (grad_x, grad_h_prev, grad_c_prev)
            Gradients to propagate to the layer below and to step t-1.
            Parameter gradients are accumulated in place.
        """
        i, f, g, o = cache.i, cache.f, cache.g, cache.o
        dc = grad_c + grad_h * o * (1.0 - cache.tanh_c**2)
        do = grad_h * cache.tanh_c
        di = dc * g
        df = dc * cache.c_prev
        dg = dc * i
        dz = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g**2),
                do * o * (1.0 - o),
            ],
            axis=1,
        )
        self.w_input.grad += cache.x.T @ dz
        self.w_recurrent.grad += cache.h_prev.T @ dz
        self.bias.grad += dz.sum(axis=0)
        grad_x = dz @ self.w_input.value.T
        grad_h_prev = dz @ self.w_recurrent.value.T
        grad_c_prev = dc * f
        return grad_x, grad_h_prev, grad_c_prev


class LSTM(Module):
    """Stack of :class:`LSTMCell` layers.

    Parameters
    ----------
    input_size:
        Feature width of the input sequence.
    hidden_size:
        Hidden width of every layer (the paper uses 128).
    num_layers:
        Stack depth (the paper uses 2).
    rng:
        Generator for initialization.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int,
        rng: np.random.Generator,
        name: str = "lstm",
    ) -> None:
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.layers = [
            LSTMCell(
                input_size if k == 0 else hidden_size,
                hidden_size,
                rng,
                name=f"{name}.layer{k}",
            )
            for k in range(num_layers)
        ]
        self._caches: Optional[list[list[_StepCache]]] = None  # [layer][t]

    def initial_state(self, batch_size: int) -> LSTMState:
        """Zero state for a batch of the given size."""
        shape = (batch_size, self.hidden_size)
        return LSTMState(
            h=[np.zeros(shape) for _ in range(self.num_layers)],
            c=[np.zeros(shape) for _ in range(self.num_layers)],
        )

    def forward(
        self, x: np.ndarray, state: Optional[LSTMState] = None
    ) -> tuple[np.ndarray, LSTMState]:
        """Run a full sequence; caches activations for :meth:`backward`.

        ``x`` is ``(T, B, input_size)``; returns top-layer outputs
        ``(T, B, hidden_size)`` and the final state.
        """
        steps, batch, _ = x.shape
        if state is None:
            state = self.initial_state(batch)
        h = [a.copy() for a in state.h]
        c = [a.copy() for a in state.c]
        self._caches = [[] for _ in range(self.num_layers)]
        outputs = np.empty((steps, batch, self.hidden_size))
        for t in range(steps):
            layer_in = x[t]
            for k, cell in enumerate(self.layers):
                h[k], c[k], cache = cell.step(layer_in, h[k], c[k])
                self._caches[k].append(cache)
                layer_in = h[k]
            outputs[t] = h[-1]
        return outputs, LSTMState(h=h, c=c)

    def backward(self, grad_outputs: np.ndarray) -> np.ndarray:
        """Full BPTT over the window cached by the last :meth:`forward`.

        ``grad_outputs`` is dL/d(top-layer output) of shape ``(T, B, H)``.
        Returns dL/dx of shape ``(T, B, input_size)``.  The gradient into
        the initial state is discarded (training always starts windows
        from a detached state, as PyTorch users do with
        truncated BPTT).
        """
        if self._caches is None:
            raise RuntimeError("backward() called before forward()")
        steps = len(self._caches[0])
        batch = grad_outputs.shape[1]
        zero = np.zeros((batch, self.hidden_size))
        grad_h = [zero.copy() for _ in range(self.num_layers)]
        grad_c = [zero.copy() for _ in range(self.num_layers)]
        grad_x = np.empty((steps, batch, self.input_size))
        for t in range(steps - 1, -1, -1):
            # Top layer receives the loss gradient plus its own recurrence.
            down = grad_outputs[t]
            for k in range(self.num_layers - 1, -1, -1):
                total_h = grad_h[k] + down
                gx, gh, gc = self.layers[k].backward_step(total_h, grad_c[k], self._caches[k][t])
                grad_h[k], grad_c[k] = gh, gc
                down = gx  # flows into the layer below as its output grad
            grad_x[t] = down
        self._caches = None
        return grad_x

    def step(self, x: np.ndarray, state: LSTMState) -> tuple[np.ndarray, LSTMState]:
        """Stateful single-step inference (no caching, no gradients).

        ``x`` is ``(B, input_size)``; returns the top-layer hidden output
        ``(B, H)`` and the updated state.  This is the call the hybrid
        simulator makes once per packet.
        """
        h = list(state.h)
        c = list(state.c)
        layer_in = x
        for k, cell in enumerate(self.layers):
            h[k], c[k] = cell.step_inference(layer_in, h[k], c[k])
            layer_in = h[k]
        return h[-1], LSTMState(h=h, c=c)
