"""Parameter and module containers.

There is no autograd here — each layer implements explicit ``forward``
and ``backward`` methods and accumulates gradients into its
:class:`Parameter` objects.  This keeps the substrate small, auditable,
and numerically checkable (see ``repro.nn.gradcheck``), which is what a
reproduction needs more than generality.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Attributes
    ----------
    value:
        The parameter array (updated in place by optimizers).
    grad:
        Accumulated gradient of the loss w.r.t. ``value``; same shape.
    name:
        Dotted path used in serialization and error messages.
    """

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the parameter array."""
        return self.value.shape

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name or '?'}, shape={self.value.shape})"


class Module:
    """Base class for layers and models.

    Subclasses register :class:`Parameter` attributes and sub-``Module``
    attributes simply by assigning them; :meth:`parameters` walks the
    object graph in deterministic (attribute insertion) order.
    """

    def parameters(self) -> Iterator[Parameter]:
        """Yield all trainable parameters, depth-first, insertion order."""
        for attr in vars(self).values():
            if isinstance(attr, Parameter):
                yield attr
            elif isinstance(attr, Module):
                yield from attr.parameters()
            elif isinstance(attr, (list, tuple)):
                for item in attr:
                    if isinstance(item, Parameter):
                        yield item
                    elif isinstance(item, Module):
                        yield from item.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield (dotted-name, parameter) pairs for serialization."""
        for name, attr in vars(self).items():
            path = f"{prefix}{name}"
            if isinstance(attr, Parameter):
                yield path, attr
            elif isinstance(attr, Module):
                yield from attr.named_parameters(prefix=f"{path}.")
            elif isinstance(attr, (list, tuple)):
                for i, item in enumerate(attr):
                    sub = f"{path}.{i}"
                    if isinstance(item, Parameter):
                        yield sub, item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{sub}.")

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for param in self.parameters():
            param.zero_grad()

    def parameter_count(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.value.size for p in self.parameters())
