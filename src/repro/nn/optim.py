"""Optimizers.

The paper trains with "the stochastic gradient descent optimizer with a
learning rate of 0.0001 and momentum of 0.9" (Section 4.2); :class:`SGD`
defaults to those values.  :class:`Adam` is provided for the capacity /
loss-weight ablations, and :func:`clip_gradients` guards BPTT against
the occasional exploding gradient on bursty traffic windows.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


def clip_gradients(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (handy for training diagnostics).
    """
    params = list(parameters)
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class SGD:
    """Stochastic gradient descent with classical momentum.

    Update: ``v = momentum * v + grad``; ``param -= lr * v``.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-4,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            v *= self.momentum
            v += grad
            p.value -= self.lr * v

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.parameters:
            p.zero_grad()


class Adam:
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one bias-corrected Adam update."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad**2
            p.value -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.parameters:
            p.zero_grad()
