"""Per-sample selectable linear heads (mixture-of-heads routing).

Section 7 of the paper points at "multi-scale and hierarchical
recurrent neural network models [that] can simultaneously capture
macro and micro effects" as a future direction.  The lightest
hierarchical coupling consistent with the paper's macro/micro split is
to condition the *prediction heads* on the macro state: one linear
head per congestion regime, hard-selected per packet by the macro
classifier's output.  The LSTM trunk stays shared (micro dynamics);
the mapping from hidden state to drop/latency becomes regime-specific
(macro dynamics).

:class:`SelectiveLinear` implements K parallel ``(in_features -> 1)``
heads with per-sample integer routing, with exact gradients (verified
by the test suite's numerical checks).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.init import xavier_uniform
from repro.nn.module import Module, Parameter


class SelectiveLinear(Module):
    """K parallel scalar heads; per-sample selection by index.

    Parameters
    ----------
    in_features:
        Input width (the trunk's hidden size).
    num_heads:
        Number of selectable heads (4 for the macro states).
    rng:
        Initialization generator.
    """

    def __init__(
        self,
        in_features: int,
        num_heads: int,
        rng: np.random.Generator,
        name: str = "selective",
    ) -> None:
        if num_heads < 1:
            raise ValueError(f"num_heads must be >= 1, got {num_heads}")
        self.in_features = in_features
        self.num_heads = num_heads
        self.weight = Parameter(
            xavier_uniform(rng, in_features, 1, (num_heads, in_features)),
            name=f"{name}.weight",
        )
        self.bias = Parameter(np.zeros(num_heads), name=f"{name}.bias")
        self._last_input: Optional[np.ndarray] = None
        self._last_index: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, index: np.ndarray) -> np.ndarray:
        """Apply head ``index[i]`` to sample ``x[i]``.

        ``x`` is ``(..., in_features)``; ``index`` matches the leading
        shape and holds ints in ``[0, num_heads)``.  Returns ``(...)``.
        """
        index = np.asarray(index, dtype=np.intp)
        if index.shape != x.shape[:-1]:
            raise ValueError(
                f"index shape {index.shape} does not match input leading "
                f"shape {x.shape[:-1]}"
            )
        if index.size and (index.min() < 0 or index.max() >= self.num_heads):
            raise ValueError(
                f"head indices must be in [0, {self.num_heads}), got "
                f"[{index.min()}, {index.max()}]"
            )
        self._last_input = x
        self._last_index = index
        selected = self.weight.value[index]  # (..., in_features)
        return (selected * x).sum(axis=-1) + self.bias.value[index]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate per-head gradients; return dL/dx."""
        if self._last_input is None or self._last_index is None:
            raise RuntimeError("backward() called before forward()")
        x = self._last_input
        index = self._last_index
        grad = np.asarray(grad_out)
        flat_x = x.reshape(-1, self.in_features)
        flat_idx = index.reshape(-1)
        flat_grad = grad.reshape(-1)
        np.add.at(self.weight.grad, flat_idx, flat_x * flat_grad[:, None])
        np.add.at(self.bias.grad, flat_idx, flat_grad)
        return self.weight.value[index] * grad[..., None]

    def forward_single(self, x: np.ndarray, head: int) -> float:
        """Scalar fast path for inference: one sample, one head."""
        return float(x @ self.weight.value[head] + self.bias.value[head])
