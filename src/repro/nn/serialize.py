"""Model serialization.

The paper's workflow (Figure 3) trains a cluster model once and then
*reuses* it across large-scale simulations; that requires durable model
files.  We store parameters as an ``.npz`` archive keyed by the dotted
parameter names from :meth:`Module.named_parameters`, plus arbitrary
metadata arrays under a reserved prefix.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import numpy as np

from repro.nn.module import Module

_META_PREFIX = "__meta__:"


def normalize_npz_path(path: str | Path) -> Path:
    """The path ``np.savez`` actually writes: ``.npz`` appended unless present.

    ``np.savez("m")`` silently writes ``m.npz``; without this shared
    normalization a ``save_module_state("m")`` /
    ``load_module_state(model, "m")`` pair would save fine and then
    fail to load.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_module_state(
    module: Module, path: str | Path, metadata: Optional[dict[str, np.ndarray]] = None
) -> Path:
    """Save all parameters of ``module`` (and optional metadata) to ``path``.

    Returns the path actually written (``.npz`` suffix guaranteed).
    """
    path = normalize_npz_path(path)
    arrays: dict[str, np.ndarray] = {
        name: param.value for name, param in module.named_parameters()
    }
    for key, value in (metadata or {}).items():
        arrays[_META_PREFIX + key] = np.asarray(value)
    np.savez(path, **arrays)
    return path


def load_module_state(module: Module, path: str | Path) -> dict[str, np.ndarray]:
    """Load parameters saved by :func:`save_module_state` into ``module``.

    Accepts the same suffix-less paths :func:`save_module_state` does
    (an existing exact path is preferred over the normalized one).
    Returns the metadata dict.  Raises ``KeyError`` if the file is
    missing a parameter the module expects, and ``ValueError`` on shape
    mismatch — silent partial loads would corrupt experiments.
    """
    path = Path(path)
    if not path.exists():
        path = normalize_npz_path(path)
    with np.load(path) as archive:
        data = {key: archive[key] for key in archive.files}
    for name, param in module.named_parameters():
        if name not in data:
            raise KeyError(f"checkpoint {path} is missing parameter {name!r}")
        value = data[name]
        if value.shape != param.value.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: checkpoint {value.shape}, "
                f"module {param.value.shape}"
            )
        param.value[...] = value
    return {
        key[len(_META_PREFIX) :]: value
        for key, value in data.items()
        if key.startswith(_META_PREFIX)
    }
