"""Unified observability: metrics registry, span profiling, sim-time probes.

One :class:`MetricsRegistry` per run collects everything the repo used
to scatter across ad-hoc counters: labeled counters/gauges, bounded
histograms (:class:`~repro.analysis.streaming.StreamingStats` backend),
wall-clock :class:`Span` profiling of the DES event loop, trainer
batches, hybrid inference, and sweep dispatch, plus simulated-time
probes of queue depths, macro states, and per-cluster model health.

Snapshots embed in run manifests; ``write_jsonl`` exports the full
stream (``repro ... --metrics-out metrics.jsonl``); ``repro obs show``
pretty-prints either.
"""

from repro.obs.probes import (
    DEFAULT_TICKS,
    SimTimeProbes,
    attach_cascade_probes,
    attach_hybrid_probes,
    attach_network_probes,
    default_period,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProbeSample,
    Span,
    read_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProbeSample",
    "Span",
    "SimTimeProbes",
    "DEFAULT_TICKS",
    "attach_cascade_probes",
    "attach_hybrid_probes",
    "attach_network_probes",
    "default_period",
    "read_jsonl",
]
