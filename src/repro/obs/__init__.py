"""Unified observability: metrics registry, span profiling, sim-time probes.

One :class:`MetricsRegistry` per run collects everything the repo used
to scatter across ad-hoc counters: labeled counters/gauges, bounded
histograms (:class:`~repro.analysis.streaming.StreamingStats` backend),
wall-clock :class:`Span` profiling of the DES event loop, trainer
batches, hybrid inference, and sweep dispatch, plus simulated-time
probes of queue depths, macro states, and per-cluster model health.

Snapshots embed in run manifests; ``write_jsonl`` exports the full
stream (``repro ... --metrics-out metrics.jsonl``); ``repro obs show``
pretty-prints either.

:mod:`repro.obs.trace` adds the per-flow layer the aggregates lack: a
deterministic :class:`FlightRecorder` ring buffer of sim-time-stamped
spans keyed by seed-derived trace ids, merged across PDES workers and
exported to JSONL or Chrome trace-event JSON (``repro trace ...``).
"""

from repro.obs.probes import (
    DEFAULT_TICKS,
    SimTimeProbes,
    attach_cascade_probes,
    attach_hybrid_probes,
    attach_network_probes,
    default_period,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ProbeSample,
    Span,
    read_jsonl,
)
from repro.obs.trace import (
    DEFAULT_TRACE_CAPACITY,
    FlightRecorder,
    flow_events,
    merge_traces,
    read_trace_jsonl,
    to_chrome_trace,
    top_spans,
    trace_id,
    write_trace_jsonl,
)

__all__ = [
    "DEFAULT_TRACE_CAPACITY",
    "FlightRecorder",
    "flow_events",
    "merge_traces",
    "read_trace_jsonl",
    "to_chrome_trace",
    "top_spans",
    "trace_id",
    "write_trace_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProbeSample",
    "Span",
    "SimTimeProbes",
    "DEFAULT_TICKS",
    "attach_cascade_probes",
    "attach_hybrid_probes",
    "attach_network_probes",
    "default_period",
    "read_jsonl",
]
