"""Sim-time probes: periodic samplers driven by the DES kernel itself.

Wall-clock spans answer "where does the *time* go"; probes answer
"where does the *approximation* go" — they sample simulation state
(queue depths, macro regimes, per-cluster drop rates and latency) on a
configurable *simulated*-time period, so the samples line up with the
event timeline rather than with the host's scheduler.  That is exactly
the view the paper's fidelity argument needs (Section 3.3's macro-state
regimes and drop/latency accuracy are all functions of simulated time).

A probe tick is an ordinary kernel event: samples are emitted in event
order, interleaved deterministically with the traffic they observe, and
a probe never draws from any random stream — adding one cannot perturb
a seeded run's packet schedule (the same invariant ``StreamingStats``
keeps for the hot path).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.obs.registry import MetricsRegistry

#: Default number of probe ticks across a run when no period is given.
DEFAULT_TICKS = 50


class SimTimeProbes:
    """A set of named samplers fired on a fixed simulated-time period.

    Parameters
    ----------
    registry:
        Destination for samples (each also feeds a ``probe.<name>``
        histogram, so manifests get distribution summaries even when
        the bounded raw-sample stream overflows).
    sim:
        The simulator whose clock drives the ticks.
    period_s:
        Simulated seconds between ticks.

    Samplers are zero-argument callables returning a float; register
    them with :meth:`add` before :meth:`start`.  Ticks self-reschedule
    until :meth:`stop` (or until the simulator runs dry).
    """

    def __init__(
        self, registry: MetricsRegistry, sim, period_s: float
    ) -> None:
        if period_s <= 0:
            raise ValueError(f"probe period_s must be positive, got {period_s}")
        self.registry = registry
        self.sim = sim
        self.period_s = period_s
        self.ticks = 0
        self._samplers: list[tuple[str, Callable[[], float], dict[str, Any]]] = []
        self._event = None
        self._stopped = False
        #: Optional zero-argument callable invoked at the top of every
        #: tick, *before* any sampler runs.  The hybrid probe set uses
        #: it to flush held inference batches so samplers never read
        #: model state that excludes packets already inside the
        #: batching window.
        self.before_tick: Optional[Callable[[], None]] = None

    def add(self, name: str, fn: Callable[[], float], **labels: Any) -> "SimTimeProbes":
        """Register one sampler under ``probe.<name>`` (chainable)."""
        self._samplers.append((name, fn, labels))
        return self

    # ------------------------------------------------------------------
    def start(self) -> "SimTimeProbes":
        """Schedule the first tick one period from now."""
        if self.registry.enabled and self._samplers:
            self._event = self.sim.schedule(self.period_s, self._tick)
        return self

    def stop(self) -> None:
        """Cancel future ticks (already-recorded samples are kept)."""
        self._stopped = True
        if self._event is not None and self._event.pending:
            self.sim.cancel(self._event)
        self._event = None

    def _tick(self) -> None:
        if self.before_tick is not None:
            self.before_tick()
        now = self.sim.now
        self.ticks += 1
        registry = self.registry
        for name, fn, labels in self._samplers:
            value = float(fn())
            registry.record_probe(now, name, value, **labels)
            registry.histogram(f"probe.{name}", **labels).observe(value)
        if not self._stopped:
            self._event = self.sim.schedule(self.period_s, self._tick)


# ----------------------------------------------------------------------
# Standard probe sets
# ----------------------------------------------------------------------
def default_period(duration_s: float, ticks: int = DEFAULT_TICKS) -> float:
    """A probe period giving ~``ticks`` samples over ``duration_s``."""
    return max(duration_s / ticks, 1e-9)


def attach_network_probes(
    registry: MetricsRegistry,
    sim,
    network,
    period_s: float,
) -> Optional[SimTimeProbes]:
    """Queue-depth probes for any (full or hybrid) network.

    Samples total queued bytes across all ports plus the single
    deepest port — the congestion picture at simulated-time
    resolution.  Returns the started probe set (None when disabled).
    """
    if not registry.enabled:
        return None
    ports = list(network.ports().values())
    probes = SimTimeProbes(registry, sim, period_s)
    probes.add("queue_depth_bytes", network.total_queued_bytes)
    probes.add(
        "queue_depth_max_bytes",
        lambda: max((port.queued_bytes for port in ports), default=0),
    )
    return probes.start()


def attach_hybrid_probes(
    registry: MetricsRegistry,
    sim,
    hybrid_sim,
    period_s: float,
) -> Optional[SimTimeProbes]:
    """The hybrid observability set: queues + per-cluster model health.

    Per approximated cluster, samples the macro state, the cumulative
    drop rate of model decisions, and the mean predicted region
    latency — the quantities a fidelity postmortem localizes error
    with (which cluster, which regime, drops or latency).
    """
    if not registry.enabled:
        return None
    probes = SimTimeProbes(registry, sim, period_s)
    # With event-horizon batching on, packets can be held when a tick
    # fires; flush first so the sampled counters/macro states include
    # everything that arrived before the tick (flushing early is always
    # causally safe — see repro.core.batcher).
    probes.before_tick = hybrid_sim.flush_inference
    network = hybrid_sim.network
    ports = list(network.ports().values())
    probes.add("queue_depth_bytes", network.total_queued_bytes)
    probes.add(
        "queue_depth_max_bytes",
        lambda: max((port.queued_bytes for port in ports), default=0),
    )
    for cluster, model in hybrid_sim.models.items():
        labels = {"cluster": cluster}
        probes.add("macro_state", lambda m=model: m.macro.state.value, **labels)
        probes.add(
            "model_drop_rate",
            lambda m=model: (m.packets_dropped / m.packets_handled)
            if m.packets_handled
            else 0.0,
            **labels,
        )
        probes.add(
            "model_latency_mean_s",
            lambda m=model: m.latency_stats.mean if m.latency_stats.count else 0.0,
            **labels,
        )
    return probes.start()


def attach_cascade_probes(
    registry: MetricsRegistry,
    sim,
    cascade_sim,
    period_s: float,
) -> Optional[SimTimeProbes]:
    """The cascade observability set: hybrid probes + controller state.

    On top of the hybrid set (queues, per-cluster model health),
    samples every region's current tier (as its
    :class:`~repro.cascade.config.Tier` value, so a promotion shows as
    a 1 -> 2 step in the probe stream), the fluid tier's active-flow
    count, and the reference window's sample depth — the inputs a
    controller postmortem needs lined up against the decisions it
    took.
    """
    if not registry.enabled:
        return None
    probes = attach_hybrid_probes(registry, sim, cascade_sim.hybrid, period_s)
    if probes is None:
        return None
    # Deliberately NOT advancing the fluid clock here: step_to would
    # change the float chunking of fluid progress (sub-ULP drift in
    # remaining bytes), making the decision log depend on whether
    # probes are attached.  Fluid samplers read state as of the last
    # epoch boundary/admission instead — observation stays strictly
    # non-perturbing, byte-for-byte.
    for region in cascade_sim.regions:
        probes.add(
            "cascade_tier",
            lambda r=region: float(cascade_sim.controller.tiers[r].value),
            cluster=region,
        )
    probes.add("cascade_fluid_active_flows", lambda: float(cascade_sim.fluid.active_flows))
    probes.add(
        "cascade_reference_fct_samples",
        lambda: float(len(cascade_sim.reference.fct)),
    )
    return probes
