"""The metrics registry: labeled counters, gauges, histograms, spans.

Every subsystem that measures something — the DES event loop, the
trainer, the hybrid hot path, the sweep scheduler — measures it through
one :class:`MetricsRegistry`, so a run's telemetry shares a single
schema and lands in one place (the run manifest and, optionally, a
JSONL stream).  Before this layer existed the repo had five ad-hoc
mechanisms (``hot_path_counters`` dicts, ``inference_seconds`` floats,
``simlog`` prefixes, ``PacketTracer`` rows, ``StreamingStats``
objects), none of which agreed on names or reached the manifests.

Design constraints, in order:

1. **Free when disabled.**  A disabled registry hands out shared
   singleton no-op instruments, allocates nothing per observation, and
   snapshots to a one-key dict.  Hot paths that want literally zero
   cost can ask :meth:`MetricsRegistry.handles_enabled` and keep
   ``None`` handles behind a single ``is not None`` branch.
2. **Allocation-free when enabled.**  Instruments are created once
   (get-or-create keyed by name + sorted labels) and cached; observing
   is attribute arithmetic or a :class:`~repro.analysis.streaming.
   StreamingStats` update — both O(1) and allocation-free in steady
   state.
3. **Bounded.**  Histograms use the bounded streaming backend; probe
   samples (see :mod:`repro.obs.probes`) are capped with an explicit
   drop counter, so a million-packet run cannot blow up a manifest.

Wall-clock profiling uses :meth:`MetricsRegistry.span` — a nestable,
exception-safe, *reusable* context manager::

    span = registry.span("train.batch")
    for batch in batches:
        with span:
            step(batch)

Spans record every entry/exit pair into a histogram of seconds, keep a
running total, and survive exceptions (the timing is recorded in
``finally``); recursive re-entry is handled with a start-time stack.
"""

from __future__ import annotations

import json
import time as _wallclock
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.analysis.streaming import StreamingStats

#: Label sets are stored canonically as sorted (key, value) tuples.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_dict(key: LabelKey) -> dict[str, str]:
    return dict(key)


class Counter:
    """A labeled, monotonically non-decreasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, by: float = 1.0) -> None:
        """Add ``by`` (must be non-negative)."""
        if by < 0:
            raise ValueError(f"counter {self.name!r} increment must be >= 0, got {by}")
        self.value += by


class Gauge:
    """A labeled point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """A labeled distribution over a bounded streaming backend.

    Thin wrapper over :class:`StreamingStats`: Welford moments plus a
    deterministic bounded systematic sample for quantiles — O(1) per
    observation, O(max_samples) memory, no RNG draws (so instrumenting
    a hot path never perturbs the simulation's random streams).
    """

    __slots__ = ("name", "labels", "stats")

    def __init__(self, name: str, labels: LabelKey = (), max_samples: int = 1024) -> None:
        self.name = name
        self.labels = labels
        self.stats = StreamingStats(max_samples=max_samples)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.stats.add(value)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's observations into this one."""
        self.stats.merge(other.stats)
        return self

    @property
    def count(self) -> int:
        return self.stats.count

    def summary(self) -> dict[str, float]:
        """Plain-dict snapshot (count/mean/std/min/max/percentiles)."""
        return self.stats.summary()


class Span:
    """Reusable wall-clock profiling scope.

    ``with span:`` times the enclosed block and records the elapsed
    seconds into a bounded histogram.  Properties:

    * **reusable** — one span object times many entries (the common
      per-batch / per-event-loop pattern);
    * **nestable** — recursive re-entry pushes onto a start stack, so
      a span used inside itself still times each level correctly;
    * **exception-safe** — the exit arm runs under ``finally``
      semantics of the context protocol: an exception inside the block
      still records its duration (and bumps ``errors``).
    """

    __slots__ = ("name", "labels", "count", "errors", "total_s", "_times", "_starts")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.errors = 0
        self.total_s = 0.0
        self._times = StreamingStats(max_samples=512)
        self._starts: list[float] = []

    def __enter__(self) -> "Span":
        self._starts.append(_wallclock.perf_counter())
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = _wallclock.perf_counter() - self._starts.pop()
        self.count += 1
        self.total_s += elapsed
        self._times.add(elapsed)
        if exc_type is not None:
            self.errors += 1
        return False  # never swallow exceptions

    @property
    def depth(self) -> int:
        """Current nesting depth (0 when not inside the span)."""
        return len(self._starts)

    def summary(self) -> dict[str, float]:
        """Count, error count, total seconds, and per-entry stats."""
        out = {"count": self.count, "errors": self.errors, "total_s": self.total_s}
        out.update({f"seconds_{k}": v for k, v in self._times.summary().items() if k != "count"})
        return out


# ----------------------------------------------------------------------
# Disabled-mode singletons
# ----------------------------------------------------------------------
class _NullCounter:
    __slots__ = ()

    def inc(self, by: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    count = 0

    def observe(self, value: float) -> None:
        pass

    def merge(self, other) -> "_NullHistogram":
        return self

    def summary(self) -> dict[str, float]:
        return {"count": 0}


class _NullSpan:
    __slots__ = ()
    count = 0
    errors = 0
    total_s = 0.0
    depth = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def summary(self) -> dict[str, float]:
        return {"count": 0, "errors": 0, "total_s": 0.0}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
NULL_SPAN = _NullSpan()


# ----------------------------------------------------------------------
# Probe samples (recorded by repro.obs.probes, stored here so one
# object owns the whole telemetry of a run)
# ----------------------------------------------------------------------
class ProbeSample:
    """One sim-time-stamped observation from a periodic probe."""

    __slots__ = ("t_sim", "name", "labels", "value")

    def __init__(self, t_sim: float, name: str, labels: LabelKey, value: float) -> None:
        self.t_sim = t_sim
        self.name = name
        self.labels = labels
        self.value = value

    def to_dict(self) -> dict[str, Any]:
        return {
            "t_sim": self.t_sim,
            "name": self.name,
            "labels": _labels_dict(self.labels),
            "value": self.value,
        }


class MetricsRegistry:
    """One run's worth of named, labeled instruments.

    Parameters
    ----------
    enabled:
        When False every accessor returns a shared no-op singleton and
        the registry records nothing — the whole layer costs a handful
        of attribute reads at setup time and nothing afterwards.
    max_probe_samples:
        Cap on retained probe samples; later samples are counted in
        ``probe_samples_dropped`` but not stored.
    """

    def __init__(self, enabled: bool = True, max_probe_samples: int = 4096) -> None:
        self.enabled = enabled
        self.max_probe_samples = max_probe_samples
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self._spans: dict[tuple[str, LabelKey], Span] = {}
        self._probe_samples: list[ProbeSample] = []
        self.probe_samples_dropped = 0

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create; stable identity per key)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``(name, labels)`` (created on first use)."""
        if not self.enabled:
            return NULL_COUNTER
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``(name, labels)``."""
        if not self.enabled:
            return NULL_GAUGE
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(self, name: str, max_samples: int = 1024, **labels: Any) -> Histogram:
        """The histogram for ``(name, labels)``."""
        if not self.enabled:
            return NULL_HISTOGRAM
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1], max_samples)
        return instrument

    def span(self, name: str, **labels: Any) -> Span:
        """The profiling span for ``(name, labels)``."""
        if not self.enabled:
            return NULL_SPAN
        key = (name, _label_key(labels))
        instrument = self._spans.get(key)
        if instrument is None:
            instrument = self._spans[key] = Span(name, key[1])
        return instrument

    # ------------------------------------------------------------------
    def handles_enabled(self) -> bool:
        """True when callers should create (and pay for) handles.

        The pattern for per-packet hot paths::

            self._m_infer = metrics.histogram(...) if metrics is not None \\
                and metrics.handles_enabled() else None
            ...
            if self._m_infer is not None:   # one branch per packet
                self._m_infer.observe(dt)
        """
        return self.enabled

    # ------------------------------------------------------------------
    # Probe sample stream
    # ------------------------------------------------------------------
    def record_probe(self, t_sim: float, name: str, value: float, **labels: Any) -> None:
        """Append one sim-time-stamped probe observation (bounded)."""
        if not self.enabled:
            return
        if len(self._probe_samples) >= self.max_probe_samples:
            self.probe_samples_dropped += 1
            return
        self._probe_samples.append(
            ProbeSample(t_sim, name, _label_key(labels), float(value))
        )

    @property
    def probe_samples(self) -> list[ProbeSample]:
        """Retained probe samples, in recording (event) order."""
        return list(self._probe_samples)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of every instrument (embedded in manifests)."""
        if not self.enabled:
            return {"enabled": False}

        def entry(instrument, payload) -> dict[str, Any]:
            out: dict[str, Any] = {"name": instrument.name}
            if instrument.labels:
                out["labels"] = _labels_dict(instrument.labels)
            out.update(payload)
            return out

        return {
            "enabled": True,
            "counters": [
                entry(c, {"value": c.value}) for c in self._counters.values()
            ],
            "gauges": [entry(g, {"value": g.value}) for g in self._gauges.values()],
            "histograms": [
                entry(h, {"summary": h.summary()}) for h in self._histograms.values()
            ],
            "spans": [entry(s, {"summary": s.summary()}) for s in self._spans.values()],
            "probes": {
                "samples": [sample.to_dict() for sample in self._probe_samples],
                "dropped": self.probe_samples_dropped,
            },
        }

    def iter_jsonl_records(self) -> Iterator[dict[str, Any]]:
        """The JSONL export stream, one record dict at a time.

        Probe samples come first (they carry sim-time ordering); final
        instrument states follow.
        """
        for sample in self._probe_samples:
            yield {"type": "probe", **sample.to_dict()}
        snapshot = self.snapshot()
        for kind, singular in (
            ("counters", "counter"),
            ("gauges", "gauge"),
            ("histograms", "histogram"),
            ("spans", "span"),
        ):
            for record in snapshot.get(kind, []):
                yield {"type": singular, **record}

    def write_jsonl(self, path: str | Path) -> int:
        """Write the full metrics stream as JSON Lines; returns rows.

        The first line is a ``meta`` header (enabled flag, dropped
        probe count) so consumers can sanity-check completeness.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = 0
        with path.open("w") as handle:
            header = {
                "type": "meta",
                "enabled": self.enabled,
                "probe_samples_dropped": self.probe_samples_dropped,
            }
            handle.write(json.dumps(header) + "\n")
            rows += 1
            for record in self.iter_jsonl_records():
                handle.write(json.dumps(record) + "\n")
                rows += 1
        return rows


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse a metrics JSONL file back into record dicts."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
