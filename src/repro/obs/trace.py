"""Deterministic distributed tracing: follow one flow across tiers and workers.

The tracing layer answers the question the per-process aggregates in
:mod:`repro.obs.registry` cannot: *what happened to this one flow* as it
crossed the traffic generator, a cascade tier handoff, the batched
inference hot path, and a PDES cut-link exchange.  Its contract is the
same one the metrics layer set:

- **RNG-free and sim-time-stamped.**  A recorder never draws random
  numbers, never schedules simulator events, and stamps records with
  simulation time (plus a deterministic per-recorder sequence number) —
  so seeded outcomes are byte-identical with tracing on or off.
- **Stable ids.**  A flow's trace id is derived from ``(seed, flow id)``
  by :func:`trace_id` — no wall-clock or PID entropy — so the same flow
  gets the same id in a single-process run, on every PDES worker that
  touches it, and across re-runs.
- **Bounded.**  Records land in a per-process ring buffer (the "flight
  recorder"); overflow evicts the oldest record and counts it.  The tail
  survives worker crashes: a dying shard attaches its last window of
  records to the structured crash payload.
- **One branch when disabled.**  There is no null recorder: hot paths
  hold an optional tracer and pay a single ``is not None`` check per
  packet when tracing is off.

Span taxonomy (the ``name`` field):

====================  ==========================================================
``flow.admit``        traffic-generator admission (or shard-local flow launch)
``flow.complete``     flow completion with its FCT
``tier.dispatch``     cascade admission routed to a fidelity tier
``tier.handoff``      cascade promote/demote handoff through a ``TierAdapter``
``model.decide``      approximated-cluster delivery (span: arrival → delivery)
``model.drop``        approximated-cluster drop decision
``batch.round``       one ``InferenceBatcher`` flush round (memo hit/miss deltas)
``exchange.send``     PDES windowed exchange, sender side (worker, window seq)
``exchange.recv``     PDES exchange delivery on the receiving worker
``invariant.violation``  ``InvariantChecker`` finding, annotated with trace id
====================  ==========================================================

Merged traces (:func:`merge_traces`) sort by ``(t0, worker, seq)`` and
export losslessly to JSONL (:func:`write_trace_jsonl`) or to the Chrome
trace-event / Perfetto JSON format (:func:`to_chrome_trace`), where each
PDES worker becomes a process track and each flow a named thread track.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "DEFAULT_TRACE_CAPACITY",
    "TRACE_SCHEMA_VERSION",
    "CHROME_REQUIRED_KEYS",
    "FlightRecorder",
    "trace_id",
    "merge_traces",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "to_chrome_trace",
    "flow_events",
    "top_spans",
]

#: Default ring-buffer capacity of one flight recorder.
DEFAULT_TRACE_CAPACITY = 4096

#: Bump when the record schema changes (recorded in JSONL meta lines).
TRACE_SCHEMA_VERSION = 1

#: Keys every exported Chrome trace event carries (CI asserts these).
CHROME_REQUIRED_KEYS = ("name", "cat", "ph", "ts", "pid", "tid")


def trace_id(seed: int, flow_id: int, domain: str = "flow") -> str:
    """Stable 64-bit hex trace id for one flow of a seeded run.

    Derived purely from ``(seed, domain, flow id)`` — ``domain``
    namespaces id spaces that count independently (packet-level flows
    vs. cascade fluid flows) so they can never collide.
    """
    payload = f"{int(seed)}:{domain}:{int(flow_id)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class FlightRecorder:
    """Bounded, deterministic per-process trace ring buffer.

    ``clock`` is a zero-argument callable returning the current
    simulation time (normally ``lambda: sim.now``); it can be bound
    after construction with :meth:`bind_clock` when the recorder is
    created before the simulator.  ``worker`` stamps every record with
    the owning PDES worker index (``None`` single-process).
    """

    __slots__ = (
        "seed",
        "worker",
        "capacity",
        "_ring",
        "_clock",
        "_count",
        "_sid",
        "_stack",
        "_flow_keys",
        "_flow_ids",
    )

    def __init__(
        self,
        seed: int,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        worker: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        self.seed = int(seed)
        self.worker = worker
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._count = 0  # total records appended (evicted = _count - len(ring))
        self._sid = 0  # span/event id counter (assigned at begin time)
        self._stack: list[dict] = []  # open begin() frames, innermost last
        self._flow_keys: dict[Any, str] = {}  # e.g. (src, src_port) -> trace id
        self._flow_ids: dict[tuple, str] = {}  # (domain, flow_id) -> trace id

    # -- identity ------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the sim-time clock (for recorders built before the sim)."""
        self._clock = clock

    def trace_for_flow(self, flow_id: int, domain: str = "flow") -> str:
        """The flow's stable trace id (memoized)."""
        key = (domain, int(flow_id))
        tid = self._flow_ids.get(key)
        if tid is None:
            tid = trace_id(self.seed, flow_id, domain)
            self._flow_ids[key] = tid
        return tid

    def register_flow(
        self, flow_id: int, key: Any = None, domain: str = "flow"
    ) -> str:
        """Bind a runtime lookup ``key`` (e.g. ``(src, src_port)``) to a flow.

        Hot paths that only see packets resolve the trace id through
        :meth:`trace_for_key` with the packet's flow identity.
        """
        tid = self.trace_for_flow(flow_id, domain)
        if key is not None:
            self._flow_keys[key] = tid
        return tid

    def trace_for_key(self, key: Any) -> Optional[str]:
        """Trace id registered for ``key``, or ``None`` if unknown."""
        return self._flow_keys.get(key)

    def trace_for_packet(self, packet: Any) -> Optional[str]:
        """Resolve a packet to its flow's trace id.

        Flows register under ``(sender host, sender port)``; data
        segments match directly and pure ACKs (which travel the reverse
        direction, ports mirrored) match on the fallback lookup.
        """
        tid = self._flow_keys.get((packet.src, packet.src_port))
        if tid is None:
            tid = self._flow_keys.get((packet.dst, packet.dst_port))
        return tid

    # -- recording -----------------------------------------------------
    # Hot-path records (event/span) live in the ring as flat 9-tuples —
    # about half the cost of building the dict form per packet — and
    # are normalized to dicts on export.  begin()/end() frames need
    # in-place mutation (t1 lands at close time) so they stay dicts;
    # records() accepts both shapes.
    @property
    def evicted(self) -> int:
        """Records pushed out of the ring by overflow."""
        return self._count - len(self._ring)

    @property
    def recorded(self) -> int:
        """Total records ever appended (including evicted ones)."""
        return self._count

    def event(
        self,
        name: str,
        trace: Optional[str] = None,
        t: Optional[float] = None,
        **args: Any,
    ) -> None:
        """Record an instantaneous event at sim time ``t`` (default: now)."""
        at = self._clock() if t is None else float(t)
        self._sid += 1
        self._count += 1
        self._ring.append(
            (
                "event",
                name,
                trace,
                at,
                at,
                self.worker,
                self._sid,
                self._stack[-1]["seq"] if self._stack else None,
                args,
            )
        )

    def packet_span(
        self,
        name: str,
        t0: float,
        t1: float,
        packet: Any,
        cluster: str,
        target: str,
        batched: bool,
    ) -> Optional[str]:
        """One-call packet attribution + span for the model hot path.

        Equivalent to ``span(name, t0, t1, trace=trace_for_packet(p),
        cluster=..., target=..., batched=...)`` but a single call with
        positional arguments, no ``float()`` coercion (sim times are
        already floats), and the args stored as a bare 3-tuple that
        :meth:`_as_dict` expands on export — after every inference step
        the recorder runs cache-cold, so every allocation saved here is
        a cache miss saved per packet.  Returns the resolved trace id
        (for the invariant checker).
        """
        keys = self._flow_keys
        trace = keys.get((packet.src, packet.src_port))
        if trace is None:
            trace = keys.get((packet.dst, packet.dst_port))
        self._sid += 1
        self._count += 1
        self._ring.append(
            (
                "span",
                name,
                trace,
                t0,
                t1,
                self.worker,
                self._sid,
                self._stack[-1]["seq"] if self._stack else None,
                (cluster, target, batched),
            )
        )
        return trace

    def span(
        self,
        name: str,
        t0: float,
        t1: float,
        trace: Optional[str] = None,
        **args: Any,
    ) -> None:
        """Record a completed span with explicit sim-time endpoints."""
        self._sid += 1
        self._count += 1
        self._ring.append(
            (
                "span",
                name,
                trace,
                float(t0),
                float(t1),
                self.worker,
                self._sid,
                self._stack[-1]["seq"] if self._stack else None,
                args,
            )
        )

    def begin(
        self, name: str, trace: Optional[str] = None, **args: Any
    ) -> dict:
        """Open a nested span at the current sim time; close with :meth:`end`.

        Frames obey strict stack discipline: :meth:`end` must close the
        innermost open frame.  The completed record's ``parent`` points
        at the enclosing frame's ``seq``, so offline consumers can
        rebuild the nesting tree.
        """
        self._sid += 1
        frame = {
            "kind": "span",
            "name": name,
            "trace": trace,
            "t0": self._clock(),
            "t1": None,
            "worker": self.worker,
            "seq": self._sid,
            "parent": self._stack[-1]["seq"] if self._stack else None,
            "args": args,
        }
        self._stack.append(frame)
        return frame

    def end(self, frame: dict, **extra: Any) -> dict:
        """Close the innermost open frame and append it to the ring."""
        if not self._stack or self._stack[-1] is not frame:
            raise ValueError(
                f"trace span {frame.get('name')!r} closed out of order"
            )
        self._stack.pop()
        frame["t1"] = self._clock()
        if extra:
            frame["args"] = {**frame["args"], **extra}
        self._count += 1
        self._ring.append(frame)
        return frame

    # -- export --------------------------------------------------------
    @staticmethod
    def _as_dict(record) -> dict:
        if type(record) is dict:
            return record
        args = record[8]
        if type(args) is not dict:
            # packet_span stores its fixed arg triple as a bare tuple.
            args = {"cluster": args[0], "target": args[1], "batched": args[2]}
        return {
            "kind": record[0],
            "name": record[1],
            "trace": record[2],
            "t0": record[3],
            "t1": record[4],
            "worker": record[5],
            "seq": record[6],
            "parent": record[7],
            "args": args,
        }

    def records(self) -> list[dict]:
        """The ring's surviving records as dicts, oldest first."""
        return [self._as_dict(record) for record in self._ring]

    def tail(self, limit: int = 64) -> list[dict]:
        """The newest ``limit`` records (the crash-payload window)."""
        window = list(self._ring) if limit >= len(self._ring) else list(
            self._ring
        )[-limit:]
        return [self._as_dict(record) for record in window]

    def snapshot(self) -> dict:
        """JSON-ready summary: identity, pressure counters, and records."""
        return {
            "seed": self.seed,
            "worker": self.worker,
            "capacity": self.capacity,
            "recorded": self._count,
            "evicted": self.evicted,
            "events": self.records(),
        }


# ----------------------------------------------------------------------
# Merging and export
# ----------------------------------------------------------------------
def _merge_key(record: dict) -> tuple:
    worker = record.get("worker")
    return (
        record["t0"],
        -1 if worker is None else worker,
        record["seq"],
    )


def merge_traces(event_lists: Iterable[Iterable[dict]]) -> list[dict]:
    """Merge per-worker record lists into one sim-time-ordered timeline.

    Records are ordered by ``(t0, worker, seq)`` — deterministic for a
    seeded run because every component is itself deterministic.
    """
    merged = [record for records in event_lists for record in records]
    merged.sort(key=_merge_key)
    return merged


def write_trace_jsonl(
    path: str | Path, events: Iterable[dict], meta: Optional[dict] = None
) -> int:
    """Write a merged trace as JSONL: one meta header line, then records.

    Returns the number of trace records written (excluding the header).
    """
    path = Path(path)
    header = {"type": "meta", "schema": TRACE_SCHEMA_VERSION}
    if meta:
        header.update(meta)
    rows = 0
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in events:
            handle.write(
                json.dumps({"type": "trace", **record}, sort_keys=True) + "\n"
            )
            rows += 1
    return rows


def read_trace_jsonl(path: str | Path) -> tuple[dict, list[dict]]:
    """Read a trace JSONL file back as ``(meta, records)``."""
    meta: dict = {}
    records: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            kind = row.pop("type", "trace")
            if kind == "meta":
                meta = row
            else:
                records.append(row)
    return meta, records


def to_chrome_trace(events: Iterable[dict]) -> dict:
    """Export merged records to Chrome trace-event / Perfetto JSON.

    Each PDES worker becomes a process (``pid``); each flow's trace id
    becomes a named thread (``tid``) within it, so one flow's spans show
    up on every worker track it crossed.  Spans map to complete events
    (``ph: "X"``), instantaneous records to thread-scoped instants
    (``ph: "i"``).  Timestamps are sim time in microseconds.
    """
    events = list(events)
    # Deterministic small-int thread ids per trace id (0 = untraced).
    trace_ids = sorted({e["trace"] for e in events if e.get("trace")})
    tid_of = {trace: index + 1 for index, trace in enumerate(trace_ids)}
    out: list[dict] = []
    seen_tracks: set = set()
    for record in events:
        worker = record.get("worker")
        pid = 0 if worker is None else int(worker)
        tid = tid_of.get(record.get("trace"), 0)
        if pid not in {track[0] for track in seen_tracks}:
            out.append(
                {
                    "name": "process_name",
                    "cat": "__metadata",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": 0,
                    "args": {
                        "name": "single-process" if worker is None else f"worker-{pid}"
                    },
                }
            )
        if (pid, tid) not in seen_tracks:
            seen_tracks.add((pid, tid))
            out.append(
                {
                    "name": "thread_name",
                    "cat": "__metadata",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": record.get("trace") or "untraced"},
                }
            )
        ts = record["t0"] * 1e6
        base = {
            "name": record["name"],
            "cat": record["name"].split(".", 1)[0],
            "ts": ts,
            "pid": pid,
            "tid": tid,
            "args": {**record.get("args", {}), "trace": record.get("trace")},
        }
        if record.get("kind") == "span":
            base["ph"] = "X"
            base["dur"] = max(0.0, (record["t1"] - record["t0"]) * 1e6)
        else:
            base["ph"] = "i"
            base["s"] = "t"
        out.append(base)
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.trace",
            "schema": TRACE_SCHEMA_VERSION,
        },
    }


# ----------------------------------------------------------------------
# Offline analysis (the `repro trace` CLI backend)
# ----------------------------------------------------------------------
def flow_events(events: Iterable[dict], trace: str) -> list[dict]:
    """All records of one flow, matched by full trace id or unique prefix."""
    trace = str(trace)
    exact = [e for e in events if e.get("trace") == trace]
    if exact:
        return exact
    matches = {
        e["trace"] for e in events if e.get("trace") and e["trace"].startswith(trace)
    }
    if len(matches) > 1:
        raise ValueError(
            f"trace id prefix {trace!r} is ambiguous ({len(matches)} matches)"
        )
    if not matches:
        return []
    (full,) = matches
    return [e for e in events if e.get("trace") == full]


def top_spans(
    events: Iterable[dict], by: str = "span-duration", limit: int = 10
) -> list[dict]:
    """Rank records for ``repro trace top``.

    ``span-duration`` ranks individual spans by sim-time duration;
    ``count`` ranks record names by how often they fired.
    """
    events = list(events)
    if by == "span-duration":
        spans = [e for e in events if e.get("kind") == "span"]
        spans.sort(key=lambda e: (-(e["t1"] - e["t0"]), _merge_key(e)))
        return [
            {
                "name": span["name"],
                "trace": span.get("trace"),
                "worker": span.get("worker"),
                "t0": span["t0"],
                "duration_s": span["t1"] - span["t0"],
            }
            for span in spans[:limit]
        ]
    if by == "count":
        counts: dict[str, int] = {}
        for record in events:
            counts[record["name"]] = counts.get(record["name"], 0) + 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return [{"name": name, "count": count} for name, count in ranked[:limit]]
    raise ValueError(f"unknown ranking {by!r}; use 'span-duration' or 'count'")
