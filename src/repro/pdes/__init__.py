"""Conservative parallel discrete event simulation (PDES).

Section 2.2 of the paper demonstrates that PDES — the standard answer
to slow simulation — backfires on highly interconnected data center
topologies: causality maintenance forces synchronization whose cost
grows with the connection count, so "for large networks,
single-threaded instances beat the parallel deployments significantly"
(Figure 1).

This package reproduces that experiment with a real parallel engine:

* the topology is partitioned across worker *processes*
  (:func:`~repro.topology.partition.partition_for_workers`);
* each worker runs its own DES over its partition;
* causality is maintained with the conservative synchronous-window
  protocol: the window length equals the minimum propagation delay of
  any cut link (the lookahead), and workers exchange cross-partition
  packet messages at every window barrier;
* following OMNeT++'s null message algorithm, every directed cut link
  gets an entry in every barrier exchange even when it carried nothing
  — null messages are exactly the per-link "nothing until t+lookahead"
  promises conservative PDES requires, and their cost is why dense
  topologies scale badly (cut links grow ~quadratically in leaf-spine
  fabrics while useful work grows linearly).

The paper's 2- and 4-"machine" series map to 2 and 4 worker processes
here; one container cannot be several machines, but the synchronization
economics (messages + barriers vs. per-partition event work) are the
same mechanism measured on one host.

:mod:`repro.pdes.hybrid_shard` fuses this engine with the hybrid
simulator: the full-fidelity region is partitioned across workers and
every approximated cluster runs as a model shard colocated with the
worker owning its attachment point.
"""

from repro.pdes.engine import (
    PdesConfig,
    PdesResult,
    resolve_window,
    run_parallel_simulation,
    run_single_threaded,
)
from repro.pdes.hybrid_shard import (
    HybridShardConfig,
    ModelRef,
    PdesHybridResult,
    ShardStats,
    WorkerCrashError,
    extract_flow_schedule,
    model_egress_lookahead,
    outcome_signature,
    resolve_hybrid_window,
    run_hybrid_sharded,
)

__all__ = [
    "PdesConfig",
    "PdesResult",
    "resolve_window",
    "run_parallel_simulation",
    "run_single_threaded",
    "HybridShardConfig",
    "ModelRef",
    "PdesHybridResult",
    "ShardStats",
    "WorkerCrashError",
    "extract_flow_schedule",
    "model_egress_lookahead",
    "outcome_signature",
    "resolve_hybrid_window",
    "run_hybrid_sharded",
]
