"""PDES orchestration and the single-threaded reference runner.

:func:`run_parallel_simulation` spawns worker processes, waits for all
of them to finish setup (topology build, routing, flow registration),
then measures wall-clock time from the moment it releases them to the
moment the last reports done — so the reported simulated-seconds-per-
second covers the event processing and synchronization, not Python
process startup (the paper's Figure 1 likewise excludes model setup).

:func:`run_single_threaded` runs the identical workload on one
in-process simulator for the baseline series.
"""

from __future__ import annotations

import multiprocessing as mp
import time as _wallclock
from dataclasses import dataclass, field
from typing import Optional

from repro.des.kernel import Simulator
from repro.flowsim.simulator import FlowSpec
from repro.net.network import Network, NetworkConfig
from repro.net.tcp.receiver import TcpReceiver
from repro.net.tcp.sender import TcpSender
from repro.pdes.worker import FLOW_DST_PORT, FLOW_PORT_BASE, WorkerStats, worker_main
from repro.topology.graph import Topology
from repro.topology.partition import cross_partition_links, partition_for_workers


@dataclass(frozen=True)
class PdesConfig:
    """Parameters of one PDES run.

    Attributes
    ----------
    workers:
        Number of worker processes (1 = windowed loop, no exchanges).
    duration_s:
        Simulated time to cover.
    window_s:
        Synchronization window; must not exceed the minimum cut-link
        propagation delay (checked against the topology at run time —
        ``None`` selects exactly that minimum, the maximum safe
        lookahead).
    seed:
        Workload / simulator seed.
    """

    workers: int = 2
    duration_s: float = 0.01
    window_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.window_s is not None and self.window_s <= 0:
            raise ValueError(f"window_s must be positive, got {self.window_s}")


@dataclass
class PdesResult:
    """Outcome of a (parallel or single-threaded) run."""

    sim_seconds: float
    wallclock_seconds: float
    events_executed: int
    flows_completed: int
    drops: int
    workers: int
    cross_partition_messages: int = 0
    cut_links: int = 0
    rtt_samples: list[float] = field(default_factory=list)
    fcts: list[float] = field(default_factory=list)

    @property
    def sim_seconds_per_second(self) -> float:
        """Figure 1's y-axis."""
        if self.wallclock_seconds <= 0:
            return float("inf")
        return self.sim_seconds / self.wallclock_seconds


def resolve_window(
    topology: Topology,
    partitions: list[set[str]],
    config: PdesConfig,
    model_lookahead_s: Optional[float] = None,
) -> float:
    """Pick/validate the synchronization window (the lookahead).

    The safe window is the minimum delay over all cut links.  A hybrid
    sharding changes the effective cut twice over: approximated fabric
    switches are owned by their model's worker (their links count with
    the physical delay, which the remote stub re-adds), and model
    *egress* into a remote worker has its own lookahead —
    ``MIN_REGION_LATENCY_S`` shrunk by the inference batching window,
    because a batched packet's drop/latency decision can happen up to
    ``batch_window_s`` after its arrival.  Callers with such a cut pass
    that bound as ``model_lookahead_s`` and it participates in both the
    default window choice and the rejection check.

    A ``window_s`` above the safe bound is **rejected**, never clamped:
    silently shrinking it would change the run the user asked for, and
    silently keeping it would let an exchange violate causality.
    """
    owner: dict[str, int] = {}
    for index, nodes in enumerate(partitions):
        for name in nodes:
            owner[name] = index
    cut_delays = [
        link.delay_s for link in topology.links if owner[link.a] != owner[link.b]
    ]
    bounds: list[tuple[float, str]] = []
    if cut_delays:
        bounds.append((min(cut_delays), "minimum cut-link delay"))
    if model_lookahead_s is not None:
        if model_lookahead_s <= 0:
            raise ValueError(
                f"model egress lookahead is {model_lookahead_s}; the inference "
                "batching window leaves no safe synchronization window "
                "(shrink batch_window_s below MIN_REGION_LATENCY_S)"
            )
        bounds.append(
            (model_lookahead_s, "hybrid model-egress lookahead")
        )
    if not bounds:
        bounds.append((config.duration_s, "run duration (no cut links)"))
    max_safe, limiter = min(bounds)
    if config.window_s is None:
        return max_safe
    if config.window_s > max_safe + 1e-18:
        raise ValueError(
            f"window_s={config.window_s} exceeds {limiter} {max_safe}; "
            "conservative causality would be violated"
        )
    return config.window_s


#: Backwards-compatible private alias (pre-hybrid name).
_resolve_window = resolve_window


def run_parallel_simulation(
    topology: Topology,
    flows: list[FlowSpec],
    config: PdesConfig,
    net_config: Optional[NetworkConfig] = None,
) -> PdesResult:
    """Execute the workload across ``config.workers`` processes."""
    net_config = net_config or NetworkConfig()
    partitions = partition_for_workers(topology, config.workers)
    window = _resolve_window(topology, partitions, config)

    ctx = mp.get_context("fork")
    parent_ends: list = []
    worker_parent_ends: list = []
    for _ in range(config.workers):
        parent_end, worker_end = ctx.Pipe(duplex=True)
        parent_ends.append(parent_end)
        worker_parent_ends.append(worker_end)
    # Full mesh between workers.
    peer_conns: list[dict[int, object]] = [dict() for _ in range(config.workers)]
    for i in range(config.workers):
        for j in range(i + 1, config.workers):
            end_i, end_j = ctx.Pipe(duplex=True)
            peer_conns[i][j] = end_i
            peer_conns[j][i] = end_j

    processes = []
    for index in range(config.workers):
        process = ctx.Process(
            target=worker_main,
            args=(
                index,
                topology,
                partitions,
                flows,
                net_config,
                config.duration_s,
                window,
                config.seed,
                worker_parent_ends[index],
                peer_conns[index],
            ),
            daemon=True,
        )
        process.start()
        processes.append(process)

    try:
        for conn in parent_ends:
            tag, _ = conn.recv()
            assert tag == "ready"
        started = _wallclock.perf_counter()
        for conn in parent_ends:
            conn.send("go")
        stats: list[WorkerStats] = []
        for conn in parent_ends:
            tag, worker_stats = conn.recv()
            assert tag == "done"
            stats.append(worker_stats)
        elapsed = _wallclock.perf_counter() - started
        for conn in parent_ends:
            conn.send("exit")
    finally:
        for process in processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()

    rtts: list[float] = []
    fcts: list[float] = []
    for worker_stats in stats:
        rtts.extend(worker_stats.rtt_samples)
        fcts.extend(worker_stats.fcts)
    return PdesResult(
        sim_seconds=config.duration_s,
        wallclock_seconds=elapsed,
        events_executed=sum(s.events_executed for s in stats),
        flows_completed=sum(s.flows_completed for s in stats),
        drops=sum(s.drops for s in stats),
        workers=config.workers,
        cross_partition_messages=sum(s.messages_sent for s in stats),
        cut_links=cross_partition_links(topology, partitions),
        rtt_samples=rtts,
        fcts=fcts,
    )


def run_single_threaded(
    topology: Topology,
    flows: list[FlowSpec],
    duration_s: float,
    seed: int = 0,
    net_config: Optional[NetworkConfig] = None,
) -> PdesResult:
    """Run the identical workload on one in-process simulator."""
    net_config = net_config or NetworkConfig()
    sim = Simulator(seed=seed)
    network = Network(sim, topology, config=net_config)
    fcts: list[float] = []

    for flow in flows:
        receiver = TcpReceiver(
            host=network.host(flow.dst),
            peer=flow.src,
            src_port=FLOW_DST_PORT,
            dst_port=FLOW_PORT_BASE + flow.flow_id,
            config=net_config.tcp,
        )
        network.host(flow.dst).register_receiver(receiver)
        sender = TcpSender(
            host=network.host(flow.src),
            dst=flow.dst,
            src_port=FLOW_PORT_BASE + flow.flow_id,
            dst_port=FLOW_DST_PORT,
            total_bytes=flow.size_bytes,
            config=net_config.tcp,
            on_complete=fcts.append,
            rtt_monitor=network.host(flow.src).rtt_monitor,
        )
        network.host(flow.src).register_sender(sender)
        sim.schedule_at(flow.start_time, sender.start)

    started = _wallclock.perf_counter()
    sim.run(until=duration_s)
    elapsed = _wallclock.perf_counter() - started

    rtts: list[float] = []
    for monitor in network.rtt_monitors.values():
        rtts.extend(monitor.values.tolist())
    return PdesResult(
        sim_seconds=duration_s,
        wallclock_seconds=elapsed,
        events_executed=sim.events_executed,
        flows_completed=len(fcts),
        drops=network.total_drops,
        workers=1,
        rtt_samples=rtts,
        fcts=fcts,
    )
