"""Hybrid × PDES fusion: shard the full-fidelity region across workers.

The hybrid simulator (one full cluster + N-1 cluster models) and the
PDES engine (partitioned full-fidelity world) each attack a different
axis of the paper's Figure 1.  This module fuses them: the
full-fidelity cluster and the core layer are partitioned across worker
processes (:func:`~repro.topology.partition.partition_hybrid`), while
every approximated cluster runs as a *model shard* colocated with the
worker that owns its attachment point — hosts, fabric names, and the
:class:`~repro.core.cluster_model.ApproximatedCluster` standing in for
the fabric all live on one worker, so the host↔model path never pays
synchronization.

Determinism contract (the test pack's foundation):

* Every worker builds its :class:`~repro.core.hybrid.HybridSimulation`
  with ``Simulator(seed=config.seed)`` — the *same* seed, not
  ``seed + worker_index``.  Named RNG streams
  (``sim.rng.stream(name)``) are derived per-name, so each cluster
  model's drop stream draws the same values it would draw in the
  single-process hybrid regardless of which worker hosts it.
* The flow schedule is extracted once, up front, by running the real
  :class:`~repro.traffic.apps.TrafficGenerator` with a
  ``flow_dispatch`` hook that claims every flow after all randomness
  is drawn (:func:`extract_flow_schedule`).  Ephemeral source ports
  are replicated in schedule order per source host, exactly matching
  :meth:`~repro.net.host.Host.open_flow` allocation.
* Cross-worker packets keep their exact single-process timestamps: the
  sending port's propagation delay is zeroed and the
  :class:`~repro.pdes.stub.RemoteStub` re-adds the real link delay, so
  ``deliver_at`` is the same float the local port would have produced.
* Model egress into a remote worker is captured at **decision time**
  through :class:`~repro.pdes.stub.RemoteEntityProxy`, and the window
  is bounded by the model-egress lookahead
  (:func:`model_egress_lookahead`): ``MIN_REGION_LATENCY_S`` minus the
  inference batching window, because a batched packet's outcome can be
  decided up to ``batch_window_s`` after its arrival.

With those four properties, same-seed runs at any worker count produce
byte-identical merged outcome statistics (FCTs, RTTs, drops) — and
identical to the single-process hybrid under float64 inference.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import multiprocessing as mp
import tempfile
import time as _wallclock
import traceback as _traceback
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _connection_wait
from typing import Optional, Union

from repro.core.cluster_model import MIN_REGION_LATENCY_S
from repro.core.hybrid import HybridConfig, HybridSimulation, ShardableHybrid
from repro.core.pipeline import ExperimentConfig, make_generator
from repro.core.training import TrainedClusterModel
from repro.des.kernel import Simulator
from repro.net.network import NetworkConfig
from repro.net.tcp.receiver import TcpReceiver
from repro.net.tcp.sender import TcpSender
from repro.obs.trace import DEFAULT_TRACE_CAPACITY, FlightRecorder, merge_traces
from repro.pdes.engine import PdesConfig, resolve_window
from repro.pdes.stub import RemoteEntityProxy, RemoteMessage, RemoteStub
from repro.pdes.worker import FLOW_DST_PORT, FLOW_PORT_BASE
from repro.topology.clos import build_clos
from repro.topology.graph import NodeRole, Topology
from repro.topology.partition import (
    cross_partition_links,
    owner_map,
    partition_hybrid,
)
from repro.validate.invariants import InvariantChecker


# ----------------------------------------------------------------------
# Configuration and payload types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModelRef:
    """A trained model by artifact path, not by pickled engine.

    Worker payloads carry one of these; each worker loads the bundle
    from disk (:meth:`TrainedClusterModel.load`) instead of inheriting
    multi-megabyte weight arrays through the process-spawn payload.
    ``fingerprint`` is provenance (the
    :class:`~repro.runs.registry.ModelRegistry` key when the artifact
    came from the registry); loading goes through ``path``.
    """

    path: str
    fingerprint: Optional[str] = None

    def load(self) -> TrainedClusterModel:
        """Materialize the model in this process."""
        return TrainedClusterModel.load(self.path)


@dataclass(frozen=True)
class HybridShardConfig:
    """Options of a sharded hybrid run.

    Attributes
    ----------
    workers:
        Worker processes.  ``1`` exercises the identical machinery
        (process, pipes, windowed loop) with no exchanges.
    window_s:
        Synchronization window; ``None`` selects the maximum safe
        lookahead (min cut-link delay, further bounded by the
        model-egress lookahead).  Larger values are **rejected**.
    worker_timeout_s:
        Wall-clock budget for any single parent-side wait (setup or
        run); a worker silent past this raises
        :class:`WorkerCrashError` instead of hanging.
    metrics:
        Build a per-worker :class:`~repro.obs.MetricsRegistry` and
        include its snapshot in each worker's stats.  Metrics never
        schedule events, so outcomes are identical on and off.
    trace:
        Build a per-worker :class:`~repro.obs.trace.FlightRecorder`
        and include its events in each worker's stats (merged by the
        coordinator).  The recorder stamps sim time only and draws no
        randomness, so outcomes are identical on and off.
    trace_capacity:
        Flight-recorder ring size per worker; oldest records evict
        first when a run outgrows it.
    inject_crash:
        Test hook: worker index that raises mid-window (``None`` off).
    """

    workers: int = 2
    window_s: Optional[float] = None
    worker_timeout_s: float = 300.0
    metrics: bool = False
    trace: bool = False
    trace_capacity: int = DEFAULT_TRACE_CAPACITY
    inject_crash: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.window_s is not None and self.window_s <= 0:
            raise ValueError(f"window_s must be positive, got {self.window_s}")
        if self.worker_timeout_s <= 0:
            raise ValueError(
                f"worker_timeout_s must be positive, got {self.worker_timeout_s}"
            )
        if self.trace_capacity < 1:
            raise ValueError(
                f"trace_capacity must be >= 1, got {self.trace_capacity}"
            )


@dataclass(frozen=True)
class ScheduledFlow:
    """One pre-extracted flow with its replicated ephemeral port."""

    flow_id: int
    src: str
    dst: str
    size_bytes: int
    start_time: float
    src_port: int


class WorkerCrashError(RuntimeError):
    """A worker died (or reported a structured error) mid-run.

    Carries the failing worker's index and the original exception's
    type/message/traceback so manifests can record *what* failed
    instead of a bare hang or timeout.  When the worker ran with
    tracing enabled, ``trace_tail`` holds the last window of its
    flight recorder — the events leading up to the crash.
    """

    def __init__(
        self,
        worker_index: int,
        error_type: str,
        message: str,
        traceback_str: str = "",
        trace_tail: Optional[list] = None,
    ) -> None:
        super().__init__(
            f"PDES worker {worker_index} failed: {error_type}: {message}"
        )
        self.worker_index = worker_index
        self.error_type = error_type
        self.message = message
        self.traceback_str = traceback_str
        self.trace_tail = trace_tail or []


# ----------------------------------------------------------------------
# Flow-schedule extraction
# ----------------------------------------------------------------------
class _TopologyShim:
    """Just enough network for :func:`make_generator` to calibrate load."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    def host(self, name: str):  # pragma: no cover - dispatch claims all flows
        raise RuntimeError(
            "schedule extraction must not open flows; flow_dispatch should "
            "have claimed every arrival"
        )


def extract_flow_schedule(
    topology: Topology,
    config: ExperimentConfig,
    hybrid: HybridConfig,
) -> list[ScheduledFlow]:
    """Pre-draw the exact flow schedule of a hybrid experiment.

    Runs the real :class:`~repro.traffic.apps.TrafficGenerator` — same
    seed, same named RNG streams, same elision filter — against a
    topology shim, with a ``flow_dispatch`` hook that claims every
    surviving flow *after* all randomness is drawn.  The recorded
    (src, dst, size, start) tuples are therefore bit-identical to what
    the single-process hybrid would launch.  Ephemeral source ports
    are then replicated per source host in schedule order, matching
    :meth:`~repro.net.host.Host.open_flow`'s ``itertools.count(10_000)``
    allocation, so TCP demux keys agree across worker boundaries.
    """
    sim = Simulator(seed=config.seed)
    cluster_of = {node.name: node.cluster for node in topology.servers()}
    full = hybrid.full_cluster

    def flow_filter(src: str, dst: str) -> bool:
        if not hybrid.elide_remote_traffic:
            return True
        return cluster_of[src] == full or cluster_of[dst] == full

    records: list[tuple[str, str, int, float]] = []

    def dispatch(src: str, dst: str, size_bytes: int) -> bool:
        records.append((src, dst, size_bytes, sim.now))
        return True

    if config.collective is not None:
        # Collective chunk launches are gated on flow completions the
        # shim cannot produce; sharded runs reject collectives up front
        # (see run_hybrid_sharded) and extraction ignores them.
        config = dataclasses.replace(config, collective=None)
    generator = make_generator(
        sim,
        _TopologyShim(topology),
        config,
        flow_filter=flow_filter,
        flow_dispatch=dispatch,
    )
    generator.start()
    sim.run(until=config.duration_s)

    port_counters: dict[str, "itertools.count"] = {}
    flows: list[ScheduledFlow] = []
    for flow_id, (src, dst, size_bytes, start_time) in enumerate(records):
        counter = port_counters.setdefault(src, itertools.count(FLOW_PORT_BASE))
        flows.append(
            ScheduledFlow(
                flow_id=flow_id,
                src=src,
                dst=dst,
                size_bytes=size_bytes,
                start_time=start_time,
                src_port=next(counter),
            )
        )
    return flows


# ----------------------------------------------------------------------
# Lookahead
# ----------------------------------------------------------------------
def model_egress_lookahead(hybrid: HybridConfig) -> float:
    """Safe lookahead of model egress crossing a shard boundary.

    A cluster model's delivery timestamp is ``arrival + latency`` with
    ``latency >= MIN_REGION_LATENCY_S``, but with inference batching
    the drop/latency *decision* — the moment the packet can first be
    captured for a remote worker — happens up to ``batch_window_s``
    after the arrival (the batcher clamps its window to
    ``MIN_REGION_LATENCY_S``).  The remaining guaranteed slack between
    decision and delivery is the usable lookahead.  Non-positive means
    batching ate the entire causality margin; :func:`resolve_window`
    rejects that configuration outright.
    """
    batch_eff = 0.0
    if hybrid.batch_window_s > 0:
        batch_eff = min(hybrid.batch_window_s, MIN_REGION_LATENCY_S)
    return MIN_REGION_LATENCY_S - batch_eff


def resolve_hybrid_window(
    topology: Topology,
    partitions: list[set[str]],
    config: PdesConfig,
    hybrid: HybridConfig,
) -> float:
    """Window for a sharded hybrid: cut-link delay AND model lookahead.

    The model-egress bound only binds when there is a shard boundary
    for egress to cross (more than one worker and at least one
    approximated cluster); a 1-worker shard is windowed like a plain
    single-partition run.
    """
    lookahead: Optional[float] = None
    if len(partitions) > 1 and len(topology.cluster_ids()) > 1:
        lookahead = model_egress_lookahead(hybrid)
    return resolve_window(topology, partitions, config, model_lookahead_s=lookahead)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class ShardStats:
    """Everything one worker reports back after a sharded hybrid run."""

    worker_index: int
    events_executed: int
    windows: int
    exchanges: int
    messages_sent: int
    messages_received: int
    lookahead_violations: int
    stall_seconds: float
    flows_completed: int
    fcts: list[float]
    rtt_samples: list[float]
    net_drops: int
    model_packets: int
    model_drops: int
    inference_seconds: float
    hot_path: dict
    invariants: dict
    cpu_seconds: float = 0.0
    metrics_snapshot: Optional[dict] = None
    trace_events: Optional[list] = None
    trace_recorded: int = 0
    trace_evicted: int = 0

    def deterministic_view(self) -> dict:
        """The wall-clock-free projection used by determinism tests.

        Excludes ``stall_seconds``, ``inference_seconds``,
        ``cpu_seconds``, the metrics snapshot, trace events, and
        hot-path wall-clock ratios — everything else must be
        byte-identical across same-seed same-worker-count runs (trace
        events are themselves deterministic, but are excluded so the
        signature is comparable across tracing on/off/capacity)."""
        deterministic_hot_path = {
            key: value
            for key, value in self.hot_path.items()
            if "seconds" not in key and "share" not in key and "per_sec" not in key
        }
        return {
            "worker_index": self.worker_index,
            "events_executed": self.events_executed,
            "windows": self.windows,
            "exchanges": self.exchanges,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "lookahead_violations": self.lookahead_violations,
            "flows_completed": self.flows_completed,
            "fcts": list(self.fcts),
            "rtt_samples": list(self.rtt_samples),
            "net_drops": self.net_drops,
            "model_packets": self.model_packets,
            "model_drops": self.model_drops,
            "hot_path": deterministic_hot_path,
            "invariants": self.invariants,
        }


def outcome_signature(
    fcts: list[float], rtt_samples: list[float], drops: int, flows_completed: int
) -> str:
    """Canonical byte-comparable form of a run's outcome statistics.

    Sorting removes ordering differences that are pure artifacts of
    how work is split across workers; JSON float serialization is
    shortest-roundtrip (``repr``), so equal floats produce equal bytes.
    """
    payload = {
        "flows_completed": int(flows_completed),
        "drops": int(drops),
        "fcts": sorted(fcts),
        "rtts": sorted(rtt_samples),
    }
    return json.dumps(payload, sort_keys=True)


@dataclass
class PdesHybridResult:
    """Merged outcome of a sharded hybrid run."""

    sim_seconds: float
    wallclock_seconds: float
    workers: int
    window_s: float
    cut_links: int
    worker_stats: list[ShardStats] = field(default_factory=list)

    # -- merged outcome statistics -------------------------------------
    @property
    def events_executed(self) -> int:
        return sum(s.events_executed for s in self.worker_stats)

    @property
    def flows_completed(self) -> int:
        return sum(s.flows_completed for s in self.worker_stats)

    @property
    def fcts(self) -> list[float]:
        merged: list[float] = []
        for stats in self.worker_stats:
            merged.extend(stats.fcts)
        return merged

    @property
    def rtt_samples(self) -> list[float]:
        merged: list[float] = []
        for stats in self.worker_stats:
            merged.extend(stats.rtt_samples)
        return merged

    @property
    def drops(self) -> int:
        return sum(s.net_drops + s.model_drops for s in self.worker_stats)

    @property
    def model_packets(self) -> int:
        return sum(s.model_packets for s in self.worker_stats)

    @property
    def model_drops(self) -> int:
        return sum(s.model_drops for s in self.worker_stats)

    @property
    def exchanges(self) -> int:
        return sum(s.exchanges for s in self.worker_stats)

    @property
    def messages(self) -> int:
        return sum(s.messages_sent for s in self.worker_stats)

    @property
    def windows(self) -> int:
        return max((s.windows for s in self.worker_stats), default=0)

    @property
    def lookahead_violations(self) -> int:
        return sum(s.lookahead_violations for s in self.worker_stats)

    @property
    def invariant_violations(self) -> int:
        return sum(int(s.invariants.get("total", 0)) for s in self.worker_stats)

    @property
    def stall_seconds(self) -> float:
        return sum(s.stall_seconds for s in self.worker_stats)

    @property
    def max_worker_cpu_seconds(self) -> float:
        """CPU seconds of the busiest worker (the parallel critical path).

        Core-count independent: on a host with fewer cores than
        workers, wall-clock cannot show the split, but the busiest
        worker's CPU time bounds the wall-clock achievable with enough
        cores."""
        return max(s.cpu_seconds for s in self.worker_stats)

    @property
    def sim_seconds_per_second(self) -> float:
        """Figure 1's y-axis."""
        if self.wallclock_seconds <= 0:
            return float("inf")
        return self.sim_seconds / self.wallclock_seconds

    @property
    def trace_recorded(self) -> int:
        return sum(s.trace_recorded for s in self.worker_stats)

    @property
    def trace_evicted(self) -> int:
        return sum(s.trace_evicted for s in self.worker_stats)

    def merged_trace(self) -> list[dict]:
        """All workers' flight-recorder events in causal merge order.

        Sorted by (sim time, worker, per-worker sequence) — see
        :func:`repro.obs.trace.merge_traces`.  Empty when the run was
        not traced.
        """
        return merge_traces(
            [s.trace_events for s in self.worker_stats if s.trace_events]
        )

    # -- canonical views -----------------------------------------------
    def outcome_signature(self) -> str:
        """Byte-comparable merged outcome (FCT/RTT/drops/completions)."""
        return outcome_signature(
            self.fcts, self.rtt_samples, self.drops, self.flows_completed
        )

    def determinism_signature(self) -> str:
        """Byte-comparable per-worker state (wall-clock excluded)."""
        return json.dumps(
            [s.deterministic_view() for s in self.worker_stats], sort_keys=True
        )

    def merged_hot_path_counters(
        self, wallclock_s: Optional[float] = None
    ) -> dict:
        """Hot-path counters summed across workers (manifest schema).

        Matches :meth:`HybridSimulation.hot_path_counters` key-for-key:
        additive counters are summed, derived ratios recomputed from
        the merged totals.
        """
        additive = (
            "model_packets",
            "model_drops",
            "inference_seconds",
            "batched_rounds",
            "batched_packets",
            "batch_flushes",
            "scalar_fallbacks",
            "memo_hits",
            "memo_misses",
        )
        counters = {key: 0.0 for key in additive}
        for stats in self.worker_stats:
            for key in additive:
                counters[key] += float(stats.hot_path.get(key, 0.0))
        packets = counters["model_packets"]
        inference = counters["inference_seconds"]
        memo_total = counters["memo_hits"] + counters["memo_misses"]
        counters["inference_seconds_per_packet"] = (
            inference / packets if packets else 0.0
        )
        counters["memo_hit_rate"] = (
            counters["memo_hits"] / memo_total if memo_total else 0.0
        )
        if wallclock_s is not None:
            positive = wallclock_s > 0
            counters["inference_share"] = inference / wallclock_s if positive else 0.0
            counters["model_packets_per_sec"] = (
                packets / wallclock_s if positive else 0.0
            )
        return counters

    def merged_counters(self) -> dict:
        """Manifest-facing summary of the parallel machinery."""
        return {
            "workers": self.workers,
            "window_s": self.window_s,
            "windows": self.windows,
            "cut_links": self.cut_links,
            "exchanges": self.exchanges,
            "messages": self.messages,
            "stall_seconds": self.stall_seconds,
            "lookahead_violations": self.lookahead_violations,
            "invariant_violations": self.invariant_violations,
            "per_worker": [
                {
                    "worker_index": s.worker_index,
                    "events_executed": s.events_executed,
                    "windows": s.windows,
                    "exchanges": s.exchanges,
                    "messages_sent": s.messages_sent,
                    "messages_received": s.messages_received,
                    "stall_seconds": s.stall_seconds,
                    "cpu_seconds": s.cpu_seconds,
                    "lookahead_violations": s.lookahead_violations,
                    "invariant_violations": int(s.invariants.get("total", 0)),
                    "flows_completed": s.flows_completed,
                    "model_packets": s.model_packets,
                }
                for s in self.worker_stats
            ],
        }


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _cluster_fabric(topology: Topology, cluster: int) -> list[str]:
    """Fabric switch names (ToR + aggregation) of one cluster."""
    return [
        node.name
        for node in topology.cluster_nodes(cluster)
        if node.role in (NodeRole.TOR, NodeRole.CLUSTER)
    ]


def _schedule_incoming(
    sim: Simulator,
    entities: dict[str, object],
    incoming: dict[tuple[str, str], list[RemoteMessage]],
    window_end: float,
    tracer: Optional[FlightRecorder] = None,
    peer: Optional[int] = None,
    window_seq: int = 0,
) -> tuple[int, int]:
    """Schedule barrier-received messages; returns (count, violations).

    A message timestamped at or before the barrier would have needed to
    execute inside the window that just closed — a lookahead violation.
    The conservative window bound makes this impossible by
    construction; the counter exists so the property tests (and every
    merged manifest) can assert it stayed zero.

    With a ``tracer``, each message lands an ``exchange.recv`` event
    stamped at its *effective* delivery time — at or after the barrier,
    hence at or after the sender's ``exchange.send`` stamp, so the
    merged trace shows send before receive in sim time.
    """
    count = 0
    violations = 0
    for messages in incoming.values():
        for message in messages:
            count += 1
            if message.deliver_at <= window_end - 1e-18:
                violations += 1
            entity = entities[message.target_node]
            deliver_at = max(message.deliver_at, window_end)
            if tracer is not None:
                tracer.event(
                    "exchange.recv",
                    trace=tracer.trace_for_packet(message.packet),
                    t=deliver_at,
                    peer=peer,
                    window=window_seq,
                    target=message.target_node,
                )
            sim.schedule_at(
                deliver_at,
                lambda e=entity, m=message: e.receive(m.packet, m.from_node),
            )
    return count, violations


def _run_shard(
    worker_index: int,
    topology: Topology,
    partitions: list[set[str]],
    flows: list[ScheduledFlow],
    model_ref: ModelRef,
    net_config: NetworkConfig,
    hybrid_config: HybridConfig,
    routing_config,
    failures,
    duration_s: float,
    window_s: float,
    seed: int,
    metrics_enabled: bool,
    tracer: Optional[FlightRecorder],
    inject_crash: Optional[int],
    parent_conn: Connection,
    peer_conns: dict[int, Connection],
) -> ShardStats:
    partition = partitions[worker_index]
    owner_of = owner_map(partitions)

    # Same seed in every worker: named RNG streams are derived per
    # stream name, so each cluster model draws the exact values it
    # would draw in the single-process hybrid.
    sim = Simulator(seed=seed)
    if tracer is not None:
        tracer.bind_clock(lambda: sim.now)
    metrics = None
    if metrics_enabled:
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry(enabled=True)
    invariants = InvariantChecker(metrics=metrics, tracer=tracer).attach_simulator(
        sim
    )

    outbox: dict[int, dict[tuple[str, str], list[RemoteMessage]]] = {}

    def remote_receiver(name: str) -> RemoteStub:
        return RemoteStub(sim, name, owner_of[name], topology, outbox)

    def remote_entity(name: str) -> RemoteEntityProxy:
        return RemoteEntityProxy(name, owner_of[name], outbox)

    shard_seam = ShardableHybrid(
        owned_nodes=partition,
        remote_receiver=remote_receiver,
        remote_entity=remote_entity,
    )
    trained = model_ref.load()
    # Every worker applies the same failure schedule at the same sim
    # times against its own copy of the routing tables, so the shards
    # stay route-consistent without any cross-worker coordination.
    hybrid_sim = HybridSimulation(
        sim,
        topology,
        trained,
        net_config=net_config,
        config=hybrid_config,
        metrics=metrics,
        invariants=invariants,
        shard=shard_seam,
        tracer=tracer,
        routing_config=routing_config,
        failures=failures,
    )
    network = hybrid_sim.network

    # Cut ports: zero the port-side propagation delay (the stub re-adds
    # the real link delay).  Unlike the plain engine — which pads every
    # exchange with one null entry per directed cut link to emulate
    # OMNeT++'s null-message economics for Figure 1 — the shard exchange
    # sends only real messages: the barrier itself advances the pair's
    # clock, and the hybrid's tiny cut traffic is exactly the property
    # that makes sharding worth it.
    for (owner, peer), port in network.ports().items():
        if owner_of[peer] != worker_index:
            port.delay_s = 0.0

    # Incoming-message routing table.  Fabric switch names of locally
    # owned approximated clusters alias to the cluster model: a remote
    # core's packet targeted at e.g. ``agg-c3-0`` must reach the model
    # standing in for that switch.
    entities: dict[str, object] = {}
    entities.update(network.hosts)
    entities.update(network.switches)
    for cluster, model in hybrid_sim.models.items():
        for name in _cluster_fabric(topology, cluster):
            entities[name] = model

    # Pre-registered TCP endpoints from the shared schedule.  Ports
    # come from the schedule (replicated open_flow allocation), so the
    # demux keys of a flow agree even when its endpoints live in
    # different workers.
    fcts: list[float] = []
    flows_completed = 0

    def make_on_complete(flow: ScheduledFlow):
        trace = None
        if tracer is not None:
            trace = tracer.trace_for_flow(flow.flow_id)

        def on_complete(fct: float) -> None:
            nonlocal flows_completed
            flows_completed += 1
            fcts.append(fct)
            if tracer is not None:
                tracer.event(
                    "flow.complete", trace=trace, fct=fct, size=flow.size_bytes
                )

        return on_complete

    if tracer is not None:
        # Every worker knows every flow's demux key: a packet can cross
        # a cluster model on a worker that owns neither endpoint, and
        # attribution must still find its trace id.
        for flow in flows:
            tracer.register_flow(flow.flow_id, key=(flow.src, flow.src_port))

    for flow in flows:
        if flow.dst in partition:
            dst_host = network.host(flow.dst)
            dst_host.register_receiver(
                TcpReceiver(
                    host=dst_host,
                    peer=flow.src,
                    src_port=FLOW_DST_PORT,
                    dst_port=flow.src_port,
                    config=net_config.tcp,
                )
            )
        if flow.src in partition:
            src_host = network.host(flow.src)
            sender = TcpSender(
                host=src_host,
                dst=flow.dst,
                src_port=flow.src_port,
                dst_port=FLOW_DST_PORT,
                total_bytes=flow.size_bytes,
                config=net_config.tcp,
                on_complete=make_on_complete(flow),
                rtt_monitor=src_host.rtt_monitor,
            )
            src_host.register_sender(sender)
            if tracer is not None:
                tracer.event(
                    "flow.admit",
                    trace=tracer.trace_for_flow(flow.flow_id),
                    t=flow.start_time,
                    src=flow.src,
                    dst=flow.dst,
                    size=flow.size_bytes,
                )
            sim.schedule_at(flow.start_time, sender.start)

    if inject_crash == worker_index:

        def _boom() -> None:
            raise RuntimeError(
                f"injected crash in worker {worker_index} (test hook)"
            )

        sim.schedule_at(min(window_s, duration_s) / 2, _boom)

    parent_conn.send(("ready", worker_index))
    go = parent_conn.recv()
    assert go == "go", f"unexpected parent message {go!r}"
    cpu_started = _wallclock.process_time()

    # ------------------------------------------------------------------
    # Synchronous-window main loop.
    # ------------------------------------------------------------------
    peers = sorted(peer_conns)
    windows = exchanges = messages_sent = messages_received = 0
    lookahead_violations = 0
    stall_seconds = 0.0
    now = 0.0
    while now < duration_s - 1e-15:
        window_end = min(now + window_s, duration_s)
        sim.run(until=window_end)
        windows += 1
        for peer in peers:
            pending = outbox.get(peer, {})
            # Everything queued for this peer goes out — including
            # model-egress link pairs that have no physical port on
            # this worker.  Quiet windows exchange an empty payload.
            payload: dict[tuple[str, str], list[RemoteMessage]] = {
                link: pending.pop(link) for link in list(pending)
            }
            if tracer is not None:
                # Stamped at the barrier (sim.now == window_end), which
                # is at or before every message's effective delivery on
                # the peer — send precedes receive in the merged trace.
                for messages in payload.values():
                    for message in messages:
                        tracer.event(
                            "exchange.send",
                            trace=tracer.trace_for_packet(message.packet),
                            peer=peer,
                            window=windows,
                            target=message.target_node,
                            deliver_at=message.deliver_at,
                        )
            conn = peer_conns[peer]
            stall_started = _wallclock.perf_counter()
            # Pairwise ordered exchange (lower index sends first) —
            # deadlock-free without threads.
            if worker_index < peer:
                conn.send(payload)
                incoming = conn.recv()
            else:
                incoming = conn.recv()
                conn.send(payload)
            stall_seconds += _wallclock.perf_counter() - stall_started
            exchanges += 1
            messages_sent += sum(len(msgs) for msgs in payload.values())
            received, violated = _schedule_incoming(
                sim,
                entities,
                incoming,
                window_end,
                tracer=tracer,
                peer=peer,
                window_seq=windows,
            )
            messages_received += received
            lookahead_violations += violated
        now = window_end

    # Match the single-process epilogue: drain the batching window
    # after the final run, then check conservation.
    hybrid_sim.flush_inference()
    invariants.check_conservation(sim.now)
    cpu_seconds = _wallclock.process_time() - cpu_started

    if metrics is not None:
        metrics.counter("pdes.windows", worker=worker_index).inc(windows)
        metrics.counter("pdes.exchanges", worker=worker_index).inc(exchanges)
        metrics.counter("pdes.messages_sent", worker=worker_index).inc(messages_sent)
        metrics.counter("pdes.messages_received", worker=worker_index).inc(
            messages_received
        )
        metrics.counter("pdes.lookahead_violations", worker=worker_index).inc(
            lookahead_violations
        )
        metrics.gauge("pdes.stall_seconds", worker=worker_index).set(stall_seconds)

    return ShardStats(
        worker_index=worker_index,
        events_executed=sim.events_executed,
        windows=windows,
        exchanges=exchanges,
        messages_sent=messages_sent,
        messages_received=messages_received,
        lookahead_violations=lookahead_violations,
        stall_seconds=stall_seconds,
        flows_completed=flows_completed,
        fcts=fcts,
        rtt_samples=hybrid_sim.observed_rtt_samples(),
        net_drops=network.total_drops,
        model_packets=hybrid_sim.model_packets_handled(),
        model_drops=hybrid_sim.model_drops(),
        inference_seconds=hybrid_sim.inference_seconds(),
        hot_path=hybrid_sim.hot_path_counters(),
        invariants=invariants.summary(),
        cpu_seconds=cpu_seconds,
        metrics_snapshot=metrics.snapshot() if metrics is not None else None,
        trace_events=tracer.records() if tracer is not None else None,
        trace_recorded=tracer.recorded if tracer is not None else 0,
        trace_evicted=tracer.evicted if tracer is not None else 0,
    )


def _shard_worker_main(
    worker_index: int,
    topology: Topology,
    partitions: list[set[str]],
    flows: list[ScheduledFlow],
    model_ref: ModelRef,
    net_config: NetworkConfig,
    hybrid_config: HybridConfig,
    routing_config,
    failures,
    duration_s: float,
    window_s: float,
    seed: int,
    metrics_enabled: bool,
    trace_capacity: Optional[int],
    inject_crash: Optional[int],
    parent_conn: Connection,
    peer_conns: dict[int, Connection],
) -> None:
    """Entry point executed inside each worker process.

    Every failure — setup or mid-window — is reported to the parent as
    a structured ``("error", ...)`` message before the process exits,
    so the parent can surface *what* broke instead of timing out.  The
    flight recorder (``trace_capacity`` not ``None``) is created here,
    outside :func:`_run_shard`, so a crash report can carry its tail —
    the last window of spans before the worker died.
    """
    tracer = None
    if trace_capacity is not None:
        tracer = FlightRecorder(
            seed=seed, capacity=trace_capacity, worker=worker_index
        )
    try:
        stats = _run_shard(
            worker_index,
            topology,
            partitions,
            flows,
            model_ref,
            net_config,
            hybrid_config,
            routing_config,
            failures,
            duration_s,
            window_s,
            seed,
            metrics_enabled,
            tracer,
            inject_crash,
            parent_conn,
            peer_conns,
        )
    except BaseException as exc:  # noqa: BLE001 - report, then die
        try:
            parent_conn.send(
                (
                    "error",
                    {
                        "worker_index": worker_index,
                        "type": type(exc).__name__,
                        "message": str(exc),
                        "traceback": _traceback.format_exc(),
                        "trace_tail": (
                            tracer.tail() if tracer is not None else []
                        ),
                    },
                )
            )
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass
        return
    parent_conn.send(("done", stats))
    try:
        parent_conn.recv()  # final release before exiting
    except EOFError:  # pragma: no cover - parent already gone
        pass


# ----------------------------------------------------------------------
# Parent orchestration
# ----------------------------------------------------------------------
def _collect(
    parent_ends: list,
    processes: list,
    expected_tag: str,
    timeout_s: float,
) -> list:
    """Receive one ``(expected_tag, payload)`` from every worker.

    Crash-safe: multiplexes the parent pipes against the process
    sentinels, so a worker that dies without reporting (SIGKILL, OOM)
    or reports a structured error raises :class:`WorkerCrashError`
    immediately instead of blocking forever in ``recv``.
    """
    deadline = _wallclock.monotonic() + timeout_s
    payloads: dict[int, object] = {}
    pending = set(range(len(parent_ends)))
    while pending:
        remaining = deadline - _wallclock.monotonic()
        if remaining <= 0:
            raise WorkerCrashError(
                min(pending),
                "Timeout",
                f"workers {sorted(pending)} sent no {expected_tag!r} "
                f"within {timeout_s}s",
            )
        waitables = [parent_ends[i] for i in pending]
        waitables.extend(processes[i].sentinel for i in pending)
        ready = _connection_wait(waitables, timeout=min(remaining, 1.0))
        for index in sorted(pending):
            conn = parent_ends[index]
            if conn.poll():
                tag, payload = conn.recv()
                if tag == "error":
                    raise WorkerCrashError(
                        payload["worker_index"],
                        payload["type"],
                        payload["message"],
                        payload.get("traceback", ""),
                        trace_tail=payload.get("trace_tail"),
                    )
                if tag != expected_tag:
                    raise WorkerCrashError(
                        index,
                        "ProtocolError",
                        f"expected {expected_tag!r}, got {tag!r}",
                    )
                payloads[index] = payload
                pending.discard(index)
            elif not processes[index].is_alive():
                raise WorkerCrashError(
                    index,
                    "WorkerDied",
                    f"worker {index} exited with code "
                    f"{processes[index].exitcode} without reporting",
                )
        del ready
    return [payloads[i] for i in range(len(parent_ends))]


def _ensure_model_ref(
    model: Union[TrainedClusterModel, ModelRef], scratch_dir: Optional[str]
) -> ModelRef:
    """Turn an in-memory model into an on-disk reference if needed."""
    if isinstance(model, ModelRef):
        return model
    directory = tempfile.mkdtemp(prefix="pdes-model-", dir=scratch_dir)
    model.save(directory)
    return ModelRef(path=str(directory))


def run_hybrid_sharded(
    config: ExperimentConfig,
    model: Union[TrainedClusterModel, ModelRef],
    shard: Optional[HybridShardConfig] = None,
    hybrid: Optional[HybridConfig] = None,
    scratch_dir: Optional[str] = None,
) -> PdesHybridResult:
    """Run one hybrid experiment sharded across PDES workers.

    Parameters
    ----------
    config:
        The experiment (topology, load, duration, seed) — identical
        meaning to :func:`~repro.core.pipeline.run_hybrid_simulation`.
    model:
        The reusable trained cluster model, either in memory (saved to
        a scratch directory automatically) or as a :class:`ModelRef`
        pointing at a stored artifact (e.g. a registry entry).
    shard:
        Worker count / window / crash-safety options.
    hybrid:
        Hybrid assembly options; ``single_black_box`` is rejected (one
        rest-of-network model cannot be split) and per-cluster model
        mappings are not supported through the process boundary.
    scratch_dir:
        Where to save an in-memory model (default: system temp).

    Wall-clock is measured from the moment all workers are released to
    the moment the last reports done — setup (process spawn, topology
    build, model load) is excluded, matching the plain PDES engine and
    the paper's Figure 1 methodology.
    """
    shard = shard or HybridShardConfig()
    hybrid = hybrid or HybridConfig()
    if hybrid.single_black_box:
        raise ValueError(
            "single_black_box mode cannot be sharded: the one "
            "rest-of-network model has nowhere to split"
        )
    if config.collective is not None:
        raise ValueError(
            "collective workloads cannot be sharded: gated chunk sends "
            "depend on cross-worker flow completions; run them under the "
            "hybrid or cascade engines"
        )
    topology = build_clos(config.clos)
    partitions = partition_hybrid(topology, hybrid.full_cluster, shard.workers)
    pdes_config = PdesConfig(
        workers=shard.workers,
        duration_s=config.duration_s,
        window_s=shard.window_s,
        seed=config.seed,
    )
    window = resolve_hybrid_window(topology, partitions, pdes_config, hybrid)
    flows = extract_flow_schedule(topology, config, hybrid)
    model_ref = _ensure_model_ref(model, scratch_dir)

    ctx = mp.get_context("fork")
    parent_ends: list = []
    worker_parent_ends: list = []
    for _ in range(shard.workers):
        parent_end, worker_end = ctx.Pipe(duplex=True)
        parent_ends.append(parent_end)
        worker_parent_ends.append(worker_end)
    # Full mesh between workers.
    peer_conns: list[dict[int, object]] = [dict() for _ in range(shard.workers)]
    for i in range(shard.workers):
        for j in range(i + 1, shard.workers):
            end_i, end_j = ctx.Pipe(duplex=True)
            peer_conns[i][j] = end_i
            peer_conns[j][i] = end_j

    processes = []
    for index in range(shard.workers):
        process = ctx.Process(
            target=_shard_worker_main,
            args=(
                index,
                topology,
                partitions,
                flows,
                model_ref,
                config.net,
                hybrid,
                config.routing,
                config.failures,
                config.duration_s,
                window,
                config.seed,
                shard.metrics,
                shard.trace_capacity if shard.trace else None,
                shard.inject_crash,
                worker_parent_ends[index],
                peer_conns[index],
            ),
            daemon=True,
        )
        process.start()
        processes.append(process)

    try:
        _collect(parent_ends, processes, "ready", shard.worker_timeout_s)
        started = _wallclock.perf_counter()
        for conn in parent_ends:
            conn.send("go")
        stats = _collect(parent_ends, processes, "done", shard.worker_timeout_s)
        elapsed = _wallclock.perf_counter() - started
        for conn in parent_ends:
            conn.send("exit")
    except WorkerCrashError:
        for process in processes:
            if process.is_alive():
                process.terminate()
        raise
    finally:
        for process in processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()

    return PdesHybridResult(
        sim_seconds=config.duration_s,
        wallclock_seconds=elapsed,
        workers=shard.workers,
        window_s=window,
        cut_links=cross_partition_links(topology, partitions),
        worker_stats=stats,
    )
