"""Remote-link stubs: the seam between PDES partitions.

A port whose peer lives in another partition is wired to a
:class:`RemoteStub` instead of the real entity.  The stub is invoked at
*transmission-complete* time (the port's propagation delay is zeroed by
the worker during wiring); it adds the link's real propagation delay
itself and records an outbound message.  Because the window length is
at most the minimum cut-link delay, every message produced during a
window is deliverable only in a later window — the conservative
causality guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.des.kernel import Simulator
from repro.net.packet import Packet
from repro.topology.graph import Topology


@dataclass
class RemoteMessage:
    """One packet crossing a partition boundary.

    Attributes
    ----------
    target_node:
        Name of the receiving entity in the remote partition.
    from_node:
        Link endpoint the packet came from (receive() argument).
    deliver_at:
        Absolute simulated delivery time (send time + link delay).
    packet:
        The packet itself (pickled across the process boundary —
        the serialization cost MPI-based PDES also pays).
    """

    target_node: str
    from_node: str
    deliver_at: float
    packet: Packet


class RemoteStub:
    """Receiver standing in for a node owned by another partition."""

    def __init__(
        self,
        sim: Simulator,
        node_name: str,
        owner_worker: int,
        topology: Topology,
        outbox: dict[int, dict[tuple[str, str], list[RemoteMessage]]],
    ) -> None:
        self.sim = sim
        self.name = node_name
        self.owner_worker = owner_worker
        self.topology = topology
        self.outbox = outbox

    def receive(self, packet: Packet, from_node: str) -> None:
        """Queue the packet for the owning worker.

        Called at transmission-complete time; adds the link's real
        propagation delay to produce the delivery timestamp.
        """
        delay = self.topology.link_between(from_node, self.name).delay_s
        message = RemoteMessage(
            target_node=self.name,
            from_node=from_node,
            deliver_at=self.sim.now + delay,
            packet=packet,
        )
        per_link = self.outbox.setdefault(self.owner_worker, {})
        per_link.setdefault((from_node, self.name), []).append(message)


class RemoteEntityProxy:
    """Model-egress target owned by another worker.

    An :class:`~repro.core.cluster_model.ApproximatedCluster` schedules
    its deliveries directly (no port in between), so a remote egress
    node cannot be reached through a :class:`RemoteStub`.  Instead the
    model's ``resolve_entity`` hands back this proxy, and the cluster
    calls :meth:`schedule_model_delivery` at **decision time** — the
    moment the drop/latency outcome is known — rather than scheduling a
    local event that would only surface the packet when it fires.
    Capturing at decision time is what keeps the conservative window
    sound: the delivery timestamp is ``arrival + latency`` with
    ``latency >= MIN_REGION_LATENCY_S``, and the shard window is sized
    so that bound (minus any batching slack) still clears the next
    barrier.
    """

    __slots__ = ("name", "owner_worker", "outbox")

    def __init__(
        self,
        node_name: str,
        owner_worker: int,
        outbox: dict[int, dict[tuple[str, str], list[RemoteMessage]]],
    ) -> None:
        self.name = node_name
        self.owner_worker = owner_worker
        self.outbox = outbox

    def schedule_model_delivery(
        self, deliver_at: float, packet: Packet, boundary: str
    ) -> None:
        """Queue one model delivery for the owning worker.

        ``boundary`` (the region switch the packet notionally exits
        from) becomes the receiver's ``from_node`` argument, exactly as
        the local ``_Delivery`` event would have passed it.
        """
        message = RemoteMessage(
            target_node=self.name,
            from_node=boundary,
            deliver_at=deliver_at,
            packet=packet,
        )
        per_link = self.outbox.setdefault(self.owner_worker, {})
        per_link.setdefault((boundary, self.name), []).append(message)
