"""Remote-link stubs: the seam between PDES partitions.

A port whose peer lives in another partition is wired to a
:class:`RemoteStub` instead of the real entity.  The stub is invoked at
*transmission-complete* time (the port's propagation delay is zeroed by
the worker during wiring); it adds the link's real propagation delay
itself and records an outbound message.  Because the window length is
at most the minimum cut-link delay, every message produced during a
window is deliverable only in a later window — the conservative
causality guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.des.kernel import Simulator
from repro.net.packet import Packet
from repro.topology.graph import Topology


@dataclass
class RemoteMessage:
    """One packet crossing a partition boundary.

    Attributes
    ----------
    target_node:
        Name of the receiving entity in the remote partition.
    from_node:
        Link endpoint the packet came from (receive() argument).
    deliver_at:
        Absolute simulated delivery time (send time + link delay).
    packet:
        The packet itself (pickled across the process boundary —
        the serialization cost MPI-based PDES also pays).
    """

    target_node: str
    from_node: str
    deliver_at: float
    packet: Packet


class RemoteStub:
    """Receiver standing in for a node owned by another partition."""

    def __init__(
        self,
        sim: Simulator,
        node_name: str,
        owner_worker: int,
        topology: Topology,
        outbox: dict[int, dict[tuple[str, str], list[RemoteMessage]]],
    ) -> None:
        self.sim = sim
        self.name = node_name
        self.owner_worker = owner_worker
        self.topology = topology
        self.outbox = outbox

    def receive(self, packet: Packet, from_node: str) -> None:
        """Queue the packet for the owning worker.

        Called at transmission-complete time; adds the link's real
        propagation delay to produce the delivery timestamp.
        """
        delay = self.topology.link_between(from_node, self.name).delay_s
        message = RemoteMessage(
            target_node=self.name,
            from_node=from_node,
            deliver_at=self.sim.now + delay,
            packet=packet,
        )
        per_link = self.outbox.setdefault(self.owner_worker, {})
        per_link.setdefault((from_node, self.name), []).append(message)
