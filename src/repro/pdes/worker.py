"""PDES worker process.

Each worker owns one partition: it builds a partition-local
:class:`~repro.net.network.Network` (remote nodes excluded, their ports
wired to :class:`~repro.pdes.stub.RemoteStub`), pre-registers the TCP
endpoints of every flow touching its partition, and then executes the
synchronous-window protocol:

    run events in (T, T + window] -> exchange cut-link messages with
    every peer (null entries included) -> schedule arrivals -> repeat.

The window equals the minimum cut-link propagation delay (the
lookahead), so every exchanged message is deliverable strictly after
the barrier — conservative causality with no rollbacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Optional

from repro.des.kernel import Simulator
from repro.flowsim.simulator import FlowSpec
from repro.net.network import Network, NetworkConfig
from repro.net.tcp.receiver import TcpReceiver
from repro.net.tcp.sender import TcpSender
from repro.pdes.stub import RemoteMessage, RemoteStub
from repro.topology.graph import Topology
from repro.topology.routing import EcmpRouting

#: Transport port offset for pre-registered PDES flows; must match on
#: the sender and receiver side of every flow.
FLOW_PORT_BASE = 10_000
FLOW_DST_PORT = 80


@dataclass
class WorkerStats:
    """What a worker reports back to the parent after the run."""

    worker_index: int
    events_executed: int
    messages_sent: int
    flows_completed: int
    fcts: list[float]
    rtt_samples: list[float]
    drops: int


def worker_main(
    worker_index: int,
    topology: Topology,
    partitions: list[set[str]],
    flows: list[FlowSpec],
    net_config: NetworkConfig,
    duration_s: float,
    window_s: float,
    seed: int,
    parent_conn: Connection,
    peer_conns: dict[int, Connection],
) -> None:
    """Entry point executed inside each worker process."""
    partition = partitions[worker_index]
    owner_of: dict[str, int] = {}
    for index, nodes in enumerate(partitions):
        for name in nodes:
            owner_of[name] = index

    sim = Simulator(seed=seed + worker_index)
    routing = EcmpRouting(topology)
    outbox: dict[int, dict[tuple[str, str], list[RemoteMessage]]] = {}

    remote_neighbors = {
        link.other(name)
        for name in partition
        for link in (topology.link_between(name, nbr) for nbr in topology.neighbors(name))
        if link.other(name) not in partition
    }
    stubs = {
        name: RemoteStub(sim, name, owner_of[name], topology, outbox)
        for name in remote_neighbors
    }
    excluded = {node.name for node in topology.nodes if node.name not in partition}
    network = Network(
        sim,
        topology,
        config=net_config,
        routing=routing,
        excluded_nodes=excluded,
        receiver_overrides=stubs,
    )
    # Cut ports: zero the port-side propagation (the stub re-adds the
    # real link delay when timestamping the remote delivery).
    cut_links_toward: dict[int, list[tuple[str, str]]] = {}
    for (owner, peer), port in network.ports().items():
        if peer in stubs:
            port.delay_s = 0.0
            cut_links_toward.setdefault(owner_of[peer], []).append((owner, peer))

    fcts: list[float] = []
    flows_completed = 0

    def make_on_complete() -> callable:
        def on_complete(fct: float) -> None:
            nonlocal flows_completed
            flows_completed += 1
            fcts.append(fct)

        return on_complete

    for flow in flows:
        src_local = flow.src in partition
        dst_local = flow.dst in partition
        if dst_local:
            receiver = TcpReceiver(
                host=network.host(flow.dst),
                peer=flow.src,
                src_port=FLOW_DST_PORT,
                dst_port=FLOW_PORT_BASE + flow.flow_id,
                config=net_config.tcp,
            )
            network.host(flow.dst).register_receiver(receiver)
        if src_local:
            sender = TcpSender(
                host=network.host(flow.src),
                dst=flow.dst,
                src_port=FLOW_PORT_BASE + flow.flow_id,
                dst_port=FLOW_DST_PORT,
                total_bytes=flow.size_bytes,
                config=net_config.tcp,
                on_complete=make_on_complete(),
                rtt_monitor=network.host(flow.src).rtt_monitor,
            )
            network.host(flow.src).register_sender(sender)
            sim.schedule_at(flow.start_time, sender.start)

    entities: dict[str, object] = {}
    entities.update(network.hosts)
    entities.update(network.switches)
    messages_sent = 0

    parent_conn.send(("ready", worker_index))
    go = parent_conn.recv()
    assert go == "go", f"unexpected parent message {go!r}"

    # ------------------------------------------------------------------
    # Synchronous-window main loop.
    # ------------------------------------------------------------------
    peers = sorted(peer_conns)
    now = 0.0
    while now < duration_s - 1e-15:
        window_end = min(now + window_s, duration_s)
        sim.run(until=window_end)
        for peer in peers:
            links = cut_links_toward.get(peer, [])
            pending = outbox.get(peer, {})
            payload = {link: pending.pop(link, []) for link in links}
            conn = peer_conns[peer]
            # Pairwise ordered exchange (lower index sends first) —
            # deadlock-free without threads.
            if worker_index < peer:
                conn.send(payload)
                incoming = conn.recv()
            else:
                incoming = conn.recv()
                conn.send(payload)
            messages_sent += sum(len(msgs) for msgs in payload.values())
            _schedule_incoming(sim, entities, incoming, window_end)
        now = window_end

    rtts: list[float] = []
    for monitor in network.rtt_monitors.values():
        rtts.extend(monitor.values.tolist())
    stats = WorkerStats(
        worker_index=worker_index,
        events_executed=sim.events_executed,
        messages_sent=messages_sent,
        flows_completed=flows_completed,
        fcts=fcts,
        rtt_samples=rtts,
        drops=network.total_drops,
    )
    parent_conn.send(("done", stats))
    parent_conn.recv()  # final release before exiting


def _schedule_incoming(
    sim: Simulator,
    entities: dict[str, object],
    incoming: dict[tuple[str, str], list[RemoteMessage]],
    window_end: float,
) -> None:
    """Schedule delivery events for messages received at a barrier."""
    for messages in incoming.values():
        for message in messages:
            entity = entities[message.target_node]
            deliver_at = max(message.deliver_at, window_end)
            sim.schedule_at(
                deliver_at,
                lambda e=entity, m=message: e.receive(m.packet, m.from_node),
            )
