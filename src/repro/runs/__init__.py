"""Experiment orchestration: scenario specs, model registry, manifests.

The run-management layer over :mod:`repro.core`'s pipeline (Figure 3's
train-once / evaluate-many workflow made durable):

``repro.runs.spec``
    :class:`ScenarioSpec` — declarative JSON/TOML sweeps that expand
    into deterministic :class:`RunRequest` lists with derived seeds.
``repro.runs.fingerprint``
    Content addresses for experiment configs and trained models.
``repro.runs.registry``
    :class:`ModelRegistry` — fingerprint-keyed store of trained
    cluster models; sweeps get cache hits instead of retraining.
``repro.runs.scheduler``
    :class:`SweepScheduler` — multiprocess dispatch with per-run
    timeouts, bounded retry with backoff, and failure capture.
``repro.runs.manifest``
    :class:`RunManifest` / :class:`RunStore` — one durable JSON per
    run (config hash, seeds, versions, wall-clock, hot-path counters,
    model provenance), plus list/filter/compare over a sweep.
``repro.runs.executor``
    The worker-side stage runner the scheduler dispatches.

CLI: ``repro runs submit|status|show`` and ``repro models ls|gc``.
"""

from repro.runs.fingerprint import (
    experiment_hash,
    model_fingerprint,
    model_fingerprint_payload,
)
from repro.runs.manifest import RunManifest, RunStore, summarize_statuses
from repro.runs.registry import ModelRegistry, RegistryEntry, RegistryLookup
from repro.runs.scheduler import SchedulerConfig, SweepScheduler
from repro.runs.spec import (
    MODEL_STAGES,
    STAGES,
    SWEEP_AXES,
    RunRequest,
    ScenarioSpec,
    derive_seed,
    load_spec,
)
from repro.runs.executor import execute_run

__all__ = [
    "MODEL_STAGES",
    "STAGES",
    "SWEEP_AXES",
    "ModelRegistry",
    "RegistryEntry",
    "RegistryLookup",
    "RunManifest",
    "RunRequest",
    "RunStore",
    "ScenarioSpec",
    "SchedulerConfig",
    "SweepScheduler",
    "derive_seed",
    "execute_run",
    "experiment_hash",
    "load_spec",
    "model_fingerprint",
    "model_fingerprint_payload",
    "summarize_statuses",
]
