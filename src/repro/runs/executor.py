"""The worker-side body of one scheduled run.

:func:`execute_run` is the function the sweep scheduler submits to its
process pool (top-level, so it pickles).  It owns the run directory's
manifest through the attempt's lifecycle:

1. write a ``running`` manifest immediately (durable even if the
   worker is later killed by a timeout),
2. execute the requested pipeline stage — model stages resolve their
   trained bundle through the :class:`~repro.runs.registry.ModelRegistry`
   (cache hit or train-and-store),
3. overwrite the manifest with ``completed`` (result summary, hot-path
   counters, model provenance) or ``failed`` (exception type, message,
   full traceback) and return it as a plain dict.

Failures never propagate: a crashing run yields a failed manifest for
the scheduler's retry logic, not a dead sweep.
"""

from __future__ import annotations

import time
import traceback
from pathlib import Path
from typing import Any, Optional

from repro.analysis.stats import percentile_summary
from repro.core.hybrid import HybridConfig
from repro.core.pipeline import (
    RunResult,
    run_full_simulation,
    run_hybrid_simulation,
)
from repro.obs import MetricsRegistry
from repro.runs.fingerprint import experiment_hash, experiment_payload
from repro.runs.manifest import RunManifest
from repro.runs.registry import ModelRegistry, RegistryLookup
from repro.runs.spec import RunRequest

_ZERO_COUNTERS = {
    "model_packets": 0.0,
    "model_drops": 0.0,
    "inference_seconds": 0.0,
    "inference_seconds_per_packet": 0.0,
    "batched_rounds": 0.0,
    "batched_packets": 0.0,
    "batch_flushes": 0.0,
    "scalar_fallbacks": 0.0,
    "memo_hits": 0.0,
    "memo_misses": 0.0,
    "memo_hit_rate": 0.0,
}


def _sample_summary(values: list[float]) -> dict[str, float]:
    if not values:
        return {"count": 0.0}
    return percentile_summary(values, percentiles=(50, 95, 99))


def _summarize_result(result: RunResult) -> dict[str, Any]:
    """Manifest-sized view of a :class:`RunResult` (no raw samples)."""
    scenario: dict[str, Any] = {}
    if result.failure_events:
        scenario["failure_events"] = result.failure_events
    if result.collective is not None:
        scenario["collective"] = result.collective
    return {
        **scenario,
        "sim_seconds": result.sim_seconds,
        "wallclock_seconds": result.wallclock_seconds,
        "sim_seconds_per_second": result.sim_seconds_per_second,
        "events_executed": result.events_executed,
        "events_per_second": result.events_per_second,
        "flows_started": result.flows_started,
        "flows_completed": result.flows_completed,
        "flows_elided": result.flows_elided,
        "drops": result.drops,
        "model_packets": result.model_packets,
        "model_drops": result.model_drops,
        "model_inference_seconds": result.model_inference_seconds,
        "inference_share": result.inference_share,
        "rtt": _sample_summary(result.rtt_samples),
        "fct": _sample_summary(result.fcts),
    }


def _pop_trace_capacity(options: dict[str, Any]) -> Optional[int]:
    """Pop the ``trace`` / ``trace_capacity`` knobs from a stage's
    hybrid-options dict; returns the ring capacity when tracing was
    requested, ``None`` otherwise (the knobs must be popped either way
    so they never reach ``HybridConfig``/``CascadeConfig``)."""
    from repro.obs.trace import DEFAULT_TRACE_CAPACITY

    enabled = bool(options.pop("trace", False))
    capacity = int(options.pop("trace_capacity", DEFAULT_TRACE_CAPACITY))
    return capacity if enabled else None


def _make_tracer(options: dict[str, Any], seed: int):
    """Build a single-process FlightRecorder if the options ask for one."""
    capacity = _pop_trace_capacity(options)
    if capacity is None:
        return None
    from repro.obs.trace import FlightRecorder

    return FlightRecorder(seed=seed, capacity=capacity)


def _write_trace_artifact(
    run_dir: Path, events: list[dict], meta: dict[str, Any]
) -> dict[str, str]:
    """Write ``trace.jsonl`` next to the manifest; best-effort (a full
    disk must not fail the run that was being traced)."""
    from repro.obs.trace import write_trace_jsonl

    path = run_dir / "trace.jsonl"
    try:
        write_trace_jsonl(path, events, meta=meta)
    except OSError:
        return {}
    return {"trace": str(path)}


def _apply_injections(request: RunRequest, attempt: int) -> None:
    """Test hooks: deterministic failures and hangs (see ScenarioSpec)."""
    hang_s = float(request.inject.get("hang_s", 0.0))
    if hang_s > 0.0:
        time.sleep(hang_s)
    fail_attempts = int(request.inject.get("fail_attempts", 0))
    if attempt <= fail_attempts:
        raise RuntimeError(
            f"injected failure (attempt {attempt} of {fail_attempts} doomed)"
        )


def _resolve_model(
    request: RunRequest, registry_root: Optional[str]
) -> RegistryLookup:
    if registry_root is None:
        raise ValueError(f"stage {request.stage!r} needs a model registry")
    assert request.training is not None and request.micro is not None
    registry = ModelRegistry(registry_root)
    return registry.get_or_train(request.training, request.micro)


def _run_stage(
    request: RunRequest,
    registry_root: Optional[str],
    run_dir: Path,
    metrics: Optional[MetricsRegistry] = None,
) -> tuple[
    dict[str, Any], dict[str, float], Optional[dict[str, Any]], dict[str, str]
]:
    """Execute the stage.

    Returns ``(result, hot_path_counters, model_info, artifacts)`` —
    ``artifacts`` maps artifact names to files the stage wrote under
    ``run_dir`` (the cascade stage's decision log, for instance).
    """
    model_info: Optional[dict[str, Any]] = None
    artifacts: dict[str, str] = {}
    if request.needs_model:
        lookup = _resolve_model(request, registry_root)
        model_info = {
            "fingerprint": lookup.fingerprint,
            "cache_hit": lookup.cache_hit,
            "path": str(lookup.path),
            "train_wallclock_s": lookup.train_wallclock_s,
        }
        if request.stage == "train":
            return (
                {"training_summary": lookup.model.training_summary},
                dict(_ZERO_COUNTERS),
                model_info,
                artifacts,
            )
        if request.stage == "hybrid":
            options = dict(request.hybrid)
            tracer = _make_tracer(options, request.experiment.seed)
            hybrid_config = HybridConfig(**options)
            result, hybrid_sim = run_hybrid_simulation(
                request.experiment, lookup.model, hybrid=hybrid_config,
                metrics=metrics, tracer=tracer,
            )
            counters = hybrid_sim.hot_path_counters(result.wallclock_seconds)
            if tracer is not None:
                artifacts.update(
                    _write_trace_artifact(
                        run_dir,
                        tracer.records(),
                        meta={
                            "stage": request.stage,
                            "seed": request.experiment.seed,
                            "workers": 1,
                            "recorded": tracer.recorded,
                            "evicted": tracer.evicted,
                        },
                    )
                )
            return _summarize_result(result), counters, model_info, artifacts
        if request.stage == "pdes-hybrid":
            # Sharded hybrid: the model travels to workers as a
            # registry reference (path + fingerprint), never pickled.
            from repro.pdes.hybrid_shard import (
                HybridShardConfig,
                ModelRef,
                run_hybrid_sharded,
            )

            options = dict(request.hybrid)
            inject_crash = options.pop("inject_crash", None)
            trace_capacity = _pop_trace_capacity(options)
            shard_kwargs: dict[str, Any] = {}
            if trace_capacity is not None:
                shard_kwargs = {"trace": True, "trace_capacity": trace_capacity}
            shard_config = HybridShardConfig(
                workers=int(options.pop("workers", 2)),
                window_s=options.pop("window_s", None),
                worker_timeout_s=float(options.pop("worker_timeout_s", 300.0)),
                inject_crash=None if inject_crash is None else int(inject_crash),
                **shard_kwargs,
            )
            hybrid_config = HybridConfig(**options)
            model_ref = ModelRef(
                path=str(lookup.path), fingerprint=lookup.fingerprint
            )
            pdes_result = run_hybrid_sharded(
                request.experiment,
                model_ref,
                shard=shard_config,
                hybrid=hybrid_config,
            )
            wallclock = pdes_result.wallclock_seconds
            counters = pdes_result.merged_hot_path_counters(wallclock)
            result_dict = {
                "sim_seconds": pdes_result.sim_seconds,
                "wallclock_seconds": wallclock,
                "sim_seconds_per_second": pdes_result.sim_seconds_per_second,
                "events_executed": pdes_result.events_executed,
                "events_per_second": (
                    pdes_result.events_executed / wallclock if wallclock > 0 else 0.0
                ),
                "flows_completed": pdes_result.flows_completed,
                "drops": pdes_result.drops,
                "model_packets": pdes_result.model_packets,
                "model_drops": pdes_result.model_drops,
                "rtt": _sample_summary(pdes_result.rtt_samples),
                "fct": _sample_summary(pdes_result.fcts),
                "pdes": pdes_result.merged_counters(),
            }
            if shard_config.trace:
                result_dict["pdes"]["trace"] = {
                    "recorded": pdes_result.trace_recorded,
                    "evicted": pdes_result.trace_evicted,
                }
                artifacts.update(
                    _write_trace_artifact(
                        run_dir,
                        pdes_result.merged_trace(),
                        meta={
                            "stage": request.stage,
                            "seed": request.experiment.seed,
                            "workers": pdes_result.workers,
                            "recorded": pdes_result.trace_recorded,
                            "evicted": pdes_result.trace_evicted,
                        },
                    )
                )
            return result_dict, counters, model_info, artifacts
        if request.stage == "cascade":
            # Multi-fidelity cascade: the manifest carries the tier
            # residency, promotion counts, and per-tier packet split,
            # and the auditable decision log lands next to it.
            from repro.cascade import CascadeConfig, run_cascade_simulation
            from repro.validate.invariants import InvariantChecker

            options = dict(request.hybrid)
            tracer = _make_tracer(options, request.experiment.seed)
            cascade_config = CascadeConfig.from_dict(options)
            checker = InvariantChecker(metrics=metrics)
            cascade_result, cascade_sim = run_cascade_simulation(
                request.experiment, lookup.model, cascade=cascade_config,
                metrics=metrics, tracer=tracer, invariants=checker,
            )
            counters = cascade_sim.hybrid.hot_path_counters(
                cascade_result.result.wallclock_seconds
            )
            result_dict = _summarize_result(cascade_result.result)
            result_dict["cascade"] = cascade_sim.cascade_summary()
            result_dict["invariants"] = checker.summary()
            result_dict["fluid_fct"] = _sample_summary(cascade_result.fluid_fcts)
            decisions_path = run_dir / "decisions.json"
            cascade_sim.decision_log.save(decisions_path)
            artifacts["decisions"] = str(decisions_path)
            if tracer is not None:
                artifacts.update(
                    _write_trace_artifact(
                        run_dir,
                        tracer.records(),
                        meta={
                            "stage": request.stage,
                            "seed": request.experiment.seed,
                            "workers": 1,
                            "recorded": tracer.recorded,
                            "evicted": tracer.evicted,
                        },
                    )
                )
            return result_dict, counters, model_info, artifacts
        if request.stage == "validate":
            # Differential fidelity: a matched full/hybrid pair scored
            # by repro.validate; the report rides in the manifest so
            # sweeps gate on agreement, not just completion.
            from repro.validate import ValidateConfig, run_differential_pair

            diff = run_differential_pair(
                request.experiment,
                lookup.model,
                validate=ValidateConfig(**request.hybrid),
                metrics=metrics,
            )
            counters = diff.hybrid_sim.hot_path_counters(
                diff.hybrid.wallclock_seconds
            )
            result_dict = {
                "full": _summarize_result(diff.full),
                "hybrid": _summarize_result(diff.hybrid),
                "fidelity": diff.report.to_dict(),
            }
            return result_dict, counters, model_info, artifacts

        # evaluate: score the bundle against a fresh ground-truth trace.
        from repro.core.evaluation import evaluate_on_records
        from repro.core.features import RegionFeatureExtractor

        region_cluster = 1
        output = run_full_simulation(
            request.experiment, collect_cluster=region_cluster, metrics=metrics
        )
        if not output.records:
            raise ValueError(
                "evaluation trace is empty; increase duration_s or load"
            )
        assert output.extractor is not None
        extractor = RegionFeatureExtractor(
            output.extractor.topology, output.extractor.routing, region_cluster
        )
        evaluations = evaluate_on_records(lookup.model, output.records, extractor)
        result_dict: dict[str, Any] = {
            "trace": _summarize_result(output.result),
            "directions": {
                direction.value: {
                    "samples": ev.samples,
                    "drop_rate_true": ev.drop_rate_true,
                    "drop_rate_predicted": ev.drop_rate_predicted,
                    "drop_auc": ev.drop_auc,
                    "latency_log_mae": ev.latency_log_mae,
                    "latency_median_relative_error": ev.latency_median_relative_error,
                }
                for direction, ev in evaluations.items()
            },
        }
        return result_dict, dict(_ZERO_COUNTERS), model_info, artifacts

    # simulate: full packet-level fidelity, no model involved.
    output = run_full_simulation(request.experiment, metrics=metrics)
    return _summarize_result(output.result), dict(_ZERO_COUNTERS), None, artifacts


def execute_run(
    request: RunRequest,
    out_dir: str,
    registry_root: Optional[str],
    attempt: int,
) -> dict[str, Any]:
    """Run one attempt end-to-end; always returns a manifest dict."""
    run_dir = Path(out_dir) / request.run_id
    started = time.time()
    manifest = RunManifest(
        run_id=request.run_id,
        spec_name=request.spec_name,
        stage=request.stage,
        status="running",
        attempts=attempt,
        axes=dict(request.axes),
        seed_master=request.seed_master,
        seed_derived=request.seed_derived,
        config=experiment_payload(request.experiment),
        config_hash=experiment_hash(request.experiment),
        started_at=started,
    )
    manifest.save(run_dir)
    metrics = MetricsRegistry(enabled=True)
    try:
        _apply_injections(request, attempt)
        result, counters, model_info, stage_artifacts = _run_stage(
            request, registry_root, run_dir, metrics=metrics
        )
        manifest.status = "completed"
        manifest.result = result
        manifest.hot_path_counters = counters
        manifest.model = model_info
        manifest.artifacts.update(stage_artifacts)
        if model_info is not None:
            manifest.artifacts["model"] = model_info["path"]
    except Exception as error:  # noqa: BLE001 — failure capture is the contract
        manifest.status = "failed"
        manifest.hot_path_counters = dict(_ZERO_COUNTERS)
        manifest.error = {
            "type": type(error).__name__,
            "message": str(error),
            "traceback": traceback.format_exc(),
        }
        # Structured simulation errors (an unroutable packet after a
        # link failure, say) carry machine-readable context for triage.
        details = getattr(error, "details", None)
        if callable(details):
            manifest.error["details"] = details()
        # A crashed PDES worker's flight recorder survives in its error
        # report; carry the last window of spans into the manifest.
        trace_tail = getattr(error, "trace_tail", None)
        if trace_tail:
            manifest.error["trace_tail"] = trace_tail
    # The observability snapshot rides in the manifest either way — on
    # failure it is the flight recorder (how far did the span tree get).
    manifest.metrics = metrics.snapshot()
    try:
        metrics_path = run_dir / "metrics.jsonl"
        metrics.write_jsonl(metrics_path)
        manifest.artifacts["metrics"] = str(metrics_path)
    except OSError:
        pass  # a full disk must not turn a completed run into a failed one
    manifest.finished_at = time.time()
    manifest.wallclock_seconds = manifest.finished_at - started
    manifest.save(run_dir)
    return manifest.to_dict()
