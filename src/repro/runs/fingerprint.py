"""Content-addressed identities for configs and trained models.

The registry stores one trained cluster model per *fingerprint* — a
short digest over everything that determines the artifact's content:
the training topology shape, the training workload, the micro-model
hyper-parameters, and the package version.  Two sweeps asking for the
same model resolve to the same fingerprint and share one training run
(the memoization idea the paper's train-once/reuse-many workflow
implies, and which m4-style registries make explicit).

Fingerprints are deliberately *config*-addressed rather than
weight-addressed: the training pipeline is deterministic given its
config and seed, so the config is the cheaper, equally unique key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any

from repro import __version__
from repro.core.micro import MicroModelConfig
from repro.core.pipeline import ExperimentConfig

#: Hex digits kept from the sha256 digest (64 bits; plenty for a
#: registry of thousands of models).
FINGERPRINT_LEN = 16


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload: Any) -> str:
    encoded = canonical_json(payload).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:FINGERPRINT_LEN]


def experiment_payload(config: ExperimentConfig) -> dict:
    """The full JSON form of an experiment config (hash input)."""
    return asdict(config)


def experiment_hash(config: ExperimentConfig) -> str:
    """Digest of one run's complete experiment configuration."""
    return _digest({"kind": "experiment", "experiment": experiment_payload(config)})


def model_fingerprint_payload(
    training: ExperimentConfig,
    micro: MicroModelConfig,
    package_version: str = __version__,
) -> dict:
    """The fields a model fingerprint commits to (stored alongside it)."""
    training_dict = experiment_payload(training)
    return {
        "kind": "cluster-model",
        "topology": training_dict.pop("clos"),
        "training": training_dict,  # load, duration_s, seed, matrix, net, ...
        "micro": asdict(micro),
        "version": package_version,
    }


def model_fingerprint(
    training: ExperimentConfig,
    micro: MicroModelConfig,
    package_version: str = __version__,
) -> str:
    """Content address of the model trained from these inputs."""
    return _digest(model_fingerprint_payload(training, micro, package_version))
