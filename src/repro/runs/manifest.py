"""Durable per-run manifests and the store that queries them.

Every run of a sweep owns ``<out>/<run_id>/manifest.json`` — written
when the run starts (``status: running``), overwritten atomically on
every attempt's outcome, and left behind whatever happens to the
worker, so a sweep's history survives crashes, timeouts, and the
scheduler process itself dying.  A manifest records everything needed
to answer "what produced this number": the full config and its hash,
master + derived seeds, package/python/numpy/git versions, wall-clock,
the result summary, hot-path counters, the model fingerprint and
whether it was a registry cache hit, and the failure traceback if any.

:class:`RunStore` lists, filters, and diffs completed manifests — the
query side of the run-management layer.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional

import numpy as np

from repro import __version__

MANIFEST_NAME = "manifest.json"

#: Terminal manifest states (``running`` is the transient one).
STATUSES = ("running", "completed", "failed", "timeout")

_git_sha_cache: Optional[str] = ""  # "" = not probed yet; None = unavailable


def _git_sha() -> Optional[str]:
    """Best-effort short commit hash of the working tree (cached)."""
    global _git_sha_cache
    if _git_sha_cache == "":
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True,
                text=True,
                timeout=5,
            )
            _git_sha_cache = proc.stdout.strip() or None if proc.returncode == 0 else None
        except OSError:
            _git_sha_cache = None
    return _git_sha_cache


def versions_snapshot() -> dict[str, Optional[str]]:
    """The software versions a manifest pins its result to."""
    return {
        "repro": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "git": _git_sha(),
    }


@dataclass
class RunManifest:
    """The durable record of one run (one JSON file)."""

    run_id: str
    spec_name: str
    stage: str
    status: str
    attempts: int
    axes: dict[str, Any]
    seed_master: int
    seed_derived: int
    config: dict[str, Any]
    config_hash: str
    versions: dict[str, Any] = field(default_factory=versions_snapshot)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    wallclock_seconds: Optional[float] = None
    result: Optional[dict[str, Any]] = None
    hot_path_counters: Optional[dict[str, float]] = None
    #: Observability snapshot (``MetricsRegistry.snapshot()``): span
    #: timings, counters, histogram summaries, probe totals.  Absent in
    #: manifests from before the obs layer; ``from_dict`` defaults it.
    metrics: Optional[dict[str, Any]] = None
    model: Optional[dict[str, Any]] = None
    error: Optional[dict[str, str]] = None
    artifacts: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "RunManifest":
        return cls(**raw)

    # ------------------------------------------------------------------
    def save(self, run_dir: str | Path) -> Path:
        """Atomically write this manifest into ``run_dir``."""
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        target = run_dir / MANIFEST_NAME
        tmp = run_dir / f".{MANIFEST_NAME}.{uuid.uuid4().hex[:8]}"
        tmp.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        os.replace(tmp, target)
        return target

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        """Read one manifest file (or a run directory containing one)."""
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_NAME
        return cls.from_dict(json.loads(path.read_text()))


def _flatten(prefix: str, value: Any, out: dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), sub, out)
    else:
        out[prefix] = value


class RunStore:
    """Query interface over a sweep output directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def run_ids(self) -> list[str]:
        """Run ids that have a manifest, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            d.name
            for d in self.root.iterdir()
            if d.is_dir() and (d / MANIFEST_NAME).exists()
        )

    def get(self, run_id: str) -> RunManifest:
        path = self.root / run_id / MANIFEST_NAME
        if not path.exists():
            raise KeyError(f"no manifest for run {run_id!r} under {self.root}")
        return RunManifest.load(path)

    def manifests(
        self,
        status: Optional[str] = None,
        stage: Optional[str] = None,
        spec: Optional[str] = None,
    ) -> list[RunManifest]:
        """All manifests, optionally filtered, in run-id order."""
        out = []
        for run_id in self.run_ids():
            manifest = self.get(run_id)
            if status is not None and manifest.status != status:
                continue
            if stage is not None and manifest.stage != stage:
                continue
            if spec is not None and manifest.spec_name != spec:
                continue
            out.append(manifest)
        return out

    # ------------------------------------------------------------------
    def compare(self, run_a: str, run_b: str) -> dict[str, Any]:
        """Field-level diff of two runs: config deltas + metric deltas."""
        a, b = self.get(run_a), self.get(run_b)
        flat_a: dict[str, Any] = {}
        flat_b: dict[str, Any] = {}
        _flatten("", a.config, flat_a)
        _flatten("", b.config, flat_b)
        config_diff = {
            key: {"a": flat_a.get(key), "b": flat_b.get(key)}
            for key in sorted(set(flat_a) | set(flat_b))
            if flat_a.get(key) != flat_b.get(key)
        }
        metrics: dict[str, Any] = {}
        res_a: dict[str, Any] = {}
        res_b: dict[str, Any] = {}
        _flatten("", a.result or {}, res_a)
        _flatten("", b.result or {}, res_b)
        for key in sorted(set(res_a) & set(res_b)):
            va, vb = res_a[key], res_b[key]
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                metrics[key] = {"a": va, "b": vb, "delta": vb - va}
        return {
            "runs": {"a": run_a, "b": run_b},
            "axes": {"a": a.axes, "b": b.axes},
            "config": config_diff,
            "metrics": metrics,
        }


def summarize_statuses(manifests: Iterable[RunManifest]) -> dict[str, int]:
    """Status histogram (for sweep summaries and the CLI)."""
    counts: dict[str, int] = {}
    for manifest in manifests:
        counts[manifest.status] = counts.get(manifest.status, 0) + 1
    return counts
