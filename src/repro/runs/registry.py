"""Content-addressed store of trained cluster models.

One directory per fingerprint::

    <root>/<fingerprint>/
        bundle.json, ingress.npz, egress.npz   (TrainedClusterModel.save)
        registry.json                          (provenance + usage)

Writes are atomic (save into a temp sibling, ``os.replace`` into
place), so concurrent workers racing to store the same fingerprint
cannot leave a torn entry — the loser simply discards its copy and the
winner's artifact serves everyone.  ``get_or_train`` is the sweep-facing
entry point: a hit loads in milliseconds what a miss would spend
seconds-to-hours retraining.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.core.micro import MicroModelConfig
from repro.core.pipeline import ExperimentConfig
from repro.core.training import TrainedClusterModel
from repro.runs.fingerprint import model_fingerprint, model_fingerprint_payload

_ENTRY_META = "registry.json"
_BUNDLE = "bundle.json"


@dataclass(frozen=True)
class RegistryEntry:
    """One stored model's identity, provenance, and usage."""

    fingerprint: str
    path: Path
    created_at: float
    last_used_at: float
    size_bytes: int
    inputs: dict


@dataclass(frozen=True)
class RegistryLookup:
    """Result of :meth:`ModelRegistry.get_or_train`."""

    model: TrainedClusterModel
    fingerprint: str
    path: Path
    cache_hit: bool
    train_wallclock_s: float


class ModelRegistry:
    """Fingerprint-keyed store of :class:`TrainedClusterModel` bundles."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def entry_dir(self, fingerprint: str) -> Path:
        """Where a fingerprint's artifact lives (existing or not)."""
        return self.root / fingerprint

    def contains(self, fingerprint: str) -> bool:
        """True when a complete artifact is stored for ``fingerprint``."""
        return (self.entry_dir(fingerprint) / _BUNDLE).exists()

    def load(self, fingerprint: str) -> TrainedClusterModel:
        """Load a stored model and bump its last-used timestamp."""
        directory = self.entry_dir(fingerprint)
        if not self.contains(fingerprint):
            raise KeyError(f"registry has no model {fingerprint!r} under {self.root}")
        model = TrainedClusterModel.load(directory)
        self._touch(directory)
        return model

    def store(
        self,
        fingerprint: str,
        model: TrainedClusterModel,
        inputs: Optional[dict] = None,
        train_wallclock_s: float = 0.0,
    ) -> Path:
        """Atomically persist ``model`` under ``fingerprint``.

        Returns the entry directory.  A concurrent store of the same
        fingerprint is harmless: the first replace wins and later ones
        discard their temp copy.
        """
        target = self.entry_dir(fingerprint)
        if self.contains(fingerprint):
            return target
        tmp = self.root / f".tmp-{fingerprint}-{uuid.uuid4().hex[:8]}"
        try:
            model.save(tmp)
            now = time.time()
            meta = {
                "fingerprint": fingerprint,
                "created_at": now,
                "last_used_at": now,
                "train_wallclock_s": train_wallclock_s,
                "inputs": inputs or {},
                "training_summary": model.training_summary,
            }
            (tmp / _ENTRY_META).write_text(json.dumps(meta, indent=2))
            try:
                os.replace(tmp, target)
            except OSError:
                # Lost the race; the existing entry is complete.
                if not self.contains(fingerprint):
                    raise
        finally:
            if tmp.exists():
                shutil.rmtree(tmp, ignore_errors=True)
        return target

    # ------------------------------------------------------------------
    def get_or_train(
        self,
        training: ExperimentConfig,
        micro: MicroModelConfig,
        train_fn: Optional[Callable[[], TrainedClusterModel]] = None,
    ) -> RegistryLookup:
        """Fetch the model for (training, micro) or train-and-store it.

        ``train_fn`` defaults to the pipeline's
        :func:`~repro.core.pipeline.train_reusable_model`; tests inject
        counters here to assert exactly-once training.
        """
        fingerprint = model_fingerprint(training, micro)
        if self.contains(fingerprint):
            return RegistryLookup(
                model=self.load(fingerprint),
                fingerprint=fingerprint,
                path=self.entry_dir(fingerprint),
                cache_hit=True,
                train_wallclock_s=0.0,
            )
        if train_fn is None:
            from repro.core.pipeline import train_reusable_model

            def train_fn() -> TrainedClusterModel:
                return train_reusable_model(training, micro=micro)[0]

        started = time.perf_counter()
        model = train_fn()
        elapsed = time.perf_counter() - started
        path = self.store(
            fingerprint,
            model,
            inputs=model_fingerprint_payload(training, micro),
            train_wallclock_s=elapsed,
        )
        return RegistryLookup(
            model=model,
            fingerprint=fingerprint,
            path=path,
            cache_hit=False,
            train_wallclock_s=elapsed,
        )

    # ------------------------------------------------------------------
    def entries(self) -> list[RegistryEntry]:
        """All complete entries, newest-created first."""
        found: list[RegistryEntry] = []
        for directory in sorted(self.root.iterdir()):
            if not directory.is_dir() or directory.name.startswith("."):
                continue
            meta_path = directory / _ENTRY_META
            if not (directory / _BUNDLE).exists():
                continue
            meta = json.loads(meta_path.read_text()) if meta_path.exists() else {}
            size = sum(f.stat().st_size for f in directory.iterdir() if f.is_file())
            found.append(
                RegistryEntry(
                    fingerprint=directory.name,
                    path=directory,
                    created_at=float(meta.get("created_at", 0.0)),
                    last_used_at=float(meta.get("last_used_at", 0.0)),
                    size_bytes=size,
                    inputs=meta.get("inputs", {}),
                )
            )
        found.sort(key=lambda e: e.created_at, reverse=True)
        return found

    def gc(self, keep: int, dry_run: bool = False) -> list[RegistryEntry]:
        """Drop all but the ``keep`` most-recently-used entries.

        Returns the entries removed (or that would be, with
        ``dry_run``), least-recently-used first.
        """
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        entries = sorted(self.entries(), key=lambda e: e.last_used_at, reverse=True)
        victims = entries[keep:]
        victims.sort(key=lambda e: e.last_used_at)
        if not dry_run:
            for entry in victims:
                shutil.rmtree(entry.path, ignore_errors=True)
        return victims

    # ------------------------------------------------------------------
    def _touch(self, directory: Path) -> None:
        """Update last_used_at (atomic rewrite; best-effort)."""
        meta_path = directory / _ENTRY_META
        try:
            meta = json.loads(meta_path.read_text()) if meta_path.exists() else {}
            meta["last_used_at"] = time.time()
            tmp = directory / f".{_ENTRY_META}.{uuid.uuid4().hex[:8]}"
            tmp.write_text(json.dumps(meta, indent=2))
            os.replace(tmp, meta_path)
        except OSError:
            pass
