"""Multiprocess sweep scheduler with retries, timeouts, and backoff.

Dispatches a :class:`~repro.runs.spec.ScenarioSpec`'s expanded run list
over a ``concurrent.futures.ProcessPoolExecutor``.  Three properties
matter more than raw parallelism:

* **Exactly-once training.**  Runs are grouped by model fingerprint;
  while a missing fingerprint is being trained by one in-flight run,
  runs needing the same model are held back.  The first run trains and
  stores, the rest load cache hits — a sweep never trains the same
  model twice, no matter the worker count.
* **Failure containment.**  A failing run is retried up to
  ``retries`` times with exponential backoff, then recorded as
  ``failed`` in its durable manifest; the rest of the sweep proceeds.
* **Timeout enforcement.**  A run past its deadline cannot be
  interrupted cooperatively (it is CPU-bound numpy), so the pool's
  worker processes are terminated and the executor rebuilt; innocent
  in-flight runs are requeued without consuming an attempt.

``workers=0`` runs everything inline in the calling process (no
timeout enforcement) — handy for benchmarks and debugging.
"""

from __future__ import annotations

import json
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.obs import MetricsRegistry
from repro.runs.executor import execute_run
from repro.runs.fingerprint import model_fingerprint
from repro.runs.manifest import RunManifest, summarize_statuses
from repro.runs.registry import ModelRegistry
from repro.runs.spec import MODEL_STAGES, RunRequest, ScenarioSpec

SWEEP_SUMMARY_NAME = "sweep.json"


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of one sweep submission.

    ``retries`` counts *additional* attempts after the first failure,
    so a run executes at most ``retries + 1`` times.  ``timeout_s``
    bounds one attempt's wall-clock (``None`` disables; requires
    ``workers >= 1``).
    """

    workers: int = 1
    timeout_s: Optional[float] = None
    retries: int = 1
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    poll_s: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = inline)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.timeout_s is not None and self.workers == 0:
            raise ValueError("timeout_s requires workers >= 1 (inline runs cannot be killed)")


@dataclass
class _RunState:
    request: RunRequest
    fingerprint: Optional[str]
    attempts: int = 0
    ready_at: float = 0.0
    manifest: Optional[dict[str, Any]] = field(default=None)

    @property
    def done(self) -> bool:
        return self.manifest is not None


class SweepScheduler:
    """Executes one spec's sweep and returns its manifests in order."""

    def __init__(
        self,
        spec: ScenarioSpec,
        out_dir: str | Path,
        registry_root: Optional[str | Path] = None,
        config: Optional[SchedulerConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.spec = spec
        self.out_dir = Path(out_dir)
        self.config = config or SchedulerConfig()
        #: Scheduler-side observability (dispatch latency, retry and
        #: timeout counts).  Workers keep their own per-run registries;
        #: this one watches the orchestration.  Disabled by default —
        #: every span/counter then resolves to a shared no-op.
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        if registry_root is None and spec.stage in MODEL_STAGES:
            registry_root = self.out_dir / "models"
        self.registry_root = Path(registry_root) if registry_root is not None else None
        self._registry = (
            ModelRegistry(self.registry_root) if self.registry_root is not None else None
        )

    # ------------------------------------------------------------------
    def submit(self) -> list[RunManifest]:
        """Expand, dispatch, and block until every run is terminal."""
        with self.metrics.span("sweep.submit"):
            requests = self.spec.expand()
            self.out_dir.mkdir(parents=True, exist_ok=True)
            states = [
                _RunState(request=request, fingerprint=self._fingerprint_of(request))
                for request in requests
            ]
            self._write_summary(states, started_at=time.time(), finished_at=None)
            if self.config.workers == 0:
                self._run_inline(states)
            else:
                self._run_pool(states)
            self._write_summary(states, started_at=None, finished_at=time.time())
        return [RunManifest.from_dict(state.manifest) for state in states]

    # ------------------------------------------------------------------
    def _fingerprint_of(self, request: RunRequest) -> Optional[str]:
        if not request.needs_model:
            return None
        assert request.training is not None and request.micro is not None
        return model_fingerprint(request.training, request.micro)

    def _registry_arg(self) -> Optional[str]:
        return str(self.registry_root) if self.registry_root is not None else None

    def _backoff(self, attempts: int) -> float:
        return self.config.backoff_s * (self.config.backoff_factor ** max(attempts - 1, 0))

    # ------------------------------------------------------------------
    def _run_inline(self, states: list[_RunState]) -> None:
        for state in states:
            while not state.done:
                state.attempts += 1
                self.metrics.counter("sweep.runs_dispatched").inc()
                with self.metrics.span("sweep.run_inline"):
                    manifest = execute_run(
                        state.request, str(self.out_dir), self._registry_arg(), state.attempts
                    )
                if manifest["status"] == "completed" or state.attempts > self.config.retries:
                    state.manifest = manifest
                    self.metrics.counter(
                        "sweep.runs_settled", status=manifest["status"]
                    ).inc()
                else:
                    self.metrics.counter("sweep.runs_retried").inc()
                    time.sleep(self._backoff(state.attempts))

    # ------------------------------------------------------------------
    def _run_pool(self, states: list[_RunState]) -> None:
        pending: deque[_RunState] = deque(states)
        inflight: dict[Future, tuple[_RunState, Optional[float]]] = {}
        training_inflight: set[str] = set()
        executor = ProcessPoolExecutor(max_workers=self.config.workers)
        try:
            while pending or inflight:
                now = time.monotonic()
                self._dispatch(executor, pending, inflight, training_inflight, now)
                if not inflight:
                    time.sleep(self.config.poll_s)
                    continue
                done, _ = wait(
                    list(inflight), timeout=self.config.poll_s, return_when=FIRST_COMPLETED
                )
                for future in done:
                    state, _deadline = inflight.pop(future)
                    if state.fingerprint is not None:
                        training_inflight.discard(state.fingerprint)
                    self._absorb(future, state, pending)
                executor = self._reap_timeouts(
                    executor, pending, inflight, training_inflight
                )
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    def _dispatch(
        self,
        executor: ProcessPoolExecutor,
        pending: deque[_RunState],
        inflight: dict[Future, tuple[_RunState, Optional[float]]],
        training_inflight: set[str],
        now: float,
    ) -> None:
        """Submit ready runs into free worker slots (fingerprint-aware)."""
        free = self.config.workers - len(inflight)
        if free <= 0:
            return
        held: list[_RunState] = []
        with self.metrics.span("sweep.dispatch"):
            while pending and free > 0:
                state = pending.popleft()
                if state.ready_at > now:
                    held.append(state)
                    continue
                fingerprint = state.fingerprint
                if fingerprint is not None and self._registry is not None:
                    if not self._registry.contains(fingerprint):
                        if fingerprint in training_inflight:
                            held.append(state)  # the trainer run will unlock us
                            self.metrics.counter("sweep.runs_held_for_model").inc()
                            continue
                        training_inflight.add(fingerprint)
                state.attempts += 1
                deadline = (
                    now + self.config.timeout_s if self.config.timeout_s is not None else None
                )
                future = executor.submit(
                    execute_run,
                    state.request,
                    str(self.out_dir),
                    self._registry_arg(),
                    state.attempts,
                )
                self.metrics.counter("sweep.runs_dispatched").inc()
                inflight[future] = (state, deadline)
                free -= 1
        pending.extendleft(reversed(held))

    def _absorb(
        self, future: Future, state: _RunState, pending: deque[_RunState]
    ) -> None:
        """Fold one finished future into the run's state (retry or settle)."""
        try:
            manifest = future.result()
        except Exception as error:  # worker died before producing a manifest
            manifest = self._parent_side_manifest(
                state,
                status="failed",
                error={
                    "type": type(error).__name__,
                    "message": str(error),
                    "traceback": f"worker process failed before reporting: {error}",
                },
            )
        if manifest["status"] == "completed" or state.attempts > self.config.retries:
            state.manifest = manifest
            self.metrics.counter("sweep.runs_settled", status=manifest["status"]).inc()
        else:
            self.metrics.counter("sweep.runs_retried").inc()
            state.ready_at = time.monotonic() + self._backoff(state.attempts)
            pending.append(state)

    def _reap_timeouts(
        self,
        executor: ProcessPoolExecutor,
        pending: deque[_RunState],
        inflight: dict[Future, tuple[_RunState, Optional[float]]],
        training_inflight: set[str],
    ) -> ProcessPoolExecutor:
        """Kill the pool if any run blew its deadline; requeue the rest."""
        now = time.monotonic()
        expired = [
            future
            for future, (_state, deadline) in inflight.items()
            if deadline is not None and now > deadline and not future.done()
        ]
        if not expired:
            return executor
        self.metrics.counter("sweep.timeouts").inc(len(expired))
        for future, (state, deadline) in list(inflight.items()):
            if state.fingerprint is not None:
                training_inflight.discard(state.fingerprint)
            if future in expired:
                manifest = self._parent_side_manifest(
                    state,
                    status="timeout",
                    error={
                        "type": "TimeoutError",
                        "message": (
                            f"attempt {state.attempts} exceeded "
                            f"{self.config.timeout_s:.3f}s; worker terminated"
                        ),
                        "traceback": "",
                    },
                )
                if state.attempts > self.config.retries:
                    state.manifest = manifest
                else:
                    state.ready_at = now + self._backoff(state.attempts)
                    pending.append(state)
            else:
                # Innocent bystander: its worker dies with the pool, so
                # give the attempt back and rerun it.
                state.attempts -= 1
                pending.appendleft(state)
        inflight.clear()
        self._kill_executor(executor)
        return ProcessPoolExecutor(max_workers=self.config.workers)

    @staticmethod
    def _kill_executor(executor: ProcessPoolExecutor) -> None:
        processes = list(getattr(executor, "_processes", {}).values())
        for process in processes:
            process.terminate()
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            process.join(timeout=5)

    # ------------------------------------------------------------------
    def _parent_side_manifest(
        self, state: _RunState, status: str, error: dict[str, str]
    ) -> dict[str, Any]:
        """Settle a run whose worker could not write its own outcome.

        Builds on the ``running`` manifest the worker persisted at
        start (if any), so config/seed provenance is kept.
        """
        from repro.runs.fingerprint import experiment_hash, experiment_payload

        request = state.request
        run_dir = self.out_dir / request.run_id
        try:
            manifest = RunManifest.load(run_dir)
        except (OSError, json.JSONDecodeError, TypeError, KeyError):
            manifest = RunManifest(
                run_id=request.run_id,
                spec_name=request.spec_name,
                stage=request.stage,
                status=status,
                attempts=state.attempts,
                axes=dict(request.axes),
                seed_master=request.seed_master,
                seed_derived=request.seed_derived,
                config=experiment_payload(request.experiment),
                config_hash=experiment_hash(request.experiment),
                started_at=time.time(),
            )
        manifest.status = status
        manifest.attempts = state.attempts
        manifest.error = error
        manifest.finished_at = time.time()
        if manifest.started_at is not None:
            manifest.wallclock_seconds = manifest.finished_at - manifest.started_at
        if manifest.hot_path_counters is None:
            manifest.hot_path_counters = {
                "model_packets": 0.0,
                "model_drops": 0.0,
                "inference_seconds": 0.0,
                "inference_seconds_per_packet": 0.0,
            }
        manifest.save(run_dir)
        return manifest.to_dict()

    # ------------------------------------------------------------------
    def _write_summary(
        self,
        states: list[_RunState],
        started_at: Optional[float],
        finished_at: Optional[float],
    ) -> None:
        path = self.out_dir / SWEEP_SUMMARY_NAME
        existing: dict[str, Any] = {}
        if path.exists():
            try:
                existing = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                existing = {}
        statuses = {
            state.request.run_id: (state.manifest or {}).get("status", "pending")
            for state in states
        }
        summary = {
            "spec": self.spec.to_dict(),
            "run_ids": [state.request.run_id for state in states],
            "statuses": statuses,
            "status_counts": summarize_statuses(
                RunManifest.from_dict(state.manifest) for state in states if state.done
            ),
            "registry": self._registry_arg(),
            "started_at": started_at or existing.get("started_at"),
            "finished_at": finished_at,
        }
        path.write_text(json.dumps(summary, indent=2, sort_keys=True))
