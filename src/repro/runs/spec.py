"""Declarative experiment scenarios and their deterministic expansion.

A :class:`ScenarioSpec` is the JSON/TOML-loadable description of one
sweep: a base :class:`~repro.core.pipeline.ExperimentConfig`, a
pipeline stage (``simulate`` / ``train`` / ``hybrid`` / ``cascade``
/ ``evaluate`` / ``validate``), and sweep axes.  :meth:`ScenarioSpec.expand` turns it into an ordered
list of :class:`RunRequest` objects — the unit the scheduler dispatches
to worker processes and the manifest layer records.

Seeds are *derived* per run: the spec's master seed plus the run's axis
assignment are hashed into a 31-bit seed, so every point of a sweep
gets an independent-but-reproducible workload stream (same spec + same
master seed => identical derived seeds, always).  Manifests record both
the master and the derived seed.

Stages that need a trained cluster model (``train``, ``hybrid``,
``evaluate``, ``validate``) carry a *training* configuration alongside
the evaluation one.  The training configuration is deliberately **not** reseeded per
run: keeping it constant across the sweep is what makes every run map
to the same model fingerprint, so the registry trains once and serves
cache hits to the rest of the sweep (the paper's Figure 3 economics).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Optional

from repro.core.micro import MicroModelConfig
from repro.core.pipeline import ExperimentConfig
from repro.topology.clos import ClosParams

#: Pipeline stages a spec can request.
STAGES = (
    "simulate",
    "train",
    "hybrid",
    "pdes-hybrid",
    "cascade",
    "evaluate",
    "validate",
)

#: Stages that need a trained cluster model (and hence a registry).
MODEL_STAGES = ("train", "hybrid", "pdes-hybrid", "cascade", "evaluate", "validate")

#: Sweep axes and where each one applies.
EXPERIMENT_AXES = ("load", "seed", "duration_s", "matrix", "intra_cluster_fraction")
TOPOLOGY_AXES = ("clusters",)
MICRO_AXES = ("alpha",)
SWEEP_AXES = EXPERIMENT_AXES + TOPOLOGY_AXES + MICRO_AXES

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_EXPERIMENT_KEYS = frozenset(
    {
        "load",
        "duration_s",
        "seed",
        "matrix",
        "intra_cluster_fraction",
        "clusters",
        "clos",
        "routing",
        "failures",
        "collective",
    }
)
_SPEC_KEYS = frozenset(
    {
        "name",
        "stage",
        "experiment",
        "training",
        "micro",
        "hybrid",
        "sweep",
        "inject",
        "traffic",
        "routing",
        "failures",
    }
)
_INJECT_KEYS = frozenset({"fail_attempts", "hang_s"})
_TRAFFIC_KEYS = frozenset({"collective"})


def _experiment_from_dict(raw: dict, *, context: str) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` from a spec dictionary.

    ``clusters`` is accepted as a shorthand for ``clos.clusters``; a
    full ``clos`` sub-table overrides any topology field.
    """
    raw = dict(raw)
    unknown = set(raw) - _EXPERIMENT_KEYS
    if unknown:
        raise ValueError(
            f"{context}: unknown experiment keys {sorted(unknown)}; "
            f"allowed: {sorted(_EXPERIMENT_KEYS)}"
        )
    clos_kwargs = dict(raw.pop("clos", {}))
    if "clusters" in raw:
        clos_kwargs["clusters"] = raw.pop("clusters")
    try:
        clos = ClosParams(**clos_kwargs)
    except TypeError as error:
        raise ValueError(f"{context}: bad clos parameters: {error}") from None
    return ExperimentConfig(clos=clos, **raw)


def _micro_from_dict(raw: dict, *, context: str) -> MicroModelConfig:
    try:
        return MicroModelConfig(**raw)
    except TypeError as error:
        raise ValueError(f"{context}: bad micro-model parameters: {error}") from None


def derive_seed(name: str, master_seed: int, axes: dict[str, Any]) -> int:
    """Stable 31-bit per-run seed from the spec identity and axis point.

    Depends only on (spec name, master seed, axis assignment) — not on
    the run's position in the expansion — so inserting a sweep value
    does not reseed the existing points.
    """
    payload = json.dumps(
        {"axes": axes, "name": name, "seed": master_seed},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)


@dataclass(frozen=True)
class RunRequest:
    """One fully resolved run of a sweep (picklable; crosses processes)."""

    run_id: str
    index: int
    spec_name: str
    stage: str
    axes: dict[str, Any]
    seed_master: int
    seed_derived: int
    experiment: ExperimentConfig
    training: Optional[ExperimentConfig] = None
    micro: Optional[MicroModelConfig] = None
    hybrid: dict[str, Any] = field(default_factory=dict)
    inject: dict[str, Any] = field(default_factory=dict)

    @property
    def needs_model(self) -> bool:
        """True when this run requires a trained cluster model."""
        return self.stage in MODEL_STAGES


@dataclass
class ScenarioSpec:
    """A declarative sweep over experiment configurations.

    Attributes
    ----------
    name:
        Sweep identity; run ids are ``<name>-<index:04d>``.
    stage:
        Which pipeline stage each run executes.
    experiment:
        Base evaluation-run configuration (seed here is the *master*
        seed from which per-run seeds are derived).
    training:
        Training-run configuration for model stages (defaults to the
        paper's two-cluster setup).  Constant across the sweep unless
        an axis explicitly targets it (``alpha``).
    micro:
        Micro-model architecture/training hyper-parameters.
    hybrid:
        Keyword overrides for :class:`~repro.core.hybrid.HybridConfig`
        (``hybrid`` stage),
        :class:`~repro.cascade.CascadeConfig` (``cascade`` stage), or
        :class:`~repro.validate.ValidateConfig` (``validate`` stage).
    sweep:
        Axis name -> list of values; runs are the Cartesian product,
        expanded with axes in sorted-name order and values in the
        given order.
    inject:
        Test hooks keyed by run index (as int): ``fail_attempts`` makes
        the worker raise on the first N attempts; ``hang_s`` makes it
        sleep before executing (timeout exercise).
    """

    name: str
    stage: str = "simulate"
    experiment: ExperimentConfig = field(default_factory=ExperimentConfig)
    training: Optional[ExperimentConfig] = None
    micro: Optional[MicroModelConfig] = None
    hybrid: dict[str, Any] = field(default_factory=dict)
    sweep: dict[str, list] = field(default_factory=dict)
    inject: dict[int, dict[str, Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"spec name {self.name!r} must match {_NAME_RE.pattern} "
                "(it becomes a directory prefix)"
            )
        if self.stage not in STAGES:
            raise ValueError(f"stage must be one of {STAGES}, got {self.stage!r}")
        for axis, values in self.sweep.items():
            if axis not in SWEEP_AXES:
                raise ValueError(
                    f"unknown sweep axis {axis!r}; allowed: {sorted(SWEEP_AXES)}"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"sweep axis {axis!r} needs a non-empty list of values")
        if "alpha" in self.sweep and self.stage not in MODEL_STAGES:
            raise ValueError(
                f"sweep axis 'alpha' requires a model stage {MODEL_STAGES}"
            )
        if self.stage in MODEL_STAGES:
            if self.training is None:
                self.training = ExperimentConfig(
                    clos=ClosParams(clusters=2), seed=self.experiment.seed
                )
            if self.micro is None:
                self.micro = MicroModelConfig()
        for index, hooks in self.inject.items():
            unknown = set(hooks) - _INJECT_KEYS
            if unknown:
                raise ValueError(
                    f"inject[{index}]: unknown hooks {sorted(unknown)}; "
                    f"allowed: {sorted(_INJECT_KEYS)}"
                )

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: dict) -> "ScenarioSpec":
        """Validate and build a spec from parsed JSON/TOML."""
        raw = dict(raw)
        unknown = set(raw) - _SPEC_KEYS
        if unknown:
            raise ValueError(
                f"unknown spec keys {sorted(unknown)}; allowed: {sorted(_SPEC_KEYS)}"
            )
        if "name" not in raw:
            raise ValueError("spec needs a 'name'")
        name = raw["name"]
        # Scenario-pack keys (`traffic.collective`, `routing`,
        # `failures`) live at the spec's top level for readability but
        # are experiment parameters: they fold into the evaluation
        # config, where every stage (full DES, hybrid, cascade,
        # validate, PDES) picks them up uniformly.
        experiment_raw = dict(raw.get("experiment", {}))
        for scenario_key in ("routing", "failures"):
            if scenario_key in raw:
                if scenario_key in experiment_raw:
                    raise ValueError(
                        f"{scenario_key!r} given both at top level and "
                        "inside 'experiment'; pick one"
                    )
                experiment_raw[scenario_key] = raw[scenario_key]
        traffic = raw.get("traffic", {})
        if traffic:
            unknown = set(traffic) - _TRAFFIC_KEYS
            if unknown:
                raise ValueError(
                    f"unknown traffic keys {sorted(unknown)}; "
                    f"allowed: {sorted(_TRAFFIC_KEYS)}"
                )
            if "collective" in traffic:
                if "collective" in experiment_raw:
                    raise ValueError(
                        "'collective' given both in 'traffic' and inside "
                        "'experiment'; pick one"
                    )
                experiment_raw["collective"] = traffic["collective"]
        experiment = _experiment_from_dict(experiment_raw, context="experiment")
        training = None
        if "training" in raw:
            training = _experiment_from_dict(raw["training"], context="training")
        micro = None
        if "micro" in raw:
            micro = _micro_from_dict(raw["micro"], context="micro")
        inject = {int(k): dict(v) for k, v in raw.get("inject", {}).items()}
        return cls(
            name=name,
            stage=raw.get("stage", "simulate"),
            experiment=experiment,
            training=training,
            micro=micro,
            hybrid=dict(raw.get("hybrid", {})),
            sweep={k: list(v) for k, v in raw.get("sweep", {}).items()},
            inject=inject,
        )

    def to_dict(self) -> dict:
        """JSON-serializable echo of the spec (for sweep.json)."""
        from dataclasses import asdict

        out: dict[str, Any] = {
            "name": self.name,
            "stage": self.stage,
            "experiment": asdict(self.experiment),
            "sweep": {k: list(v) for k, v in self.sweep.items()},
        }
        if self.training is not None:
            out["training"] = asdict(self.training)
        if self.micro is not None:
            out["micro"] = asdict(self.micro)
        if self.hybrid:
            out["hybrid"] = dict(self.hybrid)
        if self.inject:
            out["inject"] = {str(k): dict(v) for k, v in self.inject.items()}
        return out

    # ------------------------------------------------------------------
    def expand(self) -> list[RunRequest]:
        """The deterministic run list (sorted axes, given value order)."""
        axes = sorted(self.sweep)
        points: list[dict[str, Any]]
        if axes:
            points = [
                dict(zip(axes, combo))
                for combo in itertools.product(*(self.sweep[axis] for axis in axes))
            ]
        else:
            points = [{}]
        requests: list[RunRequest] = []
        for index, assignment in enumerate(points):
            experiment = self.experiment
            micro = self.micro
            exp_updates = {
                axis: value
                for axis, value in assignment.items()
                if axis in EXPERIMENT_AXES
            }
            if "clusters" in assignment:
                experiment = replace(
                    experiment, clos=replace(experiment.clos, clusters=assignment["clusters"])
                )
            master_seed = int(exp_updates.get("seed", experiment.seed))
            derived = derive_seed(self.name, master_seed, assignment)
            exp_updates["seed"] = derived
            experiment = replace(experiment, **exp_updates)
            if "alpha" in assignment:
                assert micro is not None  # enforced in __post_init__
                micro = replace(micro, alpha=assignment["alpha"])
            requests.append(
                RunRequest(
                    run_id=f"{self.name}-{index:04d}",
                    index=index,
                    spec_name=self.name,
                    stage=self.stage,
                    axes=assignment,
                    seed_master=master_seed,
                    seed_derived=derived,
                    experiment=experiment,
                    training=self.training,
                    micro=micro,
                    hybrid=dict(self.hybrid),
                    inject=dict(self.inject.get(index, {})),
                )
            )
        return requests


def load_spec(path: str | Path) -> ScenarioSpec:
    """Load a :class:`ScenarioSpec` from a ``.json`` or ``.toml`` file."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        raw = json.loads(path.read_text())
    elif suffix == ".toml":
        import tomllib

        with path.open("rb") as handle:
            raw = tomllib.load(handle)
    else:
        raise ValueError(f"spec file must end in .json or .toml, got {path.name!r}")
    if not isinstance(raw, dict):
        raise ValueError(f"spec file {path} must contain a table/object at top level")
    return ScenarioSpec.from_dict(raw)
