"""Network topology models and builders.

Provides the graph representation used by the packet simulator, the
flow-level simulator, and the PDES partitioner, plus builders for the
two topology families in the paper's evaluation:

* :func:`build_clos` — the canonical 3-layer Clos deployment of
  Section 2 (servers, ToR switches, Cluster switches, Core switches),
  organized into clusters — the paper's unit of approximation.
* :func:`build_leaf_spine` — the leaf-spine topologies of Figure 1.
"""

from repro.topology.graph import Link, Node, NodeRole, Topology
from repro.topology.clos import ClosParams, build_clos
from repro.topology.fattree import FatTreeParams, build_fat_tree
from repro.topology.leafspine import LeafSpineParams, build_leaf_spine
from repro.topology.routing import EcmpRouting, ecmp_hash, name_key
from repro.topology.partition import cluster_of, partition_by_cluster

__all__ = [
    "ClosParams",
    "EcmpRouting",
    "FatTreeParams",
    "LeafSpineParams",
    "Link",
    "Node",
    "NodeRole",
    "Topology",
    "build_clos",
    "build_fat_tree",
    "build_leaf_spine",
    "cluster_of",
    "ecmp_hash",
    "name_key",
    "partition_by_cluster",
]
