"""Builder for 3-layer Clos data center topologies.

The paper's canonical deployment (Section 2, Figure 2): servers connect
to Top-of-Rack switches, ToRs to Cluster (aggregation) switches, and
Cluster switches to Core switches.  "We refer to the components under a
single ToR as a rack, and the subtree of components under and including
a group of Cluster switches as a cluster."  The evaluation's clusters
contain "four switches and eight servers" (Section 6.2), which this
builder produces with its defaults: 2 ToRs x 2 Cluster switches and
4 servers per rack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.graph import Node, NodeRole, Topology

#: 10 GbE, the link speed used throughout the paper's evaluation.
DEFAULT_RATE_BPS = 10e9
#: Intra-DC propagation delay per hop; a few hundred ns of fiber plus
#: switch ingress latency, the figure commonly used for DC simulations.
DEFAULT_DELAY_S = 1e-6


@dataclass(frozen=True)
class ClosParams:
    """Parameters of a 3-layer Clos topology.

    Defaults produce the paper's evaluation cluster shape: each cluster
    has 2 ToR + 2 Cluster switches (four switches) and 2 racks x 4
    servers (eight servers).

    Attributes
    ----------
    clusters:
        Number of clusters (the paper sweeps 2, 4, 8, 16).
    tors_per_cluster:
        Racks per cluster.
    aggs_per_cluster:
        Cluster (aggregation) switches per cluster.
    servers_per_tor:
        Servers per rack.
    cores:
        Number of core switches; each connects to every Cluster switch.
    rate_bps, delay_s:
        Uniform link capacity and propagation delay.
    """

    clusters: int = 2
    tors_per_cluster: int = 2
    aggs_per_cluster: int = 2
    servers_per_tor: int = 4
    cores: int = 2
    rate_bps: float = DEFAULT_RATE_BPS
    delay_s: float = DEFAULT_DELAY_S

    def __post_init__(self) -> None:
        for field_name in (
            "clusters",
            "tors_per_cluster",
            "aggs_per_cluster",
            "servers_per_tor",
            "cores",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")

    @property
    def servers_per_cluster(self) -> int:
        """Servers in one cluster."""
        return self.tors_per_cluster * self.servers_per_tor

    @property
    def total_servers(self) -> int:
        """Servers in the whole topology."""
        return self.clusters * self.servers_per_cluster

    @property
    def switches_per_cluster(self) -> int:
        """ToR plus Cluster switches in one cluster."""
        return self.tors_per_cluster + self.aggs_per_cluster


def server_name(cluster: int, tor: int, slot: int) -> str:
    """Canonical name of a server (cluster, rack, slot)."""
    return f"server-c{cluster}-t{tor}-s{slot}"


def tor_name(cluster: int, tor: int) -> str:
    """Canonical name of a ToR switch."""
    return f"tor-c{cluster}-{tor}"


def agg_name(cluster: int, agg: int) -> str:
    """Canonical name of a Cluster (aggregation) switch."""
    return f"agg-c{cluster}-{agg}"


def core_name(core: int) -> str:
    """Canonical name of a Core switch."""
    return f"core-{core}"


def build_clos(params: ClosParams) -> Topology:
    """Construct a 3-layer Clos topology per Figure 2.

    Wiring: every server to its rack's ToR; every ToR to every Cluster
    switch of its cluster; every Cluster switch to every Core switch.
    """
    topo = Topology(name=f"clos-{params.clusters}x{params.switches_per_cluster}")
    for core in range(params.cores):
        topo.add_node(Node(core_name(core), NodeRole.CORE, cluster=None, index=core))
    for cluster in range(params.clusters):
        for agg in range(params.aggs_per_cluster):
            topo.add_node(
                Node(agg_name(cluster, agg), NodeRole.CLUSTER, cluster=cluster, index=agg)
            )
        for tor in range(params.tors_per_cluster):
            topo.add_node(Node(tor_name(cluster, tor), NodeRole.TOR, cluster=cluster, index=tor))
            for slot in range(params.servers_per_tor):
                server_index = tor * params.servers_per_tor + slot
                topo.add_node(
                    Node(
                        server_name(cluster, tor, slot),
                        NodeRole.SERVER,
                        cluster=cluster,
                        index=server_index,
                    )
                )
        # Wire the cluster.
        for tor in range(params.tors_per_cluster):
            for slot in range(params.servers_per_tor):
                topo.add_link(
                    server_name(cluster, tor, slot),
                    tor_name(cluster, tor),
                    params.rate_bps,
                    params.delay_s,
                )
            for agg in range(params.aggs_per_cluster):
                topo.add_link(
                    tor_name(cluster, tor),
                    agg_name(cluster, agg),
                    params.rate_bps,
                    params.delay_s,
                )
        for agg in range(params.aggs_per_cluster):
            for core in range(params.cores):
                topo.add_link(
                    agg_name(cluster, agg), core_name(core), params.rate_bps, params.delay_s
                )
    topo.validate_connected()
    return topo
