"""Builder for k-ary fat-trees (Al-Fares et al., SIGCOMM 2008).

The paper's Section 2 grounds its architecture discussion in "Clos
networks" citing the fat-tree paper; this builder provides that
canonical instance.  A k-ary fat-tree (k even) has:

* k pods, each with k/2 edge (ToR) switches and k/2 aggregation
  switches, fully meshed inside the pod;
* (k/2)^2 core switches; aggregation switch j of every pod connects to
  cores [j*k/2, (j+1)*k/2);
* k/2 servers per edge switch — k^3/4 servers total.

Pods map directly onto the paper's *clusters* (``Node.cluster`` = pod
index), so the entire approximation pipeline — trace collection,
training, hybrid substitution — applies to fat-trees unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.clos import DEFAULT_DELAY_S, DEFAULT_RATE_BPS
from repro.topology.graph import Node, NodeRole, Topology


@dataclass(frozen=True)
class FatTreeParams:
    """Parameters of a k-ary fat-tree.

    Attributes
    ----------
    k:
        Arity (ports per switch); must be even and >= 2.
    rate_bps, delay_s:
        Uniform link capacity and propagation delay.
    """

    k: int = 4
    rate_bps: float = DEFAULT_RATE_BPS
    delay_s: float = DEFAULT_DELAY_S

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2 != 0:
            raise ValueError(f"k must be an even integer >= 2, got {self.k}")

    @property
    def pods(self) -> int:
        """Number of pods (= k)."""
        return self.k

    @property
    def edges_per_pod(self) -> int:
        """Edge (ToR) switches per pod."""
        return self.k // 2

    @property
    def aggs_per_pod(self) -> int:
        """Aggregation switches per pod."""
        return self.k // 2

    @property
    def cores(self) -> int:
        """Core switches: (k/2)^2."""
        return (self.k // 2) ** 2

    @property
    def servers_per_edge(self) -> int:
        """Servers per edge switch."""
        return self.k // 2

    @property
    def total_servers(self) -> int:
        """k^3 / 4 servers."""
        return self.k**3 // 4


def build_fat_tree(params: FatTreeParams) -> Topology:
    """Construct a k-ary fat-tree with pods labelled as clusters."""
    k = params.k
    half = k // 2
    topo = Topology(name=f"fattree-k{k}")
    for core in range(params.cores):
        topo.add_node(Node(f"core-{core}", NodeRole.CORE, cluster=None, index=core))
    for pod in range(k):
        for agg in range(half):
            topo.add_node(
                Node(f"agg-p{pod}-{agg}", NodeRole.CLUSTER, cluster=pod, index=agg)
            )
        for edge in range(half):
            topo.add_node(
                Node(f"tor-p{pod}-{edge}", NodeRole.TOR, cluster=pod, index=edge)
            )
            for slot in range(half):
                server_index = edge * half + slot
                topo.add_node(
                    Node(
                        f"server-p{pod}-e{edge}-s{slot}",
                        NodeRole.SERVER,
                        cluster=pod,
                        index=server_index,
                    )
                )
                topo.add_link(
                    f"server-p{pod}-e{edge}-s{slot}",
                    f"tor-p{pod}-{edge}",
                    params.rate_bps,
                    params.delay_s,
                )
        # Pod-internal full mesh edge <-> agg.
        for edge in range(half):
            for agg in range(half):
                topo.add_link(
                    f"tor-p{pod}-{edge}",
                    f"agg-p{pod}-{agg}",
                    params.rate_bps,
                    params.delay_s,
                )
        # Stride-pattern core wiring: agg j -> cores [j*half, (j+1)*half).
        for agg in range(half):
            for i in range(half):
                topo.add_link(
                    f"agg-p{pod}-{agg}",
                    f"core-{agg * half + i}",
                    params.rate_bps,
                    params.delay_s,
                )
    topo.validate_connected()
    return topo
