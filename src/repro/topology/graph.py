"""Graph representation of a network.

A :class:`Topology` is a set of named :class:`Node` objects joined by
bidirectional :class:`Link` records (each direction gets its own queue
and serialization in the packet simulator, but capacity/delay are
symmetric).  Nodes carry a :class:`NodeRole` and an optional cluster
index, because both the paper's approximation boundary and the PDES
partitioner are defined in terms of layers and clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Optional


class NodeRole(str, Enum):
    """Layer of the Clos/leaf-spine hierarchy a node belongs to."""

    SERVER = "server"
    TOR = "tor"
    CLUSTER = "cluster"  # a.k.a. aggregation switch
    CORE = "core"

    @property
    def is_switch(self) -> bool:
        """True for ToR/Cluster/Core nodes."""
        return self is not NodeRole.SERVER


@dataclass(frozen=True)
class Node:
    """A device in the topology.

    Attributes
    ----------
    name:
        Globally unique identifier.
    role:
        Hierarchy layer.
    cluster:
        Cluster index for nodes inside a cluster; None for core
        switches (which the paper always simulates in full fidelity)
        and for leaf-spine topologies, which have no cluster notion.
    index:
        Position within (role, cluster), for stable feature encodings.
    """

    name: str
    role: NodeRole
    cluster: Optional[int] = None
    index: int = 0


@dataclass(frozen=True)
class Link:
    """A bidirectional link between two nodes.

    Attributes
    ----------
    a, b:
        Endpoint names (ordering is arbitrary but stable).
    rate_bps:
        Capacity in bits per second (e.g. 10e9 for 10 GbE).
    delay_s:
        One-way propagation delay in seconds.
    """

    a: str
    b: str
    rate_bps: float
    delay_s: float

    def other(self, name: str) -> str:
        """The endpoint that is not ``name``."""
        if name == self.a:
            return self.b
        if name == self.b:
            return self.a
        raise ValueError(f"{name!r} is not an endpoint of link {self.a!r}-{self.b!r}")


@dataclass
class Topology:
    """A named collection of nodes and links with adjacency queries."""

    name: str = "topology"
    _nodes: dict[str, Node] = field(default_factory=dict)
    _links: list[Link] = field(default_factory=list)
    _adjacency: dict[str, dict[str, Link]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Register a node; duplicate names are an error."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._adjacency[node.name] = {}
        return node

    def add_link(self, a: str, b: str, rate_bps: float, delay_s: float) -> Link:
        """Connect two existing nodes; parallel links are an error."""
        for name in (a, b):
            if name not in self._nodes:
                raise KeyError(f"unknown node {name!r}")
        if a == b:
            raise ValueError(f"self-link on {a!r}")
        if b in self._adjacency[a]:
            raise ValueError(f"duplicate link {a!r}-{b!r}")
        link = Link(a=a, b=b, rate_bps=rate_bps, delay_s=delay_s)
        self._links.append(link)
        self._adjacency[a][b] = link
        self._adjacency[b][a] = link
        return link

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Look up a node by name."""
        return self._nodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> Iterator[Node]:
        """All nodes in insertion order."""
        return iter(self._nodes.values())

    @property
    def links(self) -> Iterator[Link]:
        """All links in insertion order."""
        return iter(self._links)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def link_count(self) -> int:
        """Number of links."""
        return len(self._links)

    def neighbors(self, name: str) -> list[str]:
        """Names adjacent to ``name``, in link insertion order."""
        return list(self._adjacency[name].keys())

    def link_between(self, a: str, b: str) -> Link:
        """The link joining ``a`` and ``b``; KeyError if absent."""
        return self._adjacency[a][b]

    def nodes_with_role(self, role: NodeRole) -> list[Node]:
        """All nodes of the given role, in insertion order."""
        return [n for n in self._nodes.values() if n.role is role]

    def servers(self) -> list[Node]:
        """All server nodes."""
        return self.nodes_with_role(NodeRole.SERVER)

    def switches(self) -> list[Node]:
        """All non-server nodes."""
        return [n for n in self._nodes.values() if n.role.is_switch]

    def cluster_nodes(self, cluster: int) -> list[Node]:
        """All nodes assigned to cluster ``cluster``."""
        return [n for n in self._nodes.values() if n.cluster == cluster]

    def cluster_ids(self) -> list[int]:
        """Sorted list of distinct cluster indices present."""
        ids = {n.cluster for n in self._nodes.values() if n.cluster is not None}
        return sorted(ids)

    def validate_connected(self) -> None:
        """Raise ``ValueError`` unless the topology is one component."""
        if not self._nodes:
            return
        start = next(iter(self._nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor in self._adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        missing = set(self._nodes) - seen
        if missing:
            raise ValueError(f"topology is disconnected; unreachable: {sorted(missing)[:5]}")
