"""Builder for leaf-spine (2-layer folded Clos) topologies.

Figure 1's motivation experiment sweeps leaf-spine topologies: "a
leaf-spine topology with 10 GbE links and racks of four servers.  We
vary the size of the network by increasing the number of ToRs and
Cluster switches from 4 to 64, while maintaining oversubscription and
average load."  In a leaf-spine, every leaf (ToR) connects to every
spine, which is what makes the network "highly interconnected" and
PDES synchronization expensive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.clos import DEFAULT_DELAY_S, DEFAULT_RATE_BPS
from repro.topology.graph import Node, NodeRole, Topology


@dataclass(frozen=True)
class LeafSpineParams:
    """Parameters of a leaf-spine topology.

    Attributes
    ----------
    tors:
        Number of leaf (ToR) switches; Figure 1 sweeps 4..64.
    spines:
        Number of spine switches; Figure 1 keeps this equal to ``tors``.
    servers_per_tor:
        Rack size; Figure 1 uses 4.
    rate_bps, delay_s:
        Uniform link capacity and propagation delay.
    """

    tors: int = 4
    spines: int = 4
    servers_per_tor: int = 4
    rate_bps: float = DEFAULT_RATE_BPS
    delay_s: float = DEFAULT_DELAY_S

    def __post_init__(self) -> None:
        for field_name in ("tors", "spines", "servers_per_tor"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")

    @property
    def total_servers(self) -> int:
        """Servers in the whole topology."""
        return self.tors * self.servers_per_tor


def build_leaf_spine(params: LeafSpineParams) -> Topology:
    """Construct a full-bipartite leaf-spine topology."""
    topo = Topology(name=f"leafspine-{params.tors}x{params.spines}")
    for spine in range(params.spines):
        topo.add_node(Node(f"spine-{spine}", NodeRole.CLUSTER, cluster=None, index=spine))
    for tor in range(params.tors):
        topo.add_node(Node(f"tor-{tor}", NodeRole.TOR, cluster=tor, index=tor))
        for slot in range(params.servers_per_tor):
            topo.add_node(
                Node(f"server-t{tor}-s{slot}", NodeRole.SERVER, cluster=tor, index=slot)
            )
            topo.add_link(f"server-t{tor}-s{slot}", f"tor-{tor}", params.rate_bps, params.delay_s)
        for spine in range(params.spines):
            topo.add_link(f"tor-{tor}", f"spine-{spine}", params.rate_bps, params.delay_s)
    topo.validate_connected()
    return topo
