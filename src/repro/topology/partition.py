"""Partitioning helpers.

Two consumers need to split a topology into regions:

* the hybrid simulator partitions a Clos topology by *cluster* — the
  paper's unit of approximation (Section 4);
* the PDES engine partitions any topology into balanced groups of
  switches plus their attached servers, one group per worker.
"""

from __future__ import annotations

from repro.topology.graph import NodeRole, Topology


def cluster_of(topology: Topology, node_name: str) -> int | None:
    """Cluster index of a node (None for core switches)."""
    return topology.node(node_name).cluster


def partition_by_cluster(topology: Topology) -> dict[int, list[str]]:
    """Map cluster index -> node names in that cluster.

    Core switches (cluster None) are excluded; the paper keeps the core
    layer fully simulated in all configurations (Section 5).
    """
    partitions: dict[int, list[str]] = {}
    for node in topology.nodes:
        if node.cluster is None:
            continue
        partitions.setdefault(node.cluster, []).append(node.name)
    return partitions


def partition_for_workers(topology: Topology, workers: int) -> list[set[str]]:
    """Split nodes into ``workers`` balanced partitions for PDES.

    Strategy: distribute racks (a ToR and its servers move together)
    round-robin across workers, then distribute the remaining switches
    (spines/aggs/cores) round-robin.  Keeping rack-internal traffic
    within one partition minimizes cross-partition events for the
    traffic that never leaves the rack, which is the best case for
    conservative PDES; everything crossing the fabric still pays
    synchronization — the effect Figure 1 demonstrates.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    partitions: list[set[str]] = [set() for _ in range(workers)]
    tors = topology.nodes_with_role(NodeRole.TOR)
    for i, tor in enumerate(tors):
        target = partitions[i % workers]
        target.add(tor.name)
        for neighbor in topology.neighbors(tor.name):
            if topology.node(neighbor).role is NodeRole.SERVER:
                target.add(neighbor)
    other_switches = [
        node
        for node in topology.nodes
        if node.role in (NodeRole.CLUSTER, NodeRole.CORE)
    ]
    for i, switch in enumerate(other_switches):
        partitions[i % workers].add(switch.name)
    # Any stragglers (servers not under a ToR, unusual topologies).
    assigned = set().union(*partitions) if partitions else set()
    leftovers = [node.name for node in topology.nodes if node.name not in assigned]
    for i, name in enumerate(leftovers):
        partitions[i % workers].add(name)
    return partitions


def cross_partition_links(topology: Topology, partitions: list[set[str]]) -> int:
    """Count links whose endpoints live in different partitions.

    This is the synchronization surface of a PDES partitioning: every
    cross-partition link forces null-message/window traffic.
    """
    owner: dict[str, int] = {}
    for i, part in enumerate(partitions):
        for name in part:
            owner[name] = i
    return sum(1 for link in topology.links if owner[link.a] != owner[link.b])
