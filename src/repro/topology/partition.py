"""Partitioning helpers.

Two consumers need to split a topology into regions:

* the hybrid simulator partitions a Clos topology by *cluster* — the
  paper's unit of approximation (Section 4);
* the PDES engine partitions any topology into balanced groups of
  switches plus their attached servers, one group per worker.
"""

from __future__ import annotations

from repro.topology.graph import NodeRole, Topology


def cluster_of(topology: Topology, node_name: str) -> int | None:
    """Cluster index of a node (None for core switches)."""
    return topology.node(node_name).cluster


def partition_by_cluster(topology: Topology) -> dict[int, list[str]]:
    """Map cluster index -> node names in that cluster.

    Core switches (cluster None) are excluded; the paper keeps the core
    layer fully simulated in all configurations (Section 5).
    """
    partitions: dict[int, list[str]] = {}
    for node in topology.nodes:
        if node.cluster is None:
            continue
        partitions.setdefault(node.cluster, []).append(node.name)
    return partitions


def partition_for_workers(topology: Topology, workers: int) -> list[set[str]]:
    """Split nodes into ``workers`` balanced partitions for PDES.

    Strategy: distribute racks (a ToR and its servers move together)
    round-robin across workers, then distribute the remaining switches
    (spines/aggs/cores) round-robin.  Keeping rack-internal traffic
    within one partition minimizes cross-partition events for the
    traffic that never leaves the rack, which is the best case for
    conservative PDES; everything crossing the fabric still pays
    synchronization — the effect Figure 1 demonstrates.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    partitions: list[set[str]] = [set() for _ in range(workers)]
    tors = topology.nodes_with_role(NodeRole.TOR)
    for i, tor in enumerate(tors):
        target = partitions[i % workers]
        target.add(tor.name)
        for neighbor in topology.neighbors(tor.name):
            if topology.node(neighbor).role is NodeRole.SERVER:
                target.add(neighbor)
    other_switches = [
        node
        for node in topology.nodes
        if node.role in (NodeRole.CLUSTER, NodeRole.CORE)
    ]
    for i, switch in enumerate(other_switches):
        partitions[i % workers].add(switch.name)
    # Any stragglers (servers not under a ToR, unusual topologies).
    assigned = set().union(*partitions) if partitions else set()
    leftovers = [node.name for node in topology.nodes if node.name not in assigned]
    for i, name in enumerate(leftovers):
        partitions[i % workers].add(name)
    return partitions


def partition_hybrid(
    topology: Topology, full_cluster: int, workers: int
) -> list[set[str]]:
    """Partition a hybrid world (one full cluster + model clusters).

    The hybrid×PDES fusion (``repro.pdes.hybrid_shard``) shards the
    *full-fidelity* region — the full cluster's racks and switches plus
    the core layer — across workers, while every approximated cluster
    moves **atomically**: its hosts, and the fabric switch names its
    :class:`~repro.core.cluster_model.ApproximatedCluster` stands in
    for, land on one worker together.  Hosts of an approximated cluster
    talk only to their own cluster's model on the way in, so keeping
    them together makes the host↔model path free of synchronization;
    the cut is then exactly the full-fidelity fabric links that cross
    workers plus the model↔core attachment links — the minimal surface
    a sharded hybrid can have without splitting a model's recurrent
    state.

    Strategy (deterministic, like :func:`partition_for_workers`):

    * full-cluster racks (ToR + its servers) round-robin;
    * full-cluster aggregation switches and core switches round-robin;
    * approximated clusters (all their nodes) round-robin by cluster
      index;
    * stragglers round-robin.

    Every node of the topology is assigned exactly once — including the
    fabric switches of approximated clusters, so owner maps built from
    the result are total (cut-link accounting and message routing need
    an owner for the model's stand-in names).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cluster_ids = topology.cluster_ids()
    if full_cluster not in cluster_ids:
        raise ValueError(
            f"full_cluster={full_cluster} not in topology clusters {cluster_ids}"
        )
    partitions: list[set[str]] = [set() for _ in range(workers)]
    full_tors = [
        node
        for node in topology.nodes_with_role(NodeRole.TOR)
        if node.cluster == full_cluster
    ]
    for i, tor in enumerate(full_tors):
        target = partitions[i % workers]
        target.add(tor.name)
        for neighbor in topology.neighbors(tor.name):
            if topology.node(neighbor).role is NodeRole.SERVER:
                target.add(neighbor)
    spread_switches = [
        node
        for node in topology.nodes
        if node.role is NodeRole.CORE
        or (node.role is NodeRole.CLUSTER and node.cluster == full_cluster)
    ]
    for i, switch in enumerate(spread_switches):
        partitions[i % workers].add(switch.name)
    approx_clusters = [c for c in cluster_ids if c != full_cluster]
    for i, cluster in enumerate(approx_clusters):
        target = partitions[i % workers]
        for node in topology.cluster_nodes(cluster):
            target.add(node.name)
    assigned = set().union(*partitions) if partitions else set()
    leftovers = [node.name for node in topology.nodes if node.name not in assigned]
    for i, name in enumerate(leftovers):
        partitions[i % workers].add(name)
    return partitions


def owner_map(partitions: list[set[str]]) -> dict[str, int]:
    """node name -> worker index for a partition list."""
    owner: dict[str, int] = {}
    for index, nodes in enumerate(partitions):
        for name in nodes:
            owner[name] = index
    return owner


def cross_partition_links(topology: Topology, partitions: list[set[str]]) -> int:
    """Count links whose endpoints live in different partitions.

    This is the synchronization surface of a PDES partitioning: every
    cross-partition link forces null-message/window traffic.
    """
    owner: dict[str, int] = {}
    for i, part in enumerate(partitions):
        for name in part:
            owner[name] = i
    return sum(1 for link in topology.links if owner[link.a] != owner[link.b])
