"""ECMP routing tables.

The paper's evaluation uses "TCP New Reno and ECMP" (Section 6).  ECMP
(equal-cost multi-path) forwards each flow over one of the shortest
paths to the destination, chosen by a deterministic hash of the flow
identifier so that all packets of a flow take the same path (avoiding
reordering).

:class:`EcmpRouting` precomputes, for every (node, destination) pair,
the set of next hops that lie on some shortest path, via one BFS per
destination.  At forwarding time the next hop is
``nexthops[flow_hash % len(nexthops)]``.

The paper also notes (Section 4.2) that ECMP path choice is
deterministic given the header, which is what lets the approximated
cluster compute "the ToR, Cluster, and Core switches that the packet
would pass through" as model features without simulating the fabric —
:meth:`EcmpRouting.path` provides exactly that.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.topology.graph import Topology

#: Multiplier/increment of a splitmix-style integer hash; chosen for
#: good avalanche behaviour on small integers.
_HASH_MULT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def name_key(name: str) -> int:
    """Stable small-integer encoding of a node name for hashing.

    Needed because :func:`ecmp_hash` consumes integers and Python's
    ``hash`` of strings is randomized per process.
    """
    value = 0
    for ch in name.encode("utf-8"):
        value = (value * 131 + ch) & _MASK64
    return value


def ecmp_hash(*components: int) -> int:
    """Deterministic, platform-stable hash of flow identifier components.

    Python's builtin ``hash`` is randomized per process; this one is
    stable across runs, which determinism of experiments requires.
    """
    state = 0x243F6A8885A308D3
    for component in components:
        state = (state ^ (component & _MASK64)) * _HASH_MULT & _MASK64
        state ^= state >> 31
    return state


class NoRouteError(KeyError):
    """No live route exists between two nodes.

    Subclasses :class:`KeyError` so pre-existing callers that caught the
    bare ``KeyError`` keep working.
    """

    def __init__(self, node: str, dst: str) -> None:
        super().__init__(f"no route from {node!r} to {dst!r}")
        self.node = node
        self.dst = dst

    def __str__(self) -> str:  # KeyError quotes its message otherwise
        return self.args[0]


@dataclass(frozen=True)
class RoutingConfig:
    """Which forwarding policy a scenario uses, and its knobs.

    ``policy`` is one of ``"ecmp"``, ``"flowlet"`` or ``"adaptive"``;
    ``flowlet_gap_s`` is the inter-packet idle gap after which a flowlet
    switch is allowed to re-hash a flow onto a new path.
    """

    policy: str = "ecmp"
    flowlet_gap_s: float = 50e-6

    def __post_init__(self) -> None:
        if self.policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.policy!r}; "
                f"expected one of {sorted(ROUTING_POLICIES)}"
            )
        if self.flowlet_gap_s <= 0:
            raise ValueError("flowlet_gap_s must be positive")

    @classmethod
    def from_dict(cls, raw: object) -> "RoutingConfig":
        """Accept ``"flowlet"`` shorthand or ``{"policy": ..., ...}``."""
        if isinstance(raw, RoutingConfig):
            return raw
        if isinstance(raw, str):
            return cls(policy=raw)
        if isinstance(raw, dict):
            unknown = set(raw) - {"policy", "flowlet_gap_s"}
            if unknown:
                raise ValueError(f"unknown routing keys: {sorted(unknown)}")
            return cls(**raw)
        raise TypeError(f"routing must be a policy name or dict, got {type(raw).__name__}")


class PortLoad(Protocol):
    """Callable giving the queued bytes on the port toward a neighbor."""

    def __call__(self, neighbor: str) -> int: ...


class EcmpRouting:
    """Precomputed ECMP next-hop tables for a topology.

    Next-hop lists are sorted by node name so the table is independent
    of graph insertion order.

    This class doubles as the ``RoutingPolicy`` seam: subclasses
    override :meth:`select_next_hop` (the per-packet forwarding
    decision) while the table machinery, failure handling
    (:meth:`set_link_state`) and the canonical :meth:`path` query stay
    shared.  ``Switch.receive`` forwards via :meth:`select_next_hop`;
    feature extractors and the flowsim path charger consume
    :meth:`path`, which names the policy's canonical path for a flow.
    """

    #: Policy name surfaced in structured errors and manifests.
    policy = "ecmp"

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        # _nexthops[dst][node] -> sorted list of neighbor names on
        # shortest paths from node to dst.
        self._nexthops: dict[str, dict[str, list[str]]] = {}
        self._distance: dict[str, dict[str, int]] = {}
        #: Links currently failed, as frozensets of the two endpoints.
        self._failed: set[frozenset[str]] = set()
        #: How many times the tables were recomputed after a topology
        #: state change (failure injection observability).
        self.table_rebuilds = 0
        self._rebuild(initial=True)

    # ------------------------------------------------------------------
    # Table construction and link state
    # ------------------------------------------------------------------
    def _rebuild(self, initial: bool = False) -> None:
        topology = self.topology
        # One adjacency snapshot for all destinations: neighbors() builds
        # a fresh list per call, which dominates table construction on
        # large fabrics (one BFS per destination touches every node).
        adjacency = {
            node.name: [
                neighbor
                for neighbor in topology.neighbors(node.name)
                if frozenset((node.name, neighbor)) not in self._failed
            ]
            for node in topology.nodes
        }
        self._nexthops.clear()
        self._distance.clear()
        for node in topology.nodes:
            self._compute_for_destination(node.name, adjacency)
        if not initial:
            self.table_rebuilds += 1

    def set_link_state(self, a: str, b: str, up: bool) -> bool:
        """Mark the ``a``–``b`` link up or down and recompute the tables.

        Returns ``True`` when the state actually changed (and a rebuild
        happened); re-failing a dead link or re-raising a live one is a
        no-op.  Raises :class:`ValueError` when the topology has no such
        link, so failure specs with typos fail loudly at injection time.
        """
        try:
            self.topology.link_between(a, b)
        except KeyError:
            raise ValueError(
                f"no link between {a!r} and {b!r} in topology"
            ) from None
        key = frozenset((a, b))
        if up:
            if key not in self._failed:
                return False
            self._failed.discard(key)
        else:
            if key in self._failed:
                return False
            self._failed.add(key)
        self._rebuild()
        return True

    @property
    def failed_links(self) -> list[tuple[str, str]]:
        """Currently-failed links as sorted endpoint pairs."""
        return sorted(tuple(sorted(key)) for key in self._failed)

    def _compute_for_destination(
        self, dst: str, adjacency: dict[str, list[str]]
    ) -> None:
        # Next hops fall out of the BFS itself: scanning edge
        # (current, neighbor) with dist[neighbor] == dist[current] + 1
        # proves ``current`` lies on a shortest path from ``neighbor``
        # to ``dst``, and every edge is scanned from both sides — so no
        # second all-nodes pass is needed.
        dist: dict[str, int] = {dst: 0}
        nexthops: dict[str, list[str]] = {}
        queue: deque[str] = deque([dst])
        while queue:
            current = queue.popleft()
            next_d = dist[current] + 1
            for neighbor in adjacency[current]:
                d = dist.get(neighbor)
                if d is None:
                    dist[neighbor] = next_d
                    queue.append(neighbor)
                    nexthops[neighbor] = [current]
                elif d == next_d:
                    nexthops[neighbor].append(current)
        for hops in nexthops.values():
            hops.sort()
        self._nexthops[dst] = nexthops
        self._distance[dst] = dist

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def next_hops(self, node: str, dst: str) -> list[str]:
        """All equal-cost next hops from ``node`` toward ``dst``."""
        if node == dst:
            return []
        try:
            return self._nexthops[dst][node]
        except KeyError:
            raise NoRouteError(node, dst) from None

    def next_hop(self, node: str, dst: str, flow_hash: int) -> str:
        """The ECMP-selected next hop for a flow at ``node``."""
        hops = self.next_hops(node, dst)
        if not hops:
            raise NoRouteError(node, dst)
        return hops[flow_hash % len(hops)]

    def select_next_hop(
        self,
        node: str,
        dst: str,
        flow_hash: int,
        now: float = 0.0,
        port_load: Optional[Callable[[str], int]] = None,
    ) -> str:
        """Per-packet forwarding decision — the ``RoutingPolicy`` seam.

        ECMP ignores time and load, so the base implementation delegates
        to :meth:`next_hop`; subclasses use ``now`` (flowlet gaps) or
        ``port_load`` (adaptive load balancing).
        """
        return self.next_hop(node, dst, flow_hash)

    def distance(self, src: str, dst: str) -> int:
        """Hop count of the shortest path."""
        return self._distance[dst][src]

    def path(self, src: str, dst: str, flow_hash: int) -> list[str]:
        """The full ECMP path a flow takes, including both endpoints.

        Deterministic given the flow hash — used by the approximated
        cluster's feature extractor to name the switches a packet
        *would* traverse (paper Section 4.2).
        """
        path = [src]
        current = src
        while current != dst:
            current = self.next_hop(current, dst, flow_hash)
            path.append(current)
            if len(path) > self.topology.node_count:
                raise RuntimeError(f"routing loop from {src!r} to {dst!r}")
        return path


class FlowletRouting(EcmpRouting):
    """Flowlet switching: re-hash a flow after an idle gap.

    A flow's packets follow the ECMP hash until the inter-packet gap at
    a switch exceeds ``gap_s``; the next burst (flowlet) is then salted
    onto a possibly different equal-cost path.  Bursts inside a flowlet
    stay on one path, so reordering is confined to gaps larger than the
    typical RTT (CONGA-style, per the AI-factory blueprint).

    The canonical :meth:`path` (consumed by feature extraction and the
    fluid tier) is the salt-0 path — i.e. the path of the flow's first
    flowlet — which equals the ECMP path by construction.
    """

    policy = "flowlet"

    def __init__(self, topology: Topology, gap_s: float = 50e-6) -> None:
        super().__init__(topology)
        if gap_s <= 0:
            raise ValueError("gap_s must be positive")
        self.gap_s = gap_s
        # (node, flow_hash) -> [last_seen_time, salt]
        self._flowlets: dict[tuple[str, int], list] = {}
        self.flowlet_switches = 0

    def select_next_hop(
        self,
        node: str,
        dst: str,
        flow_hash: int,
        now: float = 0.0,
        port_load: Optional[Callable[[str], int]] = None,
    ) -> str:
        hops = self.next_hops(node, dst)
        if not hops:
            raise NoRouteError(node, dst)
        state = self._flowlets.get((node, flow_hash))
        if state is None:
            state = [now, 0]
            self._flowlets[(node, flow_hash)] = state
        else:
            if now - state[0] > self.gap_s:
                state[1] += 1
                self.flowlet_switches += 1
            state[0] = now
        salt = state[1]
        live_hash = ecmp_hash(flow_hash, salt) if salt else flow_hash
        return hops[live_hash % len(hops)]


class AdaptiveRouting(EcmpRouting):
    """Per-port-load adaptive routing: pick the least-queued next hop.

    Among the equal-cost next hops, forward onto the one whose output
    port currently holds the fewest queued bytes; ties break by the flow
    hash over the tied subset.  With all queues empty (the canonical /
    zero-load case) every candidate ties, so the decision — and hence
    :meth:`path`, consumed by feature extraction and the fluid tier —
    reduces to the ECMP hash pick.
    """

    policy = "adaptive"

    def select_next_hop(
        self,
        node: str,
        dst: str,
        flow_hash: int,
        now: float = 0.0,
        port_load: Optional[Callable[[str], int]] = None,
    ) -> str:
        hops = self.next_hops(node, dst)
        if not hops:
            raise NoRouteError(node, dst)
        if port_load is None or len(hops) == 1:
            return hops[flow_hash % len(hops)]
        loads = [port_load(hop) for hop in hops]
        best = min(loads)
        tied = [hop for hop, load in zip(hops, loads) if load == best]
        return tied[flow_hash % len(tied)]


#: Policy name -> constructor accepting ``(topology, config)``.
ROUTING_POLICIES: dict[str, Callable[[Topology, "RoutingConfig"], EcmpRouting]] = {
    "ecmp": lambda topology, config: EcmpRouting(topology),
    "flowlet": lambda topology, config: FlowletRouting(topology, gap_s=config.flowlet_gap_s),
    "adaptive": lambda topology, config: AdaptiveRouting(topology),
}


def make_routing(topology: Topology, config: Optional[RoutingConfig] = None) -> EcmpRouting:
    """Build the routing policy a scenario asked for (default ECMP)."""
    if config is None:
        config = RoutingConfig()
    return ROUTING_POLICIES[config.policy](topology, config)
