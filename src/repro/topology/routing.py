"""ECMP routing tables.

The paper's evaluation uses "TCP New Reno and ECMP" (Section 6).  ECMP
(equal-cost multi-path) forwards each flow over one of the shortest
paths to the destination, chosen by a deterministic hash of the flow
identifier so that all packets of a flow take the same path (avoiding
reordering).

:class:`EcmpRouting` precomputes, for every (node, destination) pair,
the set of next hops that lie on some shortest path, via one BFS per
destination.  At forwarding time the next hop is
``nexthops[flow_hash % len(nexthops)]``.

The paper also notes (Section 4.2) that ECMP path choice is
deterministic given the header, which is what lets the approximated
cluster compute "the ToR, Cluster, and Core switches that the packet
would pass through" as model features without simulating the fabric —
:meth:`EcmpRouting.path` provides exactly that.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.topology.graph import Topology

#: Multiplier/increment of a splitmix-style integer hash; chosen for
#: good avalanche behaviour on small integers.
_HASH_MULT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def name_key(name: str) -> int:
    """Stable small-integer encoding of a node name for hashing.

    Needed because :func:`ecmp_hash` consumes integers and Python's
    ``hash`` of strings is randomized per process.
    """
    value = 0
    for ch in name.encode("utf-8"):
        value = (value * 131 + ch) & _MASK64
    return value


def ecmp_hash(*components: int) -> int:
    """Deterministic, platform-stable hash of flow identifier components.

    Python's builtin ``hash`` is randomized per process; this one is
    stable across runs, which determinism of experiments requires.
    """
    state = 0x243F6A8885A308D3
    for component in components:
        state = (state ^ (component & _MASK64)) * _HASH_MULT & _MASK64
        state ^= state >> 31
    return state


class EcmpRouting:
    """Precomputed ECMP next-hop tables for a topology.

    Next-hop lists are sorted by node name so the table is independent
    of graph insertion order.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        # _nexthops[dst][node] -> sorted list of neighbor names on
        # shortest paths from node to dst.
        self._nexthops: dict[str, dict[str, list[str]]] = {}
        self._distance: dict[str, dict[str, int]] = {}
        # One adjacency snapshot for all destinations: neighbors() builds
        # a fresh list per call, which dominates table construction on
        # large fabrics (one BFS per destination touches every node).
        adjacency = {node.name: topology.neighbors(node.name) for node in topology.nodes}
        for node in topology.nodes:
            self._compute_for_destination(node.name, adjacency)

    def _compute_for_destination(
        self, dst: str, adjacency: dict[str, list[str]]
    ) -> None:
        # Next hops fall out of the BFS itself: scanning edge
        # (current, neighbor) with dist[neighbor] == dist[current] + 1
        # proves ``current`` lies on a shortest path from ``neighbor``
        # to ``dst``, and every edge is scanned from both sides — so no
        # second all-nodes pass is needed.
        dist: dict[str, int] = {dst: 0}
        nexthops: dict[str, list[str]] = {}
        queue: deque[str] = deque([dst])
        while queue:
            current = queue.popleft()
            next_d = dist[current] + 1
            for neighbor in adjacency[current]:
                d = dist.get(neighbor)
                if d is None:
                    dist[neighbor] = next_d
                    queue.append(neighbor)
                    nexthops[neighbor] = [current]
                elif d == next_d:
                    nexthops[neighbor].append(current)
        for hops in nexthops.values():
            hops.sort()
        self._nexthops[dst] = nexthops
        self._distance[dst] = dist

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def next_hops(self, node: str, dst: str) -> list[str]:
        """All equal-cost next hops from ``node`` toward ``dst``."""
        if node == dst:
            return []
        try:
            return self._nexthops[dst][node]
        except KeyError:
            raise KeyError(f"no route from {node!r} to {dst!r}") from None

    def next_hop(self, node: str, dst: str, flow_hash: int) -> str:
        """The ECMP-selected next hop for a flow at ``node``."""
        hops = self.next_hops(node, dst)
        if not hops:
            raise KeyError(f"no route from {node!r} to {dst!r}")
        return hops[flow_hash % len(hops)]

    def distance(self, src: str, dst: str) -> int:
        """Hop count of the shortest path."""
        return self._distance[dst][src]

    def path(self, src: str, dst: str, flow_hash: int) -> list[str]:
        """The full ECMP path a flow takes, including both endpoints.

        Deterministic given the flow hash — used by the approximated
        cluster's feature extractor to name the switches a packet
        *would* traverse (paper Section 4.2).
        """
        path = [src]
        current = src
        while current != dst:
            current = self.next_hop(current, dst, flow_hash)
            path.append(current)
            if len(path) > self.topology.node_count:
                raise RuntimeError(f"routing loop from {src!r} to {dst!r}")
        return path
