"""Workload generation.

The paper's traffic is "drawn from a well-known trace of datacenter web
traffic [3]" — the DCTCP web-search workload (Alizadeh et al.,
SIGCOMM 2010).  We embed the standard digitization of that flow-size
CDF (:data:`WEB_SEARCH_CDF`), Poisson flow arrivals calibrated to a
target offered load, and the traffic-matrix policies experiments need
(uniform any-to-any, permutation, incast, intra-cluster mixes).
"""

from repro.traffic.distributions import (
    DATA_MINING_CDF,
    EmpiricalSizeDistribution,
    UNIFORM_SMALL_CDF,
    WEB_SEARCH_CDF,
    web_search_sizes,
)
from repro.traffic.arrivals import PoissonArrivals, arrival_rate_for_load
from repro.traffic.matrix import (
    IncastMatrix,
    PermutationMatrix,
    TrafficMatrix,
    UniformMatrix,
)
from repro.traffic.apps import FlowRecord, TrafficGenerator
from repro.traffic.partition_aggregate import PartitionAggregateGenerator, QueryRecord

__all__ = [
    "DATA_MINING_CDF",
    "EmpiricalSizeDistribution",
    "FlowRecord",
    "IncastMatrix",
    "PartitionAggregateGenerator",
    "QueryRecord",
    "PermutationMatrix",
    "PoissonArrivals",
    "TrafficGenerator",
    "TrafficMatrix",
    "UNIFORM_SMALL_CDF",
    "UniformMatrix",
    "WEB_SEARCH_CDF",
    "arrival_rate_for_load",
    "web_search_sizes",
]
