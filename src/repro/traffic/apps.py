"""The application layer: flow generation over live TCP.

:class:`TrafficGenerator` is the DES entity that drives load: it
samples flow arrivals from a Poisson process, picks endpoints from a
traffic matrix and sizes from an empirical distribution, opens TCP
flows, and records flow completion times.

``flow_filter`` is the hook the hybrid simulator uses to elide traffic
whose endpoints are both inside approximated clusters — the paper's
second source of speedup: "traffic between servers in approximated
clusters is entirely omitted from the flow schedule" (Section 6.2).
Elided flows are still *counted* so experiments can report how much
work was skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.des.entities import Entity
from repro.des.kernel import Simulator
from repro.des.monitors import Monitor
from repro.net.network import Network
from repro.traffic.arrivals import PoissonArrivals
from repro.traffic.distributions import EmpiricalSizeDistribution
from repro.traffic.matrix import TrafficMatrix


@dataclass
class FlowRecord:
    """Bookkeeping for one generated flow.

    ``flow_id`` is the launch-order index — the identity shared by the
    flight recorder, the PDES flow schedule, and the cascade's
    scoring-window flow lists (``-1`` only for hand-built records).
    """

    src: str
    dst: str
    size_bytes: int
    start_time: float
    completion_time: Optional[float] = None
    flow_id: int = -1

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time, or None while in flight."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.start_time


class TrafficGenerator(Entity):
    """Poisson open-loop flow generator.

    Parameters
    ----------
    sim, network:
        The simulation and the network to load.
    matrix:
        Endpoint selection policy.
    sizes:
        Flow-size distribution.
    arrivals:
        Network-wide arrival process.
    flow_filter:
        Optional predicate ``(src, dst) -> bool``; flows for which it
        returns False are skipped (but counted in ``flows_elided``).
    flow_dispatch:
        Optional hook ``(src, dst, size_bytes) -> bool`` consulted for
        every flow the filter keeps.  Returning True claims the flow
        for an external engine (the cascade's fluid tier); it is
        counted in ``flows_diverted`` and no packet flow is opened.
        Returning False leaves the flow on the packet path.  The hook
        runs *after* all randomness is drawn, so diverting flows never
        perturbs the seeded workload.
    max_flows:
        Stop generating after this many arrivals (None = unbounded).
    tracer:
        Optional :class:`~repro.obs.trace.FlightRecorder`.  Every
        launched flow gets a ``flow.admit`` record (and a registered
        ``(src, src_port)`` lookup key so hot paths can attribute its
        packets) plus a ``flow.complete`` record with its FCT.  The
        flow id is the launch-order index — the same identity the PDES
        flow schedule uses.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        matrix: TrafficMatrix,
        sizes: EmpiricalSizeDistribution,
        arrivals: PoissonArrivals,
        flow_filter: Optional[Callable[[str, str], bool]] = None,
        flow_dispatch: Optional[Callable[[str, str, int], bool]] = None,
        max_flows: Optional[int] = None,
        tracer=None,
    ) -> None:
        super().__init__(sim, "traffic-generator")
        self.network = network
        self.matrix = matrix
        self.sizes = sizes
        self.arrivals = arrivals
        self.flow_filter = flow_filter
        self.flow_dispatch = flow_dispatch
        self.max_flows = max_flows
        self._tracer = tracer
        #: Optional tap called with the :class:`FlowRecord` of every
        #: completed packet flow (the cascade's FCT windows).
        self.on_flow_complete: Optional[Callable[[FlowRecord], None]] = None
        #: The collective workload launching flows through this
        #: generator, when the experiment configured one (set by
        #: :func:`repro.core.pipeline.make_generator`).
        self.collective = None

        self.fct_monitor = Monitor("fct")
        self.flows: list[FlowRecord] = []
        self.flows_started = 0
        self.flows_completed = 0
        self.flows_elided = 0
        self.flows_diverted = 0
        self._arrival_rng = sim.rng.stream("traffic.arrivals")
        self._pair_rng = sim.rng.stream("traffic.pairs")
        self._size_rng = sim.rng.stream("traffic.sizes")
        self._started = False

    def start(self) -> None:
        """Arm the first arrival (idempotent)."""
        if not self._started:
            self._started = True
            self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        if self.max_flows is not None:
            # Diverted flows count against the cap too: a flow claimed
            # by the fluid tier is still one arrival, and omitting it
            # made cascade runs overshoot the requested flow count.
            generated = self.flows_started + self.flows_elided + self.flows_diverted
            if generated >= self.max_flows:
                return
        gap = self.arrivals.next_gap(self._arrival_rng)
        self.schedule(gap, self._on_arrival)

    def _on_arrival(self) -> None:
        # Draw all randomness unconditionally so that the workload is
        # IDENTICAL whether or not flows get elided — a requirement for
        # fair full-vs-hybrid comparisons (same seed, same flows).
        src, dst = self.matrix.sample_pair(self._pair_rng)
        size = int(self.sizes.sample(self._size_rng))
        if self.flow_filter is not None and not self.flow_filter(src, dst):
            self.flows_elided += 1
        elif self.flow_dispatch is not None and self.flow_dispatch(
            src, dst, max(size, 1)
        ):
            self.flows_diverted += 1
        else:
            self.launch_flow(src, dst, max(size, 1))
        # Scheduled after the counters update so max_flows is exact;
        # the gap comes from an independent named stream, so ordering
        # relative to the pair/size draws cannot perturb the workload.
        self._schedule_next_arrival()

    def launch_flow(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        src_port: Optional[int] = None,
        on_complete: Optional[Callable[[FlowRecord], None]] = None,
    ) -> FlowRecord:
        """Open one packet flow now; returns its record.

        Public so tier adapters can relaunch handed-off flows (with
        their remaining bytes) through the exact same TCP path and
        bookkeeping as generated flows.  ``src_port`` pins the source
        port (tier handoffs reuse the port reserved at diversion time
        so the packet flow hashes onto the path the fluid tier already
        charged); ``on_complete`` is a per-flow completion tap invoked
        after the shared bookkeeping (collective chunk gating uses it).
        """
        flow_id = len(self.flows)
        record = FlowRecord(
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            start_time=self.now,
            flow_id=flow_id,
        )
        self.flows.append(record)
        self.flows_started += 1
        src_host = self.network.host(src)
        dst_host = self.network.host(dst)
        trace = None
        if self._tracer is not None:
            trace = self._tracer.trace_for_flow(flow_id)

        flow_tap = on_complete

        def handle_complete(fct: float, record: FlowRecord = record, trace=trace) -> None:
            record.completion_time = self.now
            self.flows_completed += 1
            self.fct_monitor.record(fct)
            if trace is not None:
                self._tracer.event(
                    "flow.complete", trace=trace, fct=fct, size=record.size_bytes
                )
            if self.on_flow_complete is not None:
                self.on_flow_complete(record)
            if flow_tap is not None:
                flow_tap(record)

        sender = src_host.open_flow(
            dst_host, size_bytes, on_complete=handle_complete, src_port=src_port
        )
        if trace is not None:
            self._tracer.register_flow(flow_id, key=(src, sender.src_port))
            self._tracer.event(
                "flow.admit", trace=trace, src=src, dst=dst, size=size_bytes
            )
        sender.start()
        return record

    # ------------------------------------------------------------------
    @property
    def flows_in_flight(self) -> int:
        """Flows started but not yet completed."""
        return self.flows_started - self.flows_completed

    def completed_fcts(self) -> list[float]:
        """FCTs of all completed flows (seconds)."""
        return [r.fct for r in self.flows if r.fct is not None]

    def goodput_bytes(self) -> int:
        """Total bytes of completed flows."""
        return sum(r.size_bytes for r in self.flows if r.completion_time is not None)
