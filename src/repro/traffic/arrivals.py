"""Flow arrival processes and load calibration.

Figure 1 "maintain[s] oversubscription and average load" while scaling
the topology; :func:`arrival_rate_for_load` is the calibration that
makes that possible: given a target fraction of server access-link
capacity and the workload's mean flow size, it returns the network-wide
Poisson arrival rate.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


def arrival_rate_for_load(
    load: float, num_servers: int, link_rate_bps: float, mean_flow_bytes: float
) -> float:
    """Network-wide flow arrival rate (flows/s) for a target load.

    ``load`` is the average fraction of each server's access-link
    capacity consumed by traffic it *sources*:

    ``rate = load * num_servers * link_rate / (mean_flow_size * 8)``
    """
    if not 0.0 < load:
        raise ValueError(f"load must be positive, got {load}")
    if mean_flow_bytes <= 0:
        raise ValueError(f"mean_flow_bytes must be positive, got {mean_flow_bytes}")
    return load * num_servers * link_rate_bps / (mean_flow_bytes * 8.0)


class PoissonArrivals:
    """Memoryless flow inter-arrival sampler.

    Examples
    --------
    >>> import numpy as np
    >>> arrivals = PoissonArrivals(rate_per_s=100.0)
    >>> gap = arrivals.next_gap(np.random.default_rng(0))
    >>> gap > 0
    True
    """

    def __init__(self, rate_per_s: float) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be positive, got {rate_per_s}")
        self.rate_per_s = rate_per_s

    def next_gap(self, rng: np.random.Generator) -> float:
        """Sample one exponential inter-arrival gap in seconds."""
        return float(rng.exponential(1.0 / self.rate_per_s))

    def arrival_times(self, rng: np.random.Generator, until: float) -> Iterator[float]:
        """Yield arrival instants in (0, until)."""
        t = 0.0
        while True:
            t += self.next_gap(rng)
            if t >= until:
                return
            yield t
