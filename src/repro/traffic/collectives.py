"""AI-training collective workloads: gated AllReduce over live TCP.

The paper validates its approximation only under smooth Poisson
web/cache/Hadoop traffic; large-model training traffic is the opposite
— bursty, synchronized, and *self-clocked*: every rank's next send is
gated on receipt of the previous chunk, so congestion anywhere in the
ring stalls the whole iteration.  :class:`CollectiveWorkload` models
that structure directly on top of the repo's TCP flows:

* ranks are servers, partitioned into ``dp_groups`` data-parallel
  groups (deterministic name order);
* each iteration runs, per group: an optional **TP** phase (adjacent
  rank pairs exchange ``tp_bytes`` both ways), an optional **PP**
  phase (a gated chain send of ``pp_bytes`` from rank *i* to *i+1*),
  then the **DP AllReduce** of ``chunk_bytes`` chunks — ring
  (``2*(N-1)`` gated steps per rank) or tree (gated reduce-up then
  broadcast-down over a binary tree);
* a group barrier, then a compute gap ``compute_s * (1 + jitter * u)``
  with ``u`` drawn from the seeded ``collective.compute`` stream —
  drawn unconditionally so metrics/tracing cannot perturb the run.

Chunk flows launch through :meth:`TrafficGenerator.launch_flow`
directly, bypassing both ``flow_filter`` and ``flow_dispatch``:
collective traffic is latency-critical barrier traffic and must stay
on the packet path in every tier (eliding or fluid-diverting a gated
chunk would deadlock the ring).  Background mice for tail-latency
probes are simply the generator's ordinary Poisson arrivals at the
experiment's configured ``load``, running alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.des.entities import Entity
from repro.des.kernel import Simulator
from repro.traffic.apps import FlowRecord, TrafficGenerator

_ALGORITHMS = ("ring", "tree")

_CONFIG_KEYS = {
    "algorithm",
    "ranks",
    "dp_groups",
    "chunk_bytes",
    "rounds",
    "compute_s",
    "compute_jitter",
    "tp_bytes",
    "pp_bytes",
}


@dataclass(frozen=True)
class CollectiveConfig:
    """Shape of one training workload.

    Attributes
    ----------
    algorithm:
        AllReduce schedule: ``"ring"`` or ``"tree"``.
    ranks:
        Participating servers (first N in name order); ``None`` = all.
    dp_groups:
        Data-parallel groups the ranks are partitioned into; each group
        runs its own AllReduce.
    chunk_bytes:
        Bytes per gated AllReduce chunk send.
    rounds:
        Training iterations per group (the run may end mid-iteration
        when ``duration_s`` is shorter than the workload).
    compute_s, compute_jitter:
        Mean compute-phase gap between iterations and its uniform
        jitter fraction (seeded ``collective.compute`` stream).
    tp_bytes, pp_bytes:
        Per-iteration tensor-parallel pair-exchange and
        pipeline-parallel chain-send sizes (0 disables the phase).
    """

    algorithm: str = "ring"
    ranks: Optional[int] = None
    dp_groups: int = 1
    chunk_bytes: int = 262_144
    rounds: int = 1
    compute_s: float = 0.0
    compute_jitter: float = 0.0
    tp_bytes: int = 0
    pp_bytes: int = 0

    def __post_init__(self) -> None:
        if self.algorithm not in _ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {_ALGORITHMS}, got {self.algorithm!r}"
            )
        if self.ranks is not None and self.ranks < 2:
            raise ValueError(f"ranks must be >= 2, got {self.ranks}")
        if self.dp_groups < 1:
            raise ValueError(f"dp_groups must be >= 1, got {self.dp_groups}")
        if self.chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {self.chunk_bytes}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.compute_s < 0:
            raise ValueError(f"compute_s must be >= 0, got {self.compute_s}")
        if self.compute_jitter < 0:
            raise ValueError(f"compute_jitter must be >= 0, got {self.compute_jitter}")
        if self.tp_bytes < 0 or self.pp_bytes < 0:
            raise ValueError("tp_bytes and pp_bytes must be >= 0")

    @classmethod
    def from_dict(cls, raw: object) -> "CollectiveConfig":
        if isinstance(raw, CollectiveConfig):
            return raw
        if not isinstance(raw, dict):
            raise TypeError(f"collective must be a dict, got {type(raw).__name__}")
        unknown = set(raw) - _CONFIG_KEYS
        if unknown:
            raise ValueError(f"unknown collective keys: {sorted(unknown)}")
        return cls(**raw)


class _GroupState:
    """Per-DP-group iteration state machine bookkeeping."""

    __slots__ = ("members", "rounds_done", "finished", "pending", "next_send", "received")

    def __init__(self, members: list[str]) -> None:
        self.members = members
        self.rounds_done = 0
        self.finished = False
        # Phase-local counters, reset by each phase driver.
        self.pending = 0
        self.next_send: list[int] = []
        self.received: list[int] = []


class CollectiveWorkload(Entity):
    """Drives gated collective phases over a traffic generator.

    Self-starting: construction schedules the first iteration at the
    current sim time, so pipeline drivers need no extra call.  All
    launches go through ``generator.launch_flow`` so flows share the
    generator's bookkeeping (FCTs, tracing, flow ids).
    """

    def __init__(
        self,
        sim: Simulator,
        generator: TrafficGenerator,
        config: CollectiveConfig,
    ) -> None:
        super().__init__(sim, "collective-workload")
        self.generator = generator
        self.config = config
        servers = sorted(node.name for node in generator.network.topology.servers())
        count = config.ranks if config.ranks is not None else len(servers)
        if count > len(servers):
            raise ValueError(
                f"collective needs {count} ranks but topology has "
                f"{len(servers)} servers"
            )
        if count < 2:
            raise ValueError(f"collective needs >= 2 ranks, got {count}")
        if config.dp_groups > count // 2:
            raise ValueError(
                f"{config.dp_groups} dp_groups over {count} ranks leaves "
                "groups of < 2 ranks"
            )
        ranks = servers[:count]
        # Contiguous partition; remainder ranks join the last group.
        group_size = count // config.dp_groups
        self._groups: list[_GroupState] = []
        for g in range(config.dp_groups):
            lo = g * group_size
            hi = count if g == config.dp_groups - 1 else lo + group_size
            self._groups.append(_GroupState(ranks[lo:hi]))
        self.ranks = ranks
        self._compute_rng = sim.rng.stream("collective.compute")
        self.flows_launched = 0
        self.bytes_launched = 0
        self.chunks_completed = 0
        for index in range(len(self._groups)):
            self.schedule(0.0, self._iteration_starter(index))

    # ------------------------------------------------------------------
    # Launch helper
    # ------------------------------------------------------------------
    def _send(
        self, src: str, dst: str, size_bytes: int, on_done: Callable[[FlowRecord], None]
    ) -> None:
        self.flows_launched += 1
        self.bytes_launched += size_bytes

        def complete(record: FlowRecord) -> None:
            self.chunks_completed += 1
            on_done(record)

        self.generator.launch_flow(src, dst, size_bytes, on_complete=complete)

    # ------------------------------------------------------------------
    # Iteration driver
    # ------------------------------------------------------------------
    def _iteration_starter(self, index: int) -> Callable[[], None]:
        def start() -> None:
            self._start_iteration(index)

        return start

    def _start_iteration(self, index: int) -> None:
        group = self._groups[index]
        if group.rounds_done >= self.config.rounds:
            group.finished = True
            return
        self._tp_phase(index)

    def _tp_phase(self, index: int) -> None:
        group = self._groups[index]
        members = group.members
        if self.config.tp_bytes <= 0 or len(members) < 2:
            self._pp_phase(index)
            return
        pairs = list(zip(members[0::2], members[1::2]))
        group.pending = 2 * len(pairs)

        def done(_record: FlowRecord) -> None:
            group.pending -= 1
            if group.pending == 0:
                self._pp_phase(index)

        for a, b in pairs:
            self._send(a, b, self.config.tp_bytes, done)
            self._send(b, a, self.config.tp_bytes, done)

    def _pp_phase(self, index: int) -> None:
        group = self._groups[index]
        members = group.members
        if self.config.pp_bytes <= 0 or len(members) < 2:
            self._allreduce_phase(index)
            return

        def send_stage(stage: int) -> None:
            if stage >= len(members) - 1:
                self._allreduce_phase(index)
                return
            self._send(
                members[stage],
                members[stage + 1],
                self.config.pp_bytes,
                lambda _record: send_stage(stage + 1),
            )

        send_stage(0)

    def _allreduce_phase(self, index: int) -> None:
        if self.config.algorithm == "tree":
            self._tree_allreduce(index)
        else:
            self._ring_allreduce(index)

    # ------------------------------------------------------------------
    # Ring AllReduce: each rank sends 2*(N-1) chunks to its right
    # neighbor; send s is gated on having received chunk s-1 from the
    # left neighbor (the self-clocking that makes collectives bursty).
    # ------------------------------------------------------------------
    def _ring_allreduce(self, index: int) -> None:
        group = self._groups[index]
        members = group.members
        n = len(members)
        steps = 2 * (n - 1)
        group.next_send = [0] * n
        group.received = [-1] * n  # high-water mark of chunks received
        group.pending = n  # ranks yet to receive their final chunk

        def try_launch(rank_idx: int) -> None:
            step = group.next_send[rank_idx]
            # Send ``step`` is gated on receipt of chunk ``step - 1``
            # from the left neighbor (step 0 is ungated).  Concurrent
            # flows on the same path can complete out of order, so the
            # gate uses a high-water mark and every receipt retries.
            if step >= steps or group.received[rank_idx] < step - 1:
                return
            group.next_send[rank_idx] = step + 1
            self._send(
                members[rank_idx],
                members[(rank_idx + 1) % n],
                self.config.chunk_bytes,
                lambda _record, r=rank_idx, s=step: completed(r, s),
            )

        def completed(sender_idx: int, step: int) -> None:
            receiver = (sender_idx + 1) % n
            if step > group.received[receiver]:
                group.received[receiver] = step
            if step == steps - 1:
                group.pending -= 1
                if group.pending == 0:
                    self._finish_iteration(index)
                return
            try_launch(receiver)

        for rank_idx in range(n):
            try_launch(rank_idx)

    # ------------------------------------------------------------------
    # Tree AllReduce: gated reduce-up over a binary tree (a node sends
    # to its parent only after all its children arrived), then gated
    # broadcast-down (a node fans out only after its parent's chunk
    # arrived).
    # ------------------------------------------------------------------
    def _tree_allreduce(self, index: int) -> None:
        group = self._groups[index]
        members = group.members
        n = len(members)
        children = {i: [c for c in (2 * i + 1, 2 * i + 2) if c < n] for i in range(n)}
        waiting = {i: len(children[i]) for i in range(n)}

        def reduce_up(node: int) -> None:
            if node == 0:
                broadcast_down(0)
                return
            parent = (node - 1) // 2
            self._send(
                members[node],
                members[parent],
                self.config.chunk_bytes,
                lambda _record, p=parent: arrived(p),
            )

        def arrived(node: int) -> None:
            waiting[node] -= 1
            if waiting[node] == 0:
                reduce_up(node)

        def broadcast_down(node: int) -> None:
            kids = children[node]
            if not kids:
                group.pending -= 1
                if group.pending == 0:
                    self._finish_iteration(index)
                return
            for kid in kids:
                self._send(
                    members[node],
                    members[kid],
                    self.config.chunk_bytes,
                    lambda _record, k=kid: broadcast_down(k),
                )

        # Leaves of the broadcast phase are what terminate the
        # iteration; count them up front.
        group.pending = sum(1 for i in range(n) if not children[i])
        for i in range(n):
            if waiting[i] == 0 and i != 0:
                reduce_up(i)
        if waiting[0] == 0:
            # Degenerate 1-2 rank trees: root has all inputs already.
            broadcast_down(0)

    # ------------------------------------------------------------------
    def _finish_iteration(self, index: int) -> None:
        group = self._groups[index]
        group.rounds_done += 1
        # Drawn unconditionally — even with compute_s == 0 — so the
        # stream's consumption (and every later draw) is independent of
        # configuration details that should not perturb the workload.
        jitter = self._compute_rng.random()
        gap = self.config.compute_s * (1.0 + self.config.compute_jitter * jitter)
        self.schedule(max(gap, 0.0), self._iteration_starter(index))

    # ------------------------------------------------------------------
    @property
    def rounds_completed(self) -> int:
        """Fully completed iterations across all groups."""
        return sum(group.rounds_done for group in self._groups)

    @property
    def finished(self) -> bool:
        """All groups ran all configured rounds."""
        return all(group.finished or group.rounds_done >= self.config.rounds
                   for group in self._groups)

    def summary(self) -> dict:
        """Manifest-ready workload accounting."""
        return {
            "algorithm": self.config.algorithm,
            "ranks": len(self.ranks),
            "dp_groups": len(self._groups),
            "rounds_requested": self.config.rounds * len(self._groups),
            "rounds_completed": self.rounds_completed,
            "flows_launched": self.flows_launched,
            "bytes_launched": self.bytes_launched,
            "chunks_completed": self.chunks_completed,
        }
