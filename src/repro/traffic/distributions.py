"""Empirical flow-size distributions.

:data:`WEB_SEARCH_CDF` is the standard digitization of the web-search
workload measured in the DCTCP paper (Alizadeh et al., SIGCOMM 2010,
reference [3] of the paper being reproduced) — the same digitization
shipped with the pFabric/PIAS/Homa simulation artifacts.  Sizes are in
bytes (the original table is in 1460-byte packets).  The distribution
is heavy-tailed: >95% of flows are small queries/updates but >80% of
bytes come from multi-megabyte responses — the property that creates
the multi-timescale congestion regimes the paper's macro model tracks.

:data:`DATA_MINING_CDF` (the companion VL2/data-mining workload) and a
small uniform distribution are included for generality tests and
ablations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_PACKET_BYTES = 1460

#: (size_bytes, cumulative_probability) knots; piecewise-linear between.
WEB_SEARCH_CDF: tuple[tuple[float, float], ...] = tuple(
    (packets * _PACKET_BYTES, probability)
    for packets, probability in (
        (1, 0.0),
        (6, 0.15),
        (13, 0.2),
        (19, 0.3),
        (33, 0.4),
        (53, 0.53),
        (133, 0.6),
        (667, 0.7),
        (1333, 0.8),
        (3333, 0.9),
        (6667, 0.97),
        (20000, 1.0),
    )
)

#: VL2 / data-mining workload digitization (bytes).
DATA_MINING_CDF: tuple[tuple[float, float], ...] = tuple(
    (packets * _PACKET_BYTES, probability)
    for packets, probability in (
        (1, 0.0),
        (1, 0.5),
        (2, 0.6),
        (3, 0.7),
        (7, 0.8),
        (267, 0.9),
        (2107, 0.95),
        (66667, 0.99),
        (666667, 1.0),
    )
)

#: Light uniform distribution for fast unit tests (1..10 packets).
UNIFORM_SMALL_CDF: tuple[tuple[float, float], ...] = (
    (1 * _PACKET_BYTES, 0.0),
    (10 * _PACKET_BYTES, 1.0),
)


class EmpiricalSizeDistribution:
    """Inverse-transform sampler over a piecewise-linear CDF.

    Parameters
    ----------
    cdf:
        Sequence of (size, cumulative_probability) knots; sizes strictly
        increasing (ties allowed for atoms), probabilities nondecreasing,
        first probability 0.0 and last 1.0.
    """

    def __init__(self, cdf: Sequence[tuple[float, float]]) -> None:
        if len(cdf) < 2:
            raise ValueError("CDF needs at least two knots")
        sizes = np.array([size for size, _ in cdf], dtype=np.float64)
        probs = np.array([p for _, p in cdf], dtype=np.float64)
        if probs[0] != 0.0 or probs[-1] != 1.0:
            raise ValueError("CDF must start at probability 0 and end at 1")
        if np.any(np.diff(probs) < 0) or np.any(np.diff(sizes) < 0):
            raise ValueError("CDF knots must be nondecreasing")
        self._sizes = sizes
        self._probs = probs

    def sample(self, rng: np.random.Generator, n: int | None = None) -> np.ndarray | float:
        """Draw flow sizes in bytes (scalar if ``n`` is None)."""
        u = rng.random() if n is None else rng.random(n)
        result = np.interp(u, self._probs, self._sizes)
        if n is None:
            return float(max(result, 1.0))
        return np.maximum(result, 1.0)

    def mean(self) -> float:
        """Exact mean of the piecewise-linear distribution.

        Each linear CDF segment contributes a uniform chunk with mass
        ``dp`` and mean ``(size_i + size_{i+1}) / 2``; zero-mass
        segments (vertical jumps in size) contribute nothing.
        """
        sizes, probs = self._sizes, self._probs
        dp = np.diff(probs)
        mids = (sizes[:-1] + sizes[1:]) / 2.0
        return float(np.sum(dp * mids))

    def quantile(self, q: float) -> float:
        """Inverse CDF at probability ``q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return float(np.interp(q, self._probs, self._sizes))


def web_search_sizes() -> EmpiricalSizeDistribution:
    """The paper's workload: DCTCP web-search flow sizes."""
    return EmpiricalSizeDistribution(WEB_SEARCH_CDF)
