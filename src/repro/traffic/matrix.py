"""Traffic matrices: who talks to whom.

A :class:`TrafficMatrix` turns an abstract "a flow arrives" event into
a concrete (source, destination) server pair.  The evaluation uses
uniform any-to-any over the web-search workload; permutation and incast
matrices exercise the corner cases discussed in Section 2.1 (incast is
exactly the "pathological minimum window" scenario: enough simultaneous
connections that each fair share is below the minimum window).
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

import numpy as np

from repro.topology.graph import Topology


class TrafficMatrix(Protocol):
    """Source/destination selection policy."""

    def sample_pair(self, rng: np.random.Generator) -> tuple[str, str]:
        """Return (src_server, dst_server) names; src != dst."""
        ...  # pragma: no cover - protocol definition


class UniformMatrix:
    """Uniform any-to-any, with an optional intra-cluster bias.

    Parameters
    ----------
    topology:
        Provides the server list and cluster labels.
    intra_cluster_fraction:
        Probability that a flow's destination is drawn from the
        source's own cluster (when the cluster has other servers).
        ``None`` means no bias: destinations uniform over all other
        servers.  Production DC traffic exhibits strong rack/cluster
        locality, and the fraction also controls how much traffic
        crosses the approximation boundary.
    """

    def __init__(
        self, topology: Topology, intra_cluster_fraction: Optional[float] = None
    ) -> None:
        self.servers = [node.name for node in topology.servers()]
        if len(self.servers) < 2:
            raise ValueError("need at least two servers for traffic")
        if intra_cluster_fraction is not None and not 0.0 <= intra_cluster_fraction <= 1.0:
            raise ValueError("intra_cluster_fraction must be in [0, 1]")
        self.intra_cluster_fraction = intra_cluster_fraction
        self._by_cluster: dict[Optional[int], list[str]] = {}
        for node in topology.servers():
            self._by_cluster.setdefault(node.cluster, []).append(node.name)
        self._cluster_of = {node.name: node.cluster for node in topology.servers()}

    def sample_pair(self, rng: np.random.Generator) -> tuple[str, str]:
        """Uniform source; destination per the locality policy."""
        src = self.servers[rng.integers(len(self.servers))]
        candidates: Sequence[str] = self.servers
        if self.intra_cluster_fraction is not None:
            local = self._by_cluster[self._cluster_of[src]]
            if rng.random() < self.intra_cluster_fraction and len(local) > 1:
                candidates = local
        dst = src
        while dst == src:
            dst = candidates[rng.integers(len(candidates))]
        return src, dst


class PermutationMatrix:
    """A fixed random permutation: each server sends to one partner.

    The classic worst case for oversubscribed fabrics — no locality at
    all, every flow crosses the core.
    """

    def __init__(self, topology: Topology, rng: np.random.Generator) -> None:
        servers = [node.name for node in topology.servers()]
        if len(servers) < 2:
            raise ValueError("need at least two servers for traffic")
        self.servers = servers
        # Sample a derangement by rejection (expected ~e attempts).
        n = len(servers)
        while True:
            perm = rng.permutation(n)
            if not np.any(perm == np.arange(n)):
                break
        self._partner = {servers[i]: servers[perm[i]] for i in range(n)}

    def sample_pair(self, rng: np.random.Generator) -> tuple[str, str]:
        """Uniform source; its fixed partner as destination."""
        src = self.servers[rng.integers(len(self.servers))]
        return src, self._partner[src]


class IncastMatrix:
    """Many-to-one: all flows target a single sink server.

    Drives the pathological minimum-window regime of Section 2.1.
    """

    def __init__(self, topology: Topology, sink: Optional[str] = None) -> None:
        servers = [node.name for node in topology.servers()]
        if len(servers) < 2:
            raise ValueError("need at least two servers for traffic")
        self.sink = sink if sink is not None else servers[0]
        if self.sink not in servers:
            raise ValueError(f"sink {self.sink!r} is not a server")
        self.sources = [name for name in servers if name != self.sink]

    def sample_pair(self, rng: np.random.Generator) -> tuple[str, str]:
        """Uniform source among non-sinks; sink as destination."""
        src = self.sources[rng.integers(len(self.sources))]
        return src, self.sink
