"""Differential fidelity validation and runtime invariant checking.

The instrument the paper's claim rests on: does the hybrid agree with
full-fidelity simulation?  :func:`run_differential_pair` runs a
matched pair (same seed, topology, and workload) and scores the hybrid
side — K-S / Wasserstein-1 distribution distances on FCTs and region
latencies, drop-rate and throughput deltas, and a per-bucket
macro-state confusion matrix against ground-truth congestion regimes.
:class:`InvariantChecker` separately watches any simulation for
structural violations (causality, packet conservation, per-egress
FCFS, latency bounds) cheaply enough to stay on in tier-1 tests.
"""

from repro.validate.fidelity import (
    MACRO_STATE_NAMES,
    FidelityReport,
    compare_samples,
    macro_agreement,
    macro_timeline,
    rate_delta,
    render_report,
)
from repro.validate.harness import (
    DifferentialResult,
    ValidateConfig,
    build_report,
    run_differential_pair,
)
from repro.validate.invariants import (
    INVARIANTS,
    InvariantChecker,
    InvariantViolation,
)
from repro.validate.windows import RegionWindows, SlidingWindow, score_region

__all__ = [
    "INVARIANTS",
    "MACRO_STATE_NAMES",
    "DifferentialResult",
    "FidelityReport",
    "InvariantChecker",
    "InvariantViolation",
    "ValidateConfig",
    "build_report",
    "compare_samples",
    "macro_agreement",
    "macro_timeline",
    "rate_delta",
    "render_report",
    "run_differential_pair",
    "RegionWindows",
    "SlidingWindow",
    "score_region",
]
