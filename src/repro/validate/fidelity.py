"""Distributional fidelity metrics for matched full/hybrid run pairs.

Section 5 of the paper argues the approximation by *comparing
distributions* against full-fidelity simulation; learned-simulator
follow-ups (m4, Scalable Tail Latency Estimation) made distribution
distances against packet-level ground truth the standard headline
metric.  This module computes those scores for one matched pair:

* K-S statistic and Wasserstein-1 distance on per-flow FCT samples and
  on per-packet region latency samples (full side: measured boundary
  crossings; hybrid side: the model's predicted latencies — exactly
  the interval the model replaces),
* drop-rate and throughput deltas,
* a per-bucket macro-state agreement/confusion matrix: both runs'
  outcome streams are replayed through identically calibrated
  :class:`~repro.core.macro.AutoRegressiveMacroClassifier` instances
  and compared bucket by bucket, so the question "did the hybrid live
  in the same congestion regime as ground truth?" gets a number.

Everything here is computed over *simulated* time and seeded inputs —
no wall clocks, no RNG — so a fidelity report is a pure function of
the pair and re-running the same pair yields identical scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.stats import ks_distance, wasserstein_distance
from repro.core.macro import (
    AutoRegressiveMacroClassifier,
    MacroCalibration,
    MacroState,
)

#: Row/column order of the confusion matrix (state value order).
MACRO_STATE_NAMES = tuple(state.name.lower() for state in MacroState)

#: One packet outcome: (sim time, latency seconds or None, dropped).
Outcome = tuple[float, Optional[float], bool]


def compare_samples(full: Sequence[float], hybrid: Sequence[float]) -> dict[str, Any]:
    """K-S and Wasserstein-1 between two sample sets, with size guards.

    Distances need both sides non-empty; a starved side yields ``None``
    scores (visible, not a crash) because tiny smoke scenarios can
    legitimately complete zero flows on one side.
    """
    result: dict[str, Any] = {
        "full_samples": len(full),
        "hybrid_samples": len(hybrid),
        "ks": None,
        "wasserstein": None,
        "full_mean": float(np.mean(full)) if len(full) else None,
        "hybrid_mean": float(np.mean(hybrid)) if len(hybrid) else None,
    }
    if len(full) and len(hybrid):
        result["ks"] = ks_distance(full, hybrid)
        result["wasserstein"] = wasserstein_distance(full, hybrid)
    return result


def rate_delta(full: float, hybrid: float) -> dict[str, float]:
    """A pair of rates and their signed difference (hybrid - full)."""
    return {"full": full, "hybrid": hybrid, "delta": hybrid - full}


def macro_timeline(
    outcomes: Sequence[Outcome],
    calibration: MacroCalibration,
    duration_s: float,
    bucket_s: float,
    ema_alpha: float = 0.2,
) -> list[int]:
    """Per-bucket macro states from replaying an outcome stream.

    Feeds ``(time, latency, dropped)`` outcomes — in time order —
    through a fresh classifier and samples its state at every bucket
    close, producing one :class:`~repro.core.macro.MacroState` value
    per bucket of ``duration_s``.  Both sides of a differential pair
    replay through *identical* calibration, so timeline disagreement
    measures the hybrid's regime fidelity, not threshold skew.
    """
    if bucket_s <= 0:
        raise ValueError(f"bucket_s must be positive, got {bucket_s}")
    clf = AutoRegressiveMacroClassifier(
        calibration, bucket_s=bucket_s, ema_alpha=ema_alpha
    )
    buckets = max(int(round(duration_s / bucket_s)), 1)
    ordered = sorted(outcomes, key=lambda o: o[0])
    states: list[int] = []
    i = 0
    clf.advance(0.5 * bucket_s)  # pin the bucket clock to bucket 0
    for k in range(buckets):
        close = (k + 1) * bucket_s
        while i < len(ordered) and ordered[i][0] < close:
            t, latency, dropped = ordered[i]
            clf.observe(t, latency_s=latency, dropped=dropped)
            i += 1
        # Sample mid-bucket k+1: lands strictly inside the next bucket
        # regardless of float rounding at the close boundary, which is
        # exactly the advance that closes (reclassifies) bucket k.
        clf.advance((k + 1.5) * bucket_s)
        states.append(int(clf.state.value))
    return states


def macro_agreement(
    truth: Sequence[int], hybrid: Sequence[int]
) -> dict[str, Any]:
    """Confusion matrix and agreement rate between two state timelines.

    Rows are ground-truth states, columns hybrid states, both in
    :data:`MACRO_STATE_NAMES` order; ``agreement`` is the diagonal
    fraction.  Timelines are truncated to the shorter length (they
    only differ if the runs had different horizons).
    """
    n = min(len(truth), len(hybrid))
    confusion = [[0] * len(MacroState) for _ in MacroState]
    agree = 0
    for k in range(n):
        t, h = truth[k], hybrid[k]
        confusion[t - 1][h - 1] += 1
        if t == h:
            agree += 1
    return {
        "buckets": n,
        "agreement": agree / n if n else None,
        "states": list(MACRO_STATE_NAMES),
        "confusion": confusion,
    }


@dataclass
class FidelityReport:
    """All fidelity scores of one matched full/hybrid pair.

    Attributes
    ----------
    fct:
        :func:`compare_samples` over per-flow completion times.
    latency:
        :func:`compare_samples` over per-packet region latencies
        (measured vs model-predicted).
    drop_rate:
        :func:`rate_delta` over region drop fractions.
    throughput:
        :func:`rate_delta` over completed flows per simulated second.
    macro:
        :func:`macro_agreement` over the per-bucket state timelines.
    invariants:
        :meth:`~repro.validate.invariants.InvariantChecker.summary`
        of the hybrid run's checker.
    """

    fct: dict[str, Any]
    latency: dict[str, Any]
    drop_rate: dict[str, float]
    throughput: dict[str, float]
    macro: dict[str, Any]
    invariants: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable view (embedded in run manifests)."""
        return {
            "fct": dict(self.fct),
            "latency": dict(self.latency),
            "drop_rate": dict(self.drop_rate),
            "throughput": dict(self.throughput),
            "macro": dict(self.macro),
            "invariants": dict(self.invariants),
        }

    @property
    def invariant_violations(self) -> int:
        """Total structural violations observed on the hybrid side."""
        return int(self.invariants.get("total", 0))


def _fmt(value: Optional[float], spec: str = ".4g") -> str:
    return "-" if value is None else format(value, spec)


def render_report(report: FidelityReport) -> str:
    """Aligned plain-text rendering (the ``repro validate`` output)."""
    sections: list[str] = []
    rows = []
    for name, comparison in (("fct_s", report.fct), ("latency_s", report.latency)):
        rows.append([
            name,
            comparison["full_samples"],
            comparison["hybrid_samples"],
            _fmt(comparison["ks"], ".4f"),
            _fmt(comparison["wasserstein"], ".3e"),
        ])
    sections.append(format_table(
        ["distribution", "n_full", "n_hybrid", "ks", "wasserstein"], rows
    ))
    rows = [
        [name, _fmt(delta["full"]), _fmt(delta["hybrid"]), _fmt(delta["delta"])]
        for name, delta in (
            ("drop_rate", report.drop_rate),
            ("flows_per_s", report.throughput),
        )
    ]
    sections.append(format_table(["rate", "full", "hybrid", "delta"], rows))
    macro = report.macro
    agreement = _fmt(macro["agreement"], ".3f")
    sections.append(
        f"macro-state agreement: {agreement} over {macro['buckets']} bucket(s)"
    )
    rows = [
        [name] + list(macro["confusion"][i])
        for i, name in enumerate(macro["states"])
    ]
    sections.append(format_table(["truth \\ hybrid"] + list(macro["states"]), rows))
    total = report.invariant_violations
    sections.append(f"invariant violations: {total}")
    for violation in report.invariants.get("violations", []):
        sections.append(
            f"  [{violation['invariant']}] t={violation['time']:.6f}: "
            f"{violation['detail']}"
        )
    return "\n".join(sections)
