"""The differential harness: one matched full/hybrid pair, scored.

:func:`run_differential_pair` executes the same seeded workload twice
— once at full packet fidelity with the target region's boundary
instrumented, once as a hybrid with that region approximated — and
reduces the two runs to a :class:`~repro.validate.fidelity.FidelityReport`.
The hybrid side runs with an
:class:`~repro.validate.invariants.InvariantChecker` attached to the
kernel and to every approximated cluster, so structural violations
surface in the same report as the statistical scores.

Both sides share ``config.seed``, the topology, and the workload
distributions; the harness defaults ``elide_remote_traffic=False`` so
the hybrid carries the *identical* offered load (eliding background
flows is a speed feature, not a fidelity-neutral one).  All scores are
computed over simulated time from seeded inputs, so running the same
pair twice produces byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.hybrid import HybridConfig, HybridSimulation
from repro.core.pipeline import (
    ExperimentConfig,
    FullRunOutput,
    RunResult,
    make_generator,
    run_full_simulation,
)
from repro.core.training import TrainedClusterModel
from repro.des.kernel import Simulator
from repro.topology.clos import build_clos
from repro.validate.fidelity import (
    FidelityReport,
    Outcome,
    compare_samples,
    macro_agreement,
    macro_timeline,
    rate_delta,
)
from repro.validate.invariants import InvariantChecker


@dataclass(frozen=True)
class ValidateConfig:
    """Options of a differential validation pair.

    Attributes
    ----------
    region_cluster:
        The cluster under comparison: its boundary is traced in the
        full run and approximated in the hybrid run.  Must differ from
        ``full_cluster``.
    full_cluster:
        The cluster kept at full fidelity on the hybrid side.
    macro_bucket_s:
        Bucket of both the runtime classifiers and the offline
        macro-timeline replay.
    elide_remote_traffic:
        Defaults to False here (unlike :class:`HybridConfig`): the
        pair must carry identical offered workloads to be comparable.
    use_fused_inference, inference_dtype:
        Passed through to :class:`HybridConfig`.
    batch_window_s, memoize_inference, memo_exact:
        Passed through to :class:`HybridConfig` — this is how the
        batched hot path and the memoization cache get validated: the
        differential pair is the fidelity gate for any approximation
        the fast path introduces.
    """

    region_cluster: int = 1
    full_cluster: int = 0
    macro_bucket_s: float = 0.001
    elide_remote_traffic: bool = False
    use_fused_inference: bool = True
    inference_dtype: str = "float64"
    batch_window_s: float = 0.0
    memoize_inference: bool = False
    memo_exact: bool = True

    def __post_init__(self) -> None:
        if self.region_cluster == self.full_cluster:
            raise ValueError(
                "region_cluster must differ from full_cluster: the compared "
                f"region has to be approximated (both are {self.full_cluster})"
            )

    def hybrid_config(self) -> HybridConfig:
        """The hybrid-assembly options this validation implies."""
        return HybridConfig(
            full_cluster=self.full_cluster,
            elide_remote_traffic=self.elide_remote_traffic,
            macro_bucket_s=self.macro_bucket_s,
            use_fused_inference=self.use_fused_inference,
            inference_dtype=self.inference_dtype,
            batch_window_s=self.batch_window_s,
            memoize_inference=self.memoize_inference,
            memo_exact=self.memo_exact,
        )


@dataclass
class DifferentialResult:
    """Everything one matched pair produced.

    Attributes
    ----------
    report:
        The fidelity scores (this is what manifests embed).
    full, hybrid:
        Per-side :class:`~repro.core.pipeline.RunResult` measurements.
    checker:
        The hybrid run's invariant checker (already summarized into
        ``report.invariants``; kept for ``assert_clean`` in tests).
    hybrid_sim:
        The hybrid assembly (hot-path counters for manifests).
    """

    report: FidelityReport
    full: RunResult
    hybrid: RunResult
    checker: InvariantChecker
    hybrid_sim: HybridSimulation
    full_outcomes: list[Outcome] = field(default_factory=list)
    hybrid_outcomes: list[Outcome] = field(default_factory=list)


def run_differential_pair(
    config: ExperimentConfig,
    trained: TrainedClusterModel,
    validate: Optional[ValidateConfig] = None,
    metrics=None,
) -> DifferentialResult:
    """Run the matched pair and score the hybrid against ground truth."""
    vc = validate or ValidateConfig()
    topology = build_clos(config.clos)
    cluster_ids = topology.cluster_ids()
    if vc.region_cluster not in cluster_ids:
        raise ValueError(
            f"region_cluster={vc.region_cluster} not in topology clusters {cluster_ids}"
        )

    # ---- Side A: full fidelity, region boundary instrumented. --------
    full_output = run_full_simulation(
        config,
        collect_cluster=vc.region_cluster,
        observe_cluster=vc.full_cluster,
        metrics=metrics,
    )
    records = full_output.records
    full_outcomes: list[Outcome] = [
        (record.outcome_time, record.latency_s, record.dropped)
        for record in records
        if record.outcome_time is not None
    ]

    # ---- Side B: hybrid, assembled manually so the checker and the
    # outcome tap attach before any traffic flows. ---------------------
    sim = Simulator(seed=config.seed)
    checker = InvariantChecker(metrics=metrics)
    checker.attach_simulator(sim)
    hybrid_sim = HybridSimulation(
        sim,
        topology,
        trained,
        net_config=config.net,
        config=vc.hybrid_config(),
        metrics=metrics,
        invariants=checker,
        routing_config=config.routing,
        failures=config.failures,
    )
    hybrid_outcomes: list[Outcome] = []
    region_model = hybrid_sim.models[vc.region_cluster]
    region_model.on_outcome = (
        lambda now, latency_s, dropped: hybrid_outcomes.append(
            (now, latency_s, dropped)
        )
    )
    generator = make_generator(
        sim, hybrid_sim.network, config, flow_filter=hybrid_sim.flow_filter
    )
    if metrics is not None:
        from repro.obs import attach_hybrid_probes, default_period

        attach_hybrid_probes(
            metrics, sim, hybrid_sim, default_period(config.duration_s)
        )
    generator.start()
    sim.run(until=config.duration_s)
    # Conservation counts every packet that entered an approximated
    # cluster; drain held batches first so none are in flight.
    hybrid_sim.flush_inference()
    checker.check_conservation(now=sim.now)

    hybrid_result = RunResult(
        sim_seconds=config.duration_s,
        wallclock_seconds=sim.wallclock_elapsed,
        events_executed=sim.events_executed,
        flows_started=generator.flows_started,
        flows_completed=generator.flows_completed,
        flows_elided=generator.flows_elided,
        drops=hybrid_sim.network.total_drops + hybrid_sim.model_drops(),
        rtt_samples=hybrid_sim.observed_rtt_samples(),
        fcts=generator.completed_fcts(),
        model_packets=hybrid_sim.model_packets_handled(),
        model_drops=hybrid_sim.model_drops(),
        model_inference_seconds=hybrid_sim.inference_seconds(),
        failure_events=hybrid_sim.failure_injector.summary(),
        collective=(
            generator.collective.summary() if generator.collective else None
        ),
    )

    report = build_report(
        full_output,
        hybrid_result,
        full_outcomes=full_outcomes,
        hybrid_outcomes=hybrid_outcomes,
        trained=trained,
        duration_s=config.duration_s,
        bucket_s=vc.macro_bucket_s,
        checker=checker,
    )
    return DifferentialResult(
        report=report,
        full=full_output.result,
        hybrid=hybrid_result,
        checker=checker,
        hybrid_sim=hybrid_sim,
        full_outcomes=full_outcomes,
        hybrid_outcomes=hybrid_outcomes,
    )


def build_report(
    full_output: FullRunOutput,
    hybrid_result: RunResult,
    full_outcomes: list[Outcome],
    hybrid_outcomes: list[Outcome],
    trained: TrainedClusterModel,
    duration_s: float,
    bucket_s: float,
    checker: InvariantChecker,
) -> FidelityReport:
    """Reduce a matched pair's raw streams to a fidelity report."""
    full_result = full_output.result
    full_latencies = [lat for _, lat, dropped in full_outcomes if not dropped]
    hybrid_latencies = [lat for _, lat, dropped in hybrid_outcomes if not dropped]

    full_drop_rate = (
        sum(1 for *_, dropped in full_outcomes if dropped) / len(full_outcomes)
        if full_outcomes
        else 0.0
    )
    hybrid_drop_rate = (
        sum(1 for *_, dropped in hybrid_outcomes if dropped) / len(hybrid_outcomes)
        if hybrid_outcomes
        else 0.0
    )
    # Throughput over simulated (not wall-clock) time: deterministic,
    # and what the workload actually achieved.
    full_tput = full_result.flows_completed / duration_s
    hybrid_tput = hybrid_result.flows_completed / duration_s

    truth_timeline = macro_timeline(
        full_outcomes, trained.calibration, duration_s, bucket_s
    )
    hybrid_timeline = macro_timeline(
        hybrid_outcomes, trained.calibration, duration_s, bucket_s
    )
    return FidelityReport(
        fct=compare_samples(full_result.fcts, hybrid_result.fcts),
        latency=compare_samples(full_latencies, hybrid_latencies),
        drop_rate=rate_delta(full_drop_rate, hybrid_drop_rate),
        throughput=rate_delta(full_tput, hybrid_tput),
        macro=macro_agreement(truth_timeline, hybrid_timeline),
        invariants=checker.summary(),
    )
