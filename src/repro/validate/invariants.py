"""Runtime invariant checking for full and hybrid simulations.

The approximation can be wrong in two ways: *statistically* (its
distributions diverge from ground truth — measured by
:mod:`repro.validate.fidelity`) and *structurally* (it does something
no network could: delivers into the past, un-orders an egress link,
loses packets from its own accounting).  Structural violations are
bugs, not model error, so they are checked at runtime by an
:class:`InvariantChecker` cheap enough to leave on in tier-1 tests.

Four invariants are covered:

``causality``
    Nothing is scheduled in the past — neither by the kernel wrappers
    installed via :meth:`InvariantChecker.attach_simulator` nor by an
    :class:`~repro.core.cluster_model.ApproximatedCluster` delivery.
``conservation``
    Per watched region, ``handled == dropped + delivered``; a packet
    that crossed into the black box either died or came out.
``fcfs``
    Per egress node, model deliveries are monotone in time — the
    paper's conflict-resolution rule ("the one processed first is
    given priority") must never reorder a link.
``latency_bounds``
    Predicted region latencies stay within the physical floor and the
    extrapolation ceiling of :mod:`repro.core.cluster_model`.
``routability``
    No switch strands a packet without a live route — reachable once
    link failures partition the fabric; recorded via
    :meth:`InvariantChecker.watch_network` before the structured
    :class:`~repro.net.switch.UnroutablePacketError` propagates.

The checker follows the ``metrics`` contract: entities hold it as an
optional reference and pay one ``is not None`` branch per packet when
absent.  Violations are counted per invariant, the first
``max_recorded`` are kept with full detail, and — when a
:class:`~repro.obs.MetricsRegistry` is supplied — each one increments
a ``validate.invariant_violations`` counter labeled by invariant name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.cluster_model import MAX_REGION_LATENCY_S, MIN_REGION_LATENCY_S

#: The invariant names a checker can report (stable; used as labels).
INVARIANTS = ("causality", "conservation", "fcfs", "latency_bounds", "routability")


@dataclass(frozen=True)
class InvariantViolation:
    """One recorded violation.

    Attributes
    ----------
    invariant:
        One of :data:`INVARIANTS`.
    time:
        Simulated time at which the violation was detected.
    detail:
        Human-readable description with the offending values.
    trace:
        Trace id of the offending flow when the call site could
        attribute one (``None`` otherwise) — the hook that lets
        ``repro trace show`` jump from a violation to the flow.
    """

    invariant: str
    time: float
    detail: str
    trace: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable view (manifests, reports)."""
        return {
            "invariant": self.invariant,
            "time": self.time,
            "detail": self.detail,
            "trace": self.trace,
        }


class InvariantChecker:
    """Accumulates structural-invariant violations across a simulation.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; violations then
        increment ``validate.invariant_violations`` counters labeled
        by invariant name.
    tracer:
        Optional :class:`~repro.obs.trace.FlightRecorder`; every
        violation then also lands in the flight recorder as an
        ``invariant.violation`` event carrying the offending flow's
        trace id (when the call site supplied one).
    max_recorded:
        Detailed :class:`InvariantViolation` records kept (counts are
        always exact); bounded so a badly broken run cannot OOM the
        checker that is diagnosing it.

    Attributes
    ----------
    counts:
        invariant name -> exact violation count.
    violations:
        First ``max_recorded`` violations with full detail.
    """

    def __init__(self, metrics=None, max_recorded: int = 64, tracer=None) -> None:
        self.counts: dict[str, int] = {name: 0 for name in INVARIANTS}
        self.violations: list[InvariantViolation] = []
        self.max_recorded = max_recorded
        self._clusters: list[Any] = []
        self._fcfs_last: dict[tuple[str, str], float] = {}
        self._handles: dict[str, Any] = {}
        self._metrics = (
            metrics if metrics is not None and metrics.handles_enabled() else None
        )
        self._tracer = tracer

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self, invariant: str, time: float, detail: str, trace: Optional[str] = None
    ) -> None:
        """Count one violation (and keep its detail if under the cap)."""
        if invariant not in self.counts:
            raise ValueError(
                f"unknown invariant {invariant!r}; expected one of {INVARIANTS}"
            )
        self.counts[invariant] += 1
        if len(self.violations) < self.max_recorded:
            self.violations.append(InvariantViolation(invariant, time, detail, trace))
        if self._metrics is not None:
            handle = self._handles.get(invariant)
            if handle is None:
                handle = self._handles[invariant] = self._metrics.counter(
                    "validate.invariant_violations", invariant=invariant
                )
            handle.inc()
        if self._tracer is not None:
            self._tracer.event(
                "invariant.violation",
                trace=trace,
                t=time,
                invariant=invariant,
                detail=detail,
            )

    @property
    def total(self) -> int:
        """Total violations across all invariants."""
        return sum(self.counts.values())

    # ------------------------------------------------------------------
    # Attachment points
    # ------------------------------------------------------------------
    def attach_simulator(self, sim) -> "InvariantChecker":
        """Observe every scheduling call on ``sim`` for causality.

        Wraps ``schedule`` / ``schedule_at`` so a past-scheduling
        attempt is *recorded* before the kernel raises its own
        :class:`~repro.des.errors.SchedulingError` — the checker sees
        the violation even when an outer ``except`` swallows the error.
        Returns ``self`` for chaining.
        """
        inner_schedule = sim.schedule
        inner_schedule_at = sim.schedule_at

        def schedule(delay, fn, priority=0):
            if delay < 0:
                self.record(
                    "causality", sim.now, f"schedule(delay={delay!r}) is negative"
                )
            return inner_schedule(delay, fn, priority)

        def schedule_at(time, fn, priority=0):
            if time < sim.now:
                self.record(
                    "causality",
                    sim.now,
                    f"schedule_at(time={time!r}) < now={sim.now!r}",
                )
            return inner_schedule_at(time, fn, priority)

        sim.schedule = schedule
        sim.schedule_at = schedule_at
        return self

    def watch_cluster(self, cluster) -> None:
        """Register an approximated cluster for conservation checking.

        :class:`~repro.core.cluster_model.ApproximatedCluster` calls
        this from its constructor when handed a checker.
        """
        self._clusters.append(cluster)

    def watch_network(self, network) -> None:
        """Record a routability violation for every unroutable packet.

        Installs an ``on_unroutable`` hook on each switch so that a
        stranded packet is counted before the structured
        :class:`~repro.net.switch.UnroutablePacketError` propagates —
        the failed manifest then shows both the error and the
        violation.
        """

        def on_unroutable(error, packet) -> None:
            self.record(
                "routability",
                error.time,
                f"{error.switch}: {error.src}->{error.dst} under "
                f"{error.policy!r}: {error.reason}",
            )

        for switch in network.switches.values():
            switch.on_unroutable = on_unroutable

    # ------------------------------------------------------------------
    # Hot-path checks (called per packet by ApproximatedCluster)
    # ------------------------------------------------------------------
    def check_latency(
        self,
        cluster: str,
        now: float,
        latency_s: float,
        trace: Optional[str] = None,
    ) -> None:
        """Predicted latency must respect the model's physical bounds."""
        if not MIN_REGION_LATENCY_S <= latency_s <= MAX_REGION_LATENCY_S:
            self.record(
                "latency_bounds",
                now,
                f"{cluster}: predicted latency {latency_s!r}s outside "
                f"[{MIN_REGION_LATENCY_S}, {MAX_REGION_LATENCY_S}]",
                trace=trace,
            )

    def check_delivery(
        self,
        cluster: str,
        target: str,
        now: float,
        deliver_at: float,
        trace: Optional[str] = None,
    ) -> None:
        """A delivery must be causal and FCFS-monotone per egress node."""
        if deliver_at < now:
            self.record(
                "causality",
                now,
                f"{cluster}: delivery to {target} at {deliver_at!r} < now={now!r}",
                trace=trace,
            )
        key = (cluster, target)
        last = self._fcfs_last.get(key)
        if last is not None and deliver_at < last:
            self.record(
                "fcfs",
                now,
                f"{cluster}: delivery to {target} at {deliver_at!r} precedes "
                f"earlier delivery at {last!r}",
                trace=trace,
            )
        self._fcfs_last[key] = deliver_at

    # ------------------------------------------------------------------
    # End-of-run checks
    # ------------------------------------------------------------------
    def check_conservation(self, now: float = 0.0) -> None:
        """Packets in == packets dropped + packets delivered, per region.

        Call after ``sim.run`` returns: deliveries scheduled but not
        yet executed still count as delivered (the decision is made at
        ``receive`` time), so the identity must hold exactly.
        """
        for cluster in self._clusters:
            accounted = cluster.packets_dropped + cluster.packets_delivered
            if cluster.packets_handled != accounted:
                self.record(
                    "conservation",
                    now,
                    f"{cluster.name}: handled={cluster.packets_handled} != "
                    f"dropped={cluster.packets_dropped} + "
                    f"delivered={cluster.packets_delivered}",
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """JSON-serializable checker state (embedded in fidelity reports)."""
        return {
            "total": self.total,
            "counts": dict(self.counts),
            "violations": [v.to_dict() for v in self.violations],
        }

    def assert_clean(self) -> None:
        """Raise :class:`AssertionError` if any invariant was violated."""
        if self.total:
            lines = [f"{self.total} invariant violation(s):"]
            lines.extend(
                f"  [{v.invariant}] t={v.time:.6f}: {v.detail}"
                for v in self.violations
            )
            if self.total > len(self.violations):
                lines.append(f"  ... and {self.total - len(self.violations)} more")
            raise AssertionError("\n".join(lines))
