"""Windowed online fidelity scoring for the cascade controller.

The offline harness (:mod:`repro.validate.harness`) scores a whole
matched pair after the fact; the cascade needs the same statistics
*during* a run, per region, over a sliding horizon of recent simulated
time.  This module provides that: bounded time-stamped sample windows
(FCT, region latency, delivered/dropped outcome streams) and
:func:`score_region`, which reduces a region's windows against a
reference region's windows to the familiar K-S / Wasserstein-1 /
drop-rate / throughput scores via the exact same
:func:`~repro.validate.fidelity.compare_samples` and
:func:`~repro.validate.fidelity.rate_delta` primitives.

Everything is keyed by simulated time and contains no RNG or wall
clocks, so the controller decisions built on these scores are a pure
function of the seeded run.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.validate.fidelity import compare_samples, rate_delta


class SlidingWindow:
    """Time-stamped samples over a sliding horizon of simulated time.

    ``add`` must be called with non-decreasing timestamps (the DES
    guarantees this); ``evict_before`` discards samples older than the
    cutoff in O(evicted).
    """

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: deque[tuple[float, float, Optional[str]]] = deque()

    def add(self, time: float, value: float, tag: Optional[str] = None) -> None:
        """Append one sample; ``tag`` optionally names its origin (the
        flow id string the cascade's breach records surface)."""
        self._samples.append((time, value, tag))

    def evict_before(self, cutoff: float) -> None:
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def values(self) -> list[float]:
        return [sample[1] for sample in self._samples]

    def tags(self) -> list[str]:
        """Non-``None`` tags of the samples currently in the window,
        in insertion order (duplicates preserved)."""
        return [sample[2] for sample in self._samples if sample[2] is not None]

    def __len__(self) -> int:
        return len(self._samples)


class RegionWindows:
    """All per-region sample streams the controller scores.

    Attributes
    ----------
    fct:
        Completed-flow FCTs of flows touching the region (seconds).
    latency:
        Per-packet region traversal latencies (seconds) — model
        predictions for approximated regions, measured boundary
        residence for the full-fidelity reference region.
    drops:
        Packet drop events (value unused; the count is the signal).
    """

    __slots__ = ("fct", "latency", "drops")

    def __init__(self) -> None:
        self.fct = SlidingWindow()
        self.latency = SlidingWindow()
        self.drops = SlidingWindow()

    def record_fct(
        self, time: float, fct: float, flow: Optional[str] = None
    ) -> None:
        """Add one completed-flow sample; ``flow`` names it (e.g.
        ``"flow:17"`` / ``"fluid:3"``) so breach records can list the
        flows behind a scoring window."""
        self.fct.add(time, fct, tag=flow)

    def window_flows(self) -> list[str]:
        """Sorted unique flow names currently in the FCT window —
        evicted together with their samples, so a breach record names
        exactly the flows that were scored."""
        return sorted(set(self.fct.tags()))

    def record_outcome(
        self, time: float, latency_s: Optional[float], dropped: bool
    ) -> None:
        """Tap-compatible with ``ApproximatedCluster.on_outcome``."""
        if dropped:
            self.drops.add(time, 1.0)
        elif latency_s is not None:
            self.latency.add(time, latency_s)

    def evict_before(self, cutoff: float) -> None:
        self.fct.evict_before(cutoff)
        self.latency.evict_before(cutoff)
        self.drops.evict_before(cutoff)

    # ------------------------------------------------------------------
    @property
    def delivered(self) -> int:
        return len(self.latency)

    @property
    def dropped(self) -> int:
        return len(self.drops)

    def drop_rate(self) -> float:
        total = self.delivered + self.dropped
        if total == 0:
            return 0.0
        return self.dropped / total


def score_region(
    reference: RegionWindows,
    region: RegionWindows,
    horizon_s: float,
    min_samples: int = 1,
) -> dict[str, Any]:
    """Score one region's windows against the reference region's.

    Returns the windowed analogue of a
    :class:`~repro.validate.fidelity.FidelityReport` slice::

        {"fct": compare_samples(...), "latency": compare_samples(...),
         "drop_rate": rate_delta(...), "throughput": rate_delta(...),
         "scoreable": bool}

    ``scoreable`` is True when both FCT windows hold at least
    ``min_samples`` samples — the gate the controller uses before
    acting on the distances (a starved window is not evidence of
    fidelity, only of idleness).  Throughput is completed flows per
    second of window horizon.
    """
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be positive, got {horizon_s}")
    fct = compare_samples(reference.fct.values(), region.fct.values())
    latency = compare_samples(reference.latency.values(), region.latency.values())
    return {
        "fct": fct,
        "latency": latency,
        "drop_rate": rate_delta(reference.drop_rate(), region.drop_rate()),
        "throughput": rate_delta(
            len(reference.fct) / horizon_s, len(region.fct) / horizon_s
        ),
        "scoreable": (
            len(reference.fct) >= min_samples and len(region.fct) >= min_samples
        ),
    }
