"""Tests for CDFs, distribution distances, and reporting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.reporting import format_series, format_table
from repro.analysis.stats import ks_distance, percentile_summary, wasserstein_distance

samples_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=300
)


class TestEmpiricalCdf:
    def test_evaluate_known(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(2.0) == 0.5
        assert cdf.evaluate(10.0) == 1.0

    def test_quantile_known(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.quantile(0.25) == 1.0
        assert cdf.quantile(1.0) == 4.0
        assert cdf.quantile(0.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([])

    @given(samples_strategy)
    @settings(max_examples=50)
    def test_cdf_monotone_and_bounded(self, samples):
        cdf = EmpiricalCdf(samples)
        xs, ys = cdf.curve(points=50)
        assert np.all(np.diff(ys) >= 0)
        assert 0 <= ys[0] and ys[-1] == 1.0

    @given(samples_strategy, st.floats(min_value=0, max_value=1))
    @settings(max_examples=50)
    def test_quantile_evaluate_consistency(self, samples, q):
        cdf = EmpiricalCdf(samples)
        assert cdf.evaluate(cdf.quantile(q)) >= q - 1e-12

    def test_log_spaced_curve_for_wide_ranges(self):
        cdf = EmpiricalCdf([1e-6, 1e-3, 1.0])
        xs, _ = cdf.curve(points=10)
        # Log-spacing: ratios roughly constant.
        ratios = xs[1:] / xs[:-1]
        assert np.allclose(ratios, ratios[0], rtol=1e-6)


class TestDistances:
    def test_ks_identical_zero(self):
        a = [1.0, 2.0, 3.0]
        assert ks_distance(a, a) == 0.0

    def test_ks_disjoint_one(self):
        assert ks_distance([1, 2, 3], [10, 20, 30]) == 1.0

    def test_ks_known_value(self):
        assert ks_distance([1, 2, 3, 4], [3, 4, 5, 6]) == pytest.approx(0.5)

    def test_wasserstein_shift(self):
        """W1 of a constant shift equals the shift."""
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 4000)
        assert wasserstein_distance(a, a + 2.0) == pytest.approx(2.0, rel=0.05)

    def test_wasserstein_identical_zero(self):
        a = [1.0, 5.0, 9.0]
        assert wasserstein_distance(a, a) == pytest.approx(0.0, abs=1e-12)

    @given(samples_strategy, samples_strategy)
    @settings(max_examples=50)
    def test_ks_symmetric_and_bounded(self, a, b):
        d = ks_distance(a, b)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(ks_distance(b, a))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance([], [1.0])
        with pytest.raises(ValueError):
            wasserstein_distance([1.0], [])


class TestSummaries:
    def test_percentile_summary(self):
        summary = percentile_summary(range(1, 101))
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p99"] == pytest.approx(99.01)

    def test_empty_summary(self):
        assert percentile_summary([]) == {"count": 0.0}


class TestReporting:
    def test_format_table_aligned(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22222.123456]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or True for line in lines)
        assert "22222.1" in text

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_format_series(self):
        text = format_series("speedup", [2, 4], [1.5, 2.5])
        assert "# series: speedup" in text
        assert "2\t1.5" in text

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])
