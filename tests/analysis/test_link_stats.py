"""Tests for per-link utilization reporting."""

from __future__ import annotations

import pytest

from repro.analysis.link_stats import collect_link_reports, format_link_report
from repro.des.kernel import Simulator
from repro.net.network import Network, NetworkConfig
from repro.topology.clos import server_name


def _loaded_network(small_clos, duration=0.01):
    sim = Simulator(seed=88)
    net = Network(sim, small_clos, NetworkConfig())
    sender = net.host(server_name(0, 0, 0)).open_flow(
        net.host(server_name(0, 0, 1)), 5_000_000
    )
    sender.start()
    sim.run(until=duration)
    return net


class TestLinkReports:
    def test_sorted_by_utilization(self, small_clos):
        net = _loaded_network(small_clos)
        reports = collect_link_reports(net, duration_s=0.01)
        assert len(reports) == len(net.ports())
        utils = [r.utilization for r in reports]
        assert utils == sorted(utils, reverse=True)

    def test_busiest_link_is_on_the_flow_path(self, small_clos):
        net = _loaded_network(small_clos)
        busiest = collect_link_reports(net, duration_s=0.01)[0]
        on_path = {
            (server_name(0, 0, 0), "tor-c0-0"),
            ("tor-c0-0", server_name(0, 0, 1)),
        }
        assert (busiest.link_from, busiest.link_to) in on_path
        # 5 MB at 10 Gbps finishes in ~4.2 ms, i.e. ~40% of the 10 ms
        # reporting window.
        assert busiest.utilization > 0.3

    def test_idle_links_zero(self, small_clos):
        net = _loaded_network(small_clos)
        reports = collect_link_reports(net, duration_s=0.01)
        idle = [r for r in reports if r.link_from.startswith("core")]
        assert all(r.utilization == 0.0 for r in idle)

    def test_peak_queue_recorded(self, small_clos):
        net = _loaded_network(small_clos)
        reports = {(r.link_from, r.link_to): r for r in collect_link_reports(net, 0.01)}
        bottleneck = reports[("tor-c0-0", server_name(0, 0, 1))]
        assert bottleneck.peak_queue_bytes > 0

    def test_format_top_n(self, small_clos):
        net = _loaded_network(small_clos)
        reports = collect_link_reports(net, duration_s=0.01)
        text = format_link_report(reports, top=3)
        assert len(text.splitlines()) == 5  # header + rule + 3 rows
        assert "util" in text

    def test_invalid_duration(self, small_clos):
        net = _loaded_network(small_clos)
        with pytest.raises(ValueError):
            collect_link_reports(net, duration_s=0.0)
