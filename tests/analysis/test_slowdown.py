"""Tests for FCT slowdown analysis."""

from __future__ import annotations

import pytest

from repro.analysis.slowdown import (
    DEFAULT_BUCKETS,
    flow_slowdowns,
    format_slowdown_table,
    ideal_fct_s,
    slowdown_by_bucket,
)
from repro.traffic.apps import FlowRecord


def _record(size, fct, start=0.0):
    record = FlowRecord(src="a", dst="b", size_bytes=size, start_time=start)
    if fct is not None:
        record.completion_time = start + fct
    return record


class TestIdealFct:
    def test_one_packet_flow(self):
        # 1000B payload -> 1040B on wire at 1 Gbps + 10us RTT.
        ideal = ideal_fct_s(1000, 1e9, 1e-5)
        assert ideal == pytest.approx(1e-5 + 1040 * 8 / 1e9)

    def test_header_overhead_per_mss(self):
        one_mss = ideal_fct_s(1460, 1e9, 0.0)
        two_segments = ideal_fct_s(1461, 1e9, 0.0)
        # The extra byte forces a second header.
        assert two_segments > one_mss + 8 / 1e9

    def test_monotone_in_size(self):
        values = [ideal_fct_s(s, 1e9, 1e-5) for s in (1, 1460, 100_000, 1_000_000)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            ideal_fct_s(0, 1e9, 0.0)
        with pytest.raises(ValueError):
            ideal_fct_s(100, 0.0, 0.0)


class TestFlowSlowdowns:
    def test_ideal_flow_slowdown_one(self):
        ideal = ideal_fct_s(100_000, 1e9, 1e-5)
        pairs = flow_slowdowns([_record(100_000, ideal)], 1e9, 1e-5)
        assert pairs[0][1] == pytest.approx(1.0)

    def test_floor_at_one(self):
        pairs = flow_slowdowns([_record(100_000, 1e-9)], 1e9, 1e-5)
        assert pairs[0][1] == 1.0

    def test_incomplete_flows_skipped(self):
        pairs = flow_slowdowns([_record(1000, None)], 1e9, 1e-5)
        assert pairs == []

    def test_congested_flow_has_high_slowdown(self):
        ideal = ideal_fct_s(10_000, 1e9, 1e-5)
        pairs = flow_slowdowns([_record(10_000, 10 * ideal)], 1e9, 1e-5)
        assert pairs[0][1] == pytest.approx(10.0)


class TestBuckets:
    def test_bucketing_and_labels(self):
        flows = [
            _record(5_000, 1e-3),     # <=10KB
            _record(50_000, 2e-3),    # 10KB-100KB
            _record(5_000_000, 0.1),  # 1MB-10MB
        ]
        summaries = slowdown_by_bucket(flows, 1e9, 1e-5)
        labels = [s.bucket_label for s in summaries]
        assert labels == ["<=10KB", "10KB-100KB", "1MB-10MB"]
        assert all(s.flows == 1 for s in summaries)

    def test_empty_buckets_omitted(self):
        summaries = slowdown_by_bucket([_record(100, 1e-4)], 1e9, 1e-5)
        assert len(summaries) == 1

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            slowdown_by_bucket([], 1e9, 1e-5, bucket_edges=(100, 10))

    def test_format_table(self):
        summaries = slowdown_by_bucket(
            [_record(5_000, 1e-3), _record(8_000, 2e-3)], 1e9, 1e-5
        )
        text = format_slowdown_table(summaries)
        assert "slowdown_p50" in text
        assert "<=10KB" in text


class TestEndToEndSlowdown:
    def test_from_real_simulation(self, small_clos):
        """Slowdowns from an actual congested run are >= 1 and heavier
        at high load."""
        from repro.core.pipeline import ExperimentConfig, run_full_simulation
        from repro.topology.clos import ClosParams
        from repro.traffic.apps import FlowRecord

        def median_slowdown(load):
            config = ExperimentConfig(
                clos=ClosParams(clusters=2), load=load, duration_s=0.006, seed=161
            )
            # Re-run manually to get FlowRecords with sizes.
            from repro.core.pipeline import make_generator
            from repro.des.kernel import Simulator
            from repro.net.network import Network
            from repro.topology.clos import build_clos

            sim = Simulator(seed=config.seed)
            net = Network(sim, build_clos(config.clos), config=config.net)
            gen = make_generator(sim, net, config)
            gen.start()
            sim.run(until=config.duration_s)
            pairs = flow_slowdowns(gen.flows, 10e9, 13e-6)
            assert pairs, "no completed flows"
            import numpy as np

            return float(np.median([s for _, s in pairs]))

        low = median_slowdown(0.1)
        high = median_slowdown(0.6)
        assert low >= 1.0 and high >= 1.0
        assert high >= low
