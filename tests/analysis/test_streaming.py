"""Tests for the bounded-memory streaming statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.streaming import StreamingStats


def test_empty():
    stats = StreamingStats()
    assert stats.count == 0
    assert len(stats) == 0
    assert stats.percentile(50) is None
    assert stats.summary() == {"count": 0}


def test_rejects_bad_arguments():
    with pytest.raises(ValueError):
        StreamingStats(max_samples=1)
    stats = StreamingStats()
    stats.add(1.0)
    with pytest.raises(ValueError):
        stats.percentile(101)


def test_exact_while_stream_fits_buffer():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    stats = StreamingStats(max_samples=16)
    stats.extend(values)
    assert stats.count == 5
    assert stats.mean == pytest.approx(3.0)
    assert stats.min == 1.0 and stats.max == 5.0
    assert stats.std == pytest.approx(np.std(values))
    assert stats.percentile(0) == 1.0
    assert stats.percentile(50) == 3.0
    assert stats.percentile(100) == 5.0
    assert stats.sample == values


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=300,
    )
)
@settings(max_examples=50, deadline=None)
def test_moments_match_numpy_exactly_regardless_of_buffer(values):
    """Welford moments cover the *whole* stream even after decimation."""
    stats = StreamingStats(max_samples=8)
    stats.extend(values)
    assert stats.count == len(values)
    assert stats.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)
    assert stats.std == pytest.approx(np.std(values), rel=1e-6, abs=1e-6)
    assert stats.min == min(values)
    assert stats.max == max(values)


def test_sample_stays_bounded_and_percentiles_stay_sane():
    stats = StreamingStats(max_samples=64)
    n = 100_000
    for i in range(n):
        stats.add(float(i))
    assert len(stats._samples) < 64
    assert stats.count == n
    # A systematic sample of 0..n-1 puts every percentile within a few
    # stride-widths (a few percent of the range) of the true value.
    for q in (10, 50, 90):
        estimate = stats.percentile(q)
        assert estimate == pytest.approx(q / 100 * n, abs=0.05 * n)
    summary = stats.summary()
    assert summary["count"] == n
    assert summary["p50"] == stats.percentile(50)


def test_deterministic_and_rng_free():
    """Identical streams give identical state — no hidden randomness
    (the hot path's RNG must not be perturbed by bookkeeping)."""
    a, b = StreamingStats(max_samples=32), StreamingStats(max_samples=32)
    values = np.random.default_rng(7).normal(size=5000)
    a.extend(values)
    b.extend(values)
    assert a.sample == b.sample
    assert a.summary() == b.summary()


def test_repr_and_infinite_safety():
    stats = StreamingStats()
    assert "empty" in repr(stats)
    stats.add(2.5)
    assert "count=1" in repr(stats)
    assert not math.isinf(stats.mean)
