"""Tier adapters in isolation, against a fake cascade context."""

from __future__ import annotations

import pytest

from repro.cascade import (
    FlowsimToHybridAdapter,
    HybridToFlowsimAdapter,
    Tier,
    adapter_for,
)
from repro.flowsim import EpochFlowSimulator, FlowSpec


class FakeContext:
    """The minimal surface TierAdapter.transfer needs (see its docs)."""

    def __init__(self, topology) -> None:
        self.fluid = EpochFlowSimulator(topology)
        self.launched: list[tuple[str, str, int]] = []
        self.inflight = {1: 4, 2: 0}
        self.macro = {1: "elevated", 2: None}

    def cluster_of(self, server: str) -> int:
        # server-c<N>-t...-s... -> N
        return int(server.split("-")[1][1:])

    def launch_carried_flow(
        self, src: str, dst: str, size_bytes: int, src_port=None
    ):
        self.launched.append((src, dst, size_bytes))
        self.launched_ports = getattr(self, "launched_ports", [])
        self.launched_ports.append(src_port)

    def inflight_packet_flows(self, region: int) -> int:
        return self.inflight[region]

    def macro_label(self, region: int):
        return self.macro[region]


def _spec(flow_id, src, dst, size_bytes=125_000, start_time=0.0):
    return FlowSpec(
        flow_id=flow_id, src=src, dst=dst,
        size_bytes=size_bytes, start_time=start_time,
    )


class TestFlowsimToHybrid:
    def test_extracts_only_flows_touching_region(self, small_clos):
        ctx = FakeContext(small_clos)
        ctx.fluid.admit(_spec(0, "server-c0-t0-s0", "server-c1-t0-s0"))
        ctx.fluid.admit(_spec(1, "server-c0-t0-s1", "server-c0-t1-s0"))
        handoff = FlowsimToHybridAdapter().transfer(1, ctx)
        assert handoff.flows_transferred == 1
        assert len(ctx.launched) == 1
        assert ctx.fluid.active_flows == 1  # the c0-internal flow stays

    def test_carries_remaining_bytes_not_original_size(self, small_clos):
        ctx = FakeContext(small_clos)
        ctx.fluid.admit(_spec(0, "server-c0-t0-s0", "server-c1-t0-s0"))
        ctx.fluid.step_to(50e-6)  # half the 100 us transfer at 10 Gbps
        handoff = FlowsimToHybridAdapter().transfer(1, ctx)
        (src, dst, size), = ctx.launched
        assert size == pytest.approx(62_500, abs=1)
        assert handoff.bytes_transferred == pytest.approx(62_500, rel=1e-6)

    def test_nearly_done_flow_still_carries_one_byte(self, small_clos):
        ctx = FakeContext(small_clos)
        ctx.fluid.admit(_spec(0, "server-c0-t0-s0", "server-c1-t0-s0"))
        ctx.fluid.step_to(100e-6 - 1e-12)  # a sliver of bytes left
        handoff = FlowsimToHybridAdapter().transfer(1, ctx)
        (_, _, size), = ctx.launched
        assert size >= 1
        assert handoff.flows_transferred == 1

    def test_handoff_records_macro_state(self, small_clos):
        ctx = FakeContext(small_clos)
        handoff = FlowsimToHybridAdapter().transfer(1, ctx)
        assert handoff.macro_state == "elevated"
        assert handoff.flows_transferred == 0


class TestHybridToFlowsim:
    def test_records_draining_flows_without_moving_state(self, small_clos):
        ctx = FakeContext(small_clos)
        ctx.fluid.admit(_spec(0, "server-c0-t0-s0", "server-c1-t0-s0"))
        handoff = HybridToFlowsimAdapter().transfer(1, ctx)
        assert handoff.flows_draining == 4
        assert handoff.flows_transferred == 0
        assert ctx.launched == []
        assert ctx.fluid.active_flows == 1  # fluid side untouched

    def test_idle_region_drains_nothing(self, small_clos):
        ctx = FakeContext(small_clos)
        handoff = HybridToFlowsimAdapter().transfer(2, ctx)
        assert handoff.flows_draining == 0
        assert handoff.macro_state is None


class TestAdapterRegistry:
    def test_runtime_boundaries_have_adapters(self):
        assert isinstance(
            adapter_for(Tier.FLOWSIM, Tier.HYBRID), FlowsimToHybridAdapter
        )
        assert isinstance(
            adapter_for(Tier.HYBRID, Tier.FLOWSIM), HybridToFlowsimAdapter
        )

    def test_des_boundaries_are_structural(self):
        with pytest.raises(ValueError, match="no runtime adapter"):
            adapter_for(Tier.HYBRID, Tier.DES)
        with pytest.raises(ValueError, match="no runtime adapter"):
            adapter_for(Tier.DES, Tier.HYBRID)

    def test_handoff_to_dict_uses_tier_labels(self, small_clos):
        ctx = FakeContext(small_clos)
        payload = FlowsimToHybridAdapter().transfer(1, ctx).to_dict()
        assert payload["from"] == "flowsim"
        assert payload["to"] == "hybrid"
        assert set(payload) == {
            "region", "from", "to", "flows_transferred",
            "bytes_transferred", "flows_draining", "macro_state",
        }
