"""CascadeConfig / TierBudget / Tier: parsing and validation."""

from __future__ import annotations

import pytest

from repro.cascade import CascadeConfig, Tier, TierBudget


class TestTier:
    def test_ordering_cheapest_to_most_faithful(self):
        assert Tier.FLOWSIM < Tier.HYBRID < Tier.DES

    def test_parse_accepts_tier_int_and_name(self):
        assert Tier.parse(Tier.HYBRID) is Tier.HYBRID
        assert Tier.parse(2) is Tier.HYBRID
        assert Tier.parse("hybrid") is Tier.HYBRID
        assert Tier.parse(" DES ") is Tier.DES

    def test_parse_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown tier"):
            Tier.parse("quantum")

    def test_label(self):
        assert Tier.FLOWSIM.label == "flowsim"


class TestTierBudget:
    def test_defaults_valid(self):
        budget = TierBudget()
        assert 0 < budget.ks <= 1

    def test_ks_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="ks budget"):
            TierBudget(ks=0.0)
        with pytest.raises(ValueError, match="ks budget"):
            TierBudget(ks=1.5)

    def test_negative_drop_delta_rejected(self):
        with pytest.raises(ValueError, match="drop_delta"):
            TierBudget(drop_delta=-0.1)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown TierBudget fields"):
            TierBudget.from_dict({"ks": 0.2, "typo": 1})

    def test_round_trip(self):
        budget = TierBudget(ks=0.2, wasserstein_s=1e-3)
        assert TierBudget.from_dict(budget.to_dict()) == budget


class TestCascadeConfig:
    def test_defaults_valid(self):
        config = CascadeConfig()
        assert config.window_s == pytest.approx(
            config.epoch_s * config.window_epochs
        )

    def test_initial_tier_des_rejected(self):
        with pytest.raises(ValueError, match="initial_tier cannot be des"):
            CascadeConfig(initial_tier=Tier.DES)

    def test_pinning_non_focal_region_to_des_rejected(self):
        with pytest.raises(ValueError, match="cannot pin region 2 to des"):
            CascadeConfig(focal_cluster=0, pin_tiers={2: Tier.DES})

    def test_pinning_focal_to_des_allowed(self):
        config = CascadeConfig(focal_cluster=0, pin_tiers={0: Tier.DES})
        assert config.tier_for(0) is Tier.DES

    def test_tier_for_respects_pins_then_initial(self):
        config = CascadeConfig(
            initial_tier=Tier.FLOWSIM, pin_tiers={3: Tier.HYBRID}
        )
        assert config.tier_for(3) is Tier.HYBRID
        assert config.tier_for(1) is Tier.FLOWSIM
        assert config.is_pinned(3) and not config.is_pinned(1)

    def test_budget_for_overrides(self):
        special = TierBudget(ks=0.1)
        config = CascadeConfig(region_budgets={2: special})
        assert config.budget_for(2) is special
        assert config.budget_for(1) is config.budget

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError, match="epoch_s"):
            CascadeConfig(epoch_s=0.0)
        with pytest.raises(ValueError, match="window_epochs"):
            CascadeConfig(window_epochs=0)
        with pytest.raises(ValueError, match="demote_fraction"):
            CascadeConfig(demote_fraction=1.0)
        with pytest.raises(ValueError, match="max_promotions_per_epoch"):
            CascadeConfig(max_promotions_per_epoch=0)

    def test_hybrid_config_keeps_remote_traffic(self):
        config = CascadeConfig(focal_cluster=1, batch_window_s=1e-6)
        hybrid = config.hybrid_config()
        assert hybrid.full_cluster == 1
        # Background flows are diverted to the fluid tier, never elided.
        assert hybrid.elide_remote_traffic is False
        assert hybrid.batch_window_s == 1e-6

    def test_from_dict_normalizes_json_types(self):
        config = CascadeConfig.from_dict({
            "focal_cluster": 0,
            "initial_tier": "hybrid",
            "budget": {"ks": 0.2},
            "region_budgets": {"2": {"ks": 0.1}},
            "pin_tiers": {"3": "flowsim"},
        })
        assert config.initial_tier is Tier.HYBRID
        assert config.budget.ks == 0.2
        assert config.region_budgets[2].ks == 0.1
        assert config.pin_tiers[3] is Tier.FLOWSIM

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown CascadeConfig fields"):
            CascadeConfig.from_dict({"cadence": 1})
