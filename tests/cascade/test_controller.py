"""FidelityController: decision rules, pacing, hysteresis, audit log."""

from __future__ import annotations

import pytest

from repro.cascade import CascadeConfig, FidelityController, Tier, TierBudget
from repro.validate import RegionWindows


def _fill(windows: RegionWindows, values, time: float = 0.0) -> None:
    for value in values:
        windows.record_fct(time, value)


def _controller(regions, config=None, region_values=None, reference_values=None):
    """A controller over synthetic windows.

    ``region_values``: region -> FCT sample list; defaults to samples
    identical to the reference (ratio 0).
    """
    config = config or CascadeConfig(min_window_samples=4)
    reference = RegionWindows()
    _fill(reference, reference_values or [1e-3] * 8, time=config.epoch_s)
    windows = {}
    for region in regions:
        windows[region] = RegionWindows()
        values = (region_values or {}).get(region, reference_values or [1e-3] * 8)
        _fill(windows[region], values, time=config.epoch_s)
    controller = FidelityController(config, regions, reference, windows)
    return controller, reference, windows


BREACHING = [5e-3] * 8  # K-S = 1 against the 1e-3 reference


class TestBreachRatio:
    def test_components_scaled_by_budget(self):
        scores = {
            "fct": {"ks": 0.2, "wasserstein": 1e-3},
            "latency": {"ks": 0.1},
            "drop_rate": {"delta": -0.02},
        }
        budget = TierBudget(ks=0.4, drop_delta=0.05)
        ratio, components = FidelityController.breach_ratio(scores, budget)
        assert components["fct_ks"] == pytest.approx(0.5)
        assert components["latency_ks"] == pytest.approx(0.25)
        assert components["drop_delta"] == pytest.approx(0.4)
        assert "fct_w1" not in components  # no wasserstein budget set
        assert ratio == pytest.approx(0.5)

    def test_wasserstein_component_when_budgeted(self):
        scores = {
            "fct": {"ks": 0.0, "wasserstein": 2e-3},
            "latency": {},
            "drop_rate": {"delta": 0.0},
        }
        budget = TierBudget(ks=0.4, wasserstein_s=1e-3)
        ratio, components = FidelityController.breach_ratio(scores, budget)
        assert components["fct_w1"] == pytest.approx(2.0)
        assert ratio == pytest.approx(2.0)

    def test_latency_ks_falls_back_to_ks_budget(self):
        scores = {
            "fct": {"ks": None},
            "latency": {"ks": 0.2},
            "drop_rate": {"delta": 0.0},
        }
        ratio, components = FidelityController.breach_ratio(
            scores, TierBudget(ks=0.4)
        )
        assert components["latency_ks"] == pytest.approx(0.5)
        assert "fct_ks" not in components


class TestPromotion:
    def test_breaching_region_promoted(self):
        config = CascadeConfig(min_window_samples=4, budget=TierBudget(ks=0.35))
        controller, _, _ = _controller(
            [1], config=config, region_values={1: BREACHING}
        )
        decisions = controller.evaluate(epoch=1, now=config.epoch_s)
        assert [d.kind for d in decisions] == ["promote"]
        assert decisions[0].from_tier is Tier.FLOWSIM
        assert decisions[0].to_tier is Tier.HYBRID
        assert controller.tiers[1] is Tier.HYBRID
        assert decisions[0].ratio > 1.0

    def test_promotion_pacing_worst_first(self):
        config = CascadeConfig(
            min_window_samples=4, max_promotions_per_epoch=1,
            budget=TierBudget(ks=0.35),
        )
        # Region 2 breaches harder (bigger drop delta via drops).
        controller, _, windows = _controller(
            [1, 2], config=config,
            region_values={1: BREACHING, 2: BREACHING},
        )
        for _ in range(10):
            windows[2].record_outcome(config.epoch_s, None, True)
        decisions = controller.evaluate(epoch=1, now=config.epoch_s)
        assert len(decisions) == 1
        assert decisions[0].region == 2
        assert controller.tiers[1] is Tier.FLOWSIM  # waits its turn

    def test_promotion_tie_broken_by_region_index(self):
        config = CascadeConfig(
            min_window_samples=4, max_promotions_per_epoch=1,
        )
        controller, _, _ = _controller(
            [3, 1], config=config,
            region_values={1: BREACHING, 3: BREACHING},
        )
        decisions = controller.evaluate(epoch=1, now=config.epoch_s)
        assert decisions[0].region == 1

    def test_starved_window_is_not_evidence(self):
        config = CascadeConfig(min_window_samples=8)
        controller, _, _ = _controller(
            [1], config=config, region_values={1: [5e-3] * 2}
        )
        decisions = controller.evaluate(epoch=1, now=config.epoch_s)
        assert decisions == []
        assert controller.tiers[1] is Tier.FLOWSIM

    def test_pinned_region_never_moves(self):
        config = CascadeConfig(
            min_window_samples=4, pin_tiers={1: Tier.FLOWSIM}
        )
        controller, _, _ = _controller(
            [1], config=config, region_values={1: BREACHING}
        )
        assert controller.evaluate(epoch=1, now=config.epoch_s) == []
        assert controller.tiers[1] is Tier.FLOWSIM


class TestCeilingBreach:
    def test_breach_at_hybrid_is_audited_not_acted_on(self):
        config = CascadeConfig(
            min_window_samples=4, initial_tier=Tier.HYBRID, cooldown_epochs=0
        )
        controller, _, _ = _controller(
            [1], config=config, region_values={1: BREACHING}
        )
        decisions = controller.evaluate(epoch=1, now=config.epoch_s)
        assert [d.kind for d in decisions] == ["breach_at_ceiling"]
        assert not decisions[0].is_transition
        assert controller.tiers[1] is Tier.HYBRID

    def test_persistent_breach_logged_once(self):
        config = CascadeConfig(
            min_window_samples=4, initial_tier=Tier.HYBRID, cooldown_epochs=0
        )
        controller, _, _ = _controller(
            [1], config=config, region_values={1: BREACHING}
        )
        first = controller.evaluate(epoch=1, now=config.epoch_s)
        second = controller.evaluate(epoch=2, now=config.epoch_s)
        assert len(first) == 1 and second == []
        assert len(controller.log.entries) == 1


class TestDemotion:
    def test_calm_hybrid_region_demoted_after_patience(self):
        config = CascadeConfig(
            min_window_samples=4, initial_tier=Tier.HYBRID,
            demote_patience=2, cooldown_epochs=0,
        )
        controller, _, _ = _controller([1], config=config)
        assert controller.evaluate(epoch=1, now=config.epoch_s) == []
        decisions = controller.evaluate(epoch=2, now=config.epoch_s)
        assert [d.kind for d in decisions] == ["demote"]
        assert controller.tiers[1] is Tier.FLOWSIM

    def test_breach_resets_patience(self):
        config = CascadeConfig(
            min_window_samples=4, initial_tier=Tier.HYBRID,
            demote_patience=2, cooldown_epochs=0, budget=TierBudget(ks=0.35),
        )
        controller, _, windows = _controller([1], config=config)
        assert controller.evaluate(epoch=1, now=config.epoch_s) == []
        # An in-window breach: replace the region's samples.
        _fill(windows[1], BREACHING, time=config.epoch_s)
        decisions = controller.evaluate(epoch=2, now=config.epoch_s)
        assert [d.kind for d in decisions] == ["breach_at_ceiling"]
        assert controller.tiers[1] is Tier.HYBRID

    def test_calm_flowsim_region_stays(self):
        config = CascadeConfig(
            min_window_samples=4, demote_patience=1, cooldown_epochs=0
        )
        controller, _, _ = _controller([1], config=config)
        assert controller.evaluate(epoch=1, now=config.epoch_s) == []
        assert controller.tiers[1] is Tier.FLOWSIM


class TestCooldown:
    def test_transition_starts_refractory_period(self):
        config = CascadeConfig(
            min_window_samples=4, cooldown_epochs=2, budget=TierBudget(ks=0.35)
        )
        controller, _, _ = _controller(
            [1], config=config, region_values={1: BREACHING}
        )
        promoted = controller.evaluate(epoch=1, now=config.epoch_s)
        assert [d.kind for d in promoted] == ["promote"]
        # Still breaching, but in cooldown: no audit record yet.
        assert controller.evaluate(epoch=2, now=config.epoch_s) == []
        assert controller.evaluate(epoch=3, now=config.epoch_s) == []
        after = controller.evaluate(epoch=4, now=config.epoch_s)
        assert [d.kind for d in after] == ["breach_at_ceiling"]


class TestDecisionLog:
    def test_entries_carry_full_audit_fields(self):
        config = CascadeConfig(min_window_samples=4)
        controller, _, _ = _controller(
            [1], config=config, region_values={1: BREACHING}
        )
        controller.evaluate(epoch=1, now=config.epoch_s)
        (entry,) = controller.log.entries
        assert entry["kind"] == "promote"
        assert entry["from"] == "flowsim" and entry["to"] == "hybrid"
        assert entry["ratio"] > 1.0
        assert "fct_ks" in entry["components"]
        assert entry["reason"]
        assert entry["handoff"] is None  # attached by the cascade, not here

    def test_decision_entry_is_log_entry(self):
        """Attaching a handoff to a Decision lands in the log."""
        config = CascadeConfig(min_window_samples=4)
        controller, _, _ = _controller(
            [1], config=config, region_values={1: BREACHING}
        )
        (decision,) = controller.evaluate(epoch=1, now=config.epoch_s)
        decision.entry["handoff"] = {"flows_transferred": 3}
        assert controller.log.entries[0]["handoff"] == {"flows_transferred": 3}

    def test_identical_inputs_identical_bytes(self):
        def run():
            config = CascadeConfig(min_window_samples=4)
            controller, _, windows = _controller(
                [1, 2], config=config,
                region_values={1: BREACHING, 2: [1e-3] * 8},
            )
            for epoch in range(1, 4):
                controller.evaluate(epoch=epoch, now=epoch * config.epoch_s)
            return controller.log.to_json()

        assert run() == run()

    def test_save_round_trips(self, tmp_path):
        import json

        config = CascadeConfig(min_window_samples=4)
        controller, _, _ = _controller(
            [1], config=config, region_values={1: BREACHING}
        )
        controller.evaluate(epoch=1, now=config.epoch_s)
        path = controller.log.save(tmp_path / "decisions.json")
        loaded = json.loads(path.read_text())
        assert loaded == controller.log.entries
